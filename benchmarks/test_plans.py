"""Wall-clock of ahead-of-time serving plans on the paper workload.

Builds the full-width ISOLET shape — a 617 → 10,000 nonlinear encoder
(FC→TANH) feeding a 10,000 → 26 classifier (FC→ARGMAX) — and measures
one batch-64 invocation through:

- **fastpath**: ``Interpreter.run_quantized``, the fused BLAS engine
  that is the current serving compute path (itself ~10x over the seed
  kernels, see ``BENCH_fastpath.json``);
- **plan**: the arena-backed :class:`~repro.runtime.plan.ModelPlan` —
  preallocated scratch, ``out=``-kernels and (where the CPU allows)
  the AVX-512 VNNI fused microkernel.

Predictions are byte-compared against the frozen ``run_reference``
oracle chain; the speedup and a sustained-throughput run of the
plan-enabled :class:`~repro.serving.server.InferenceServer` land in
``BENCH_plans.json`` (CI uploads it) and ``bench_results.txt``.

Acceptance: ≥ 3x over the fast path at batch 64 with the native kernel
(the portable numpy arena path is gated at a softer bar — BLAS alone
cannot reach 3x on one core), and ≥ 10^5 simulated requests per minute
of *wall* time through the full serving event loop.
"""

import json
import pathlib
import time

import numpy as np

from repro import native
from repro.config import PlanConfig, ServeConfig
from repro.edgetpu import DevicePool, compile_model
from repro.experiments.report import format_table
from repro.runtime.plan import ModelPlan, bucket_ladder
from repro.serving import InferenceServer
from repro.serving.arrivals import Request
from repro.tflite import FlatModel, Interpreter, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_plans.json"

FEATURES = 617
DIMENSION = 10_000
CLASSES = 26
BATCH = 64
REPEATS = 5
SERVE_REQUESTS = 4096


def _full_width_model(rng) -> FlatModel:
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-55.0, 55.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    encode = FullyConnectedOp.from_float(
        rng.standard_normal((FEATURES, DIMENSION)).astype(np.float32),
        in_qp, hid_qp, name="encode",
    )
    tanh = TanhOp(hid_qp, name="tanh")
    classify = FullyConnectedOp.from_float(
        rng.standard_normal((DIMENSION, CLASSES)).astype(np.float32) * 0.02,
        tanh.output_qparams, out_qp, name="classify",
    )
    return FlatModel(
        "hdc-fullwidth", TensorSpec("input", (FEATURES,), in_qp),
        [encode, tanh, classify, ArgmaxOp(out_qp, name="argmax")],
    )


def _reference_predictions(model: FlatModel, x: np.ndarray) -> np.ndarray:
    """The frozen seed oracle, op by op."""
    out = x
    for op in model.ops:
        if isinstance(op, FullyConnectedOp):
            out = op.run_reference(out)
        elif isinstance(op, TanhOp):
            out = op.lut[out.astype(np.int32) + 128]
        else:
            out = op.run(out)
    return out[:, 0].astype(np.int64)


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _sustained_serving(model: FlatModel) -> dict:
    """Wall-clock the plan-enabled server on a saturating trace."""
    rng = np.random.default_rng(23)
    features = rng.uniform(-4, 4,
                           (SERVE_REQUESTS, FEATURES)).astype(np.float32)
    trace = [
        Request(request_id=i, arrival_s=i * 1e-6,
                deadline_s=i * 1e-6 + 30.0,
                features=features[i], label=0)
        for i in range(SERVE_REQUESTS)
    ]
    config = ServeConfig(max_batch=BATCH, max_queue=SERVE_REQUESTS,
                         plan=PlanConfig())
    compiled = compile_model(model)
    pool = DevicePool(1, compiled.arch)
    pool.load_replicated(compiled)
    server = InferenceServer(pool, config=config)
    start = time.perf_counter()
    report = server.serve(trace)
    wall_s = time.perf_counter() - start
    assert report.served == SERVE_REQUESTS, \
        f"saturating trace dropped requests: {report.dropped}"
    return {
        "requests": SERVE_REQUESTS,
        "wall_seconds": wall_s,
        "requests_per_minute_wall": SERVE_REQUESTS / wall_s * 60.0,
        "served": report.served,
        "dropped": report.dropped,
        "num_batches": report.num_batches,
    }


def test_plan_speedup_and_bit_identity(record_result):
    rng = np.random.default_rng(7)
    model = _full_width_model(rng)
    interpreter = Interpreter(model)
    floats = rng.uniform(-4, 4, (BATCH, FEATURES)).astype(np.float32)
    x = model.input_spec.qparams.quantize(floats)

    plan = ModelPlan.for_model(model, bucket_ladder(BATCH))

    # --- bit-identity gates -----------------------------------------
    reference = _reference_predictions(model, x)
    fast = interpreter.run_quantized(x)[:, 0].astype(np.int64)
    assert fast.tobytes() == reference.tobytes()
    q = plan.stage(floats)
    assert q.tobytes() == x.tobytes()
    planned = np.asarray(plan.run_host(q), dtype=np.int64)
    assert planned.tobytes() == reference.tobytes(), \
        "plan diverged from the frozen oracle"
    # The numpy arena path must agree byte-for-byte with the native one.
    numpy_plan = ModelPlan.for_model(model, bucket_ladder(BATCH),
                                     allow_native=False)
    numpy_q = numpy_plan.stage(floats)
    assert np.asarray(numpy_plan.run_host(numpy_q)).tobytes() \
        == reference.tobytes()

    # --- wall clock ---------------------------------------------------
    fastpath_s = _best_of(interpreter.run_quantized, x)
    plan_s = _best_of(plan.run_host, q)
    numpy_plan_s = _best_of(numpy_plan.run_host, numpy_q)
    speedup = fastpath_s / plan_s

    serving = _sustained_serving(model)

    payload = {
        "workload": {
            "features": FEATURES,
            "dimension": DIMENSION,
            "classes": CLASSES,
            "batch": BATCH,
            "ops": [op.kind for op in model.ops],
        },
        "repeats": REPEATS,
        "native_kernel": plan.native,
        "buckets": list(plan.buckets),
        "fastpath_seconds": fastpath_s,
        "plan_seconds": plan_s,
        "numpy_plan_seconds": numpy_plan_s,
        "speedup": speedup,
        "numpy_plan_speedup": fastpath_s / numpy_plan_s,
        "bit_identical": True,
        "per_sample_us": {
            "fastpath": fastpath_s / BATCH * 1e6,
            "plan": plan_s / BATCH * 1e6,
        },
        "sustained_serving": serving,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_result(format_table(
        ["metric", "value"],
        [
            ["fast-path invoke (ms)", fastpath_s * 1e3],
            ["plan invoke (ms)", plan_s * 1e3],
            ["numpy-arena invoke (ms)", numpy_plan_s * 1e3],
            ["speedup (x)", speedup],
            ["native kernel", "yes" if plan.native else "no"],
            ["serving req/min (wall)",
             serving["requests_per_minute_wall"]],
            ["outputs bit-identical", "yes"],
        ],
        title=(f"Serving plans — {FEATURES}->{DIMENSION}->{CLASSES}, "
               f"batch {BATCH}"),
    ))

    # Acceptance: the 3x bar holds where the VNNI kernel runs; the
    # numpy arena fallback (BLAS is the floor there) gates softer so
    # the benchmark stays portable.
    if plan.native:
        assert speedup >= 3.0, (
            f"plan only {speedup:.2f}x over the fast path "
            f"({fastpath_s * 1e3:.2f}ms vs {plan_s * 1e3:.2f}ms)"
        )
        assert serving["requests_per_minute_wall"] >= 1e5, (
            f"sustained only "
            f"{serving['requests_per_minute_wall']:.0f} req/min wall"
        )
    else:
        assert speedup >= 1.2
        assert serving["requests_per_minute_wall"] >= 2e4


def test_plan_steady_state_is_deterministic():
    """Back-to-back plan invokes on the same arena agree byte-for-byte."""
    rng = np.random.default_rng(11)
    model = _full_width_model(rng)
    plan = ModelPlan.for_model(model, bucket_ladder(BATCH))
    floats = rng.uniform(-4, 4, (BATCH, FEATURES)).astype(np.float32)
    first = np.array(plan.predict(floats))
    for _ in range(3):
        np.testing.assert_array_equal(np.array(plan.predict(floats)),
                                      first)
    # Interleaving another batch size does not corrupt the first.
    plan.predict(floats[:5])
    np.testing.assert_array_equal(np.array(plan.predict(floats)), first)
