"""Wall-clock throughput of the core kernels (pytest-benchmark).

Unlike the figure benches (which report *modeled* platform time), these
measure this machine's actual numpy throughput for the hot paths: the
encoder, the training pass, the quantized fully-connected kernel and
the cycle-stepped systolic simulation.
"""

import numpy as np
import pytest

from repro.edgetpu import SystolicArray
from repro.hdc import HDCClassifier, NonlinearEncoder
from repro.tflite.ops import FullyConnectedOp
from repro.tflite.quantization import qparams_asymmetric


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((10, 617)) * 4.0
    y = np.arange(2000) % 10
    x = centers[y] + rng.standard_normal((2000, 617))
    return x.astype(np.float32), y.astype(np.int64)


def test_encoder_throughput(benchmark, blobs):
    x, _ = blobs
    encoder = NonlinearEncoder(617, 4096, seed=0)
    out = benchmark(encoder.encode, x[:512])
    assert out.shape == (512, 4096)


def test_training_pass_throughput(benchmark, blobs):
    x, y = blobs
    model = HDCClassifier(dimension=2048, seed=0)
    encoded = NonlinearEncoder(617, 2048, seed=0).encode(x)

    def one_pass():
        fresh = HDCClassifier(dimension=2048, seed=0)
        fresh.fit(encoded, y, iterations=1, encoded=True, num_classes=10)
        return fresh

    trained = benchmark(one_pass)
    assert trained.class_hypervectors.shape == (10, 2048)


def test_int8_fully_connected_throughput(benchmark):
    rng = np.random.default_rng(0)
    in_qp = qparams_asymmetric(-4.0, 4.0)
    out_qp = qparams_asymmetric(-60.0, 60.0)
    op = FullyConnectedOp.from_float(
        rng.standard_normal((617, 4096)).astype(np.float32), in_qp, out_qp,
    )
    x = in_qp.quantize(rng.uniform(-3, 3, (256, 617)))
    out = benchmark(op.run, x)
    assert out.shape == (256, 4096)


def test_systolic_simulation_throughput(benchmark):
    rng = np.random.default_rng(0)
    arr = SystolicArray(16, 16)
    arr.load_weights(rng.integers(-128, 128, (16, 16)))
    x = rng.integers(-128, 128, (64, 16))

    def run():
        out, cycles = arr.matmul(x)
        return out

    out = benchmark(run)
    np.testing.assert_array_equal(out, x @ arr.weights)
