"""Wall-clock throughput of the core kernels (pytest-benchmark).

Unlike the figure benches (which report *modeled* platform time), these
measure this machine's actual numpy throughput for the hot paths: the
encoder, the training pass, the quantized fully-connected kernel and
the cycle-stepped systolic simulation.
"""

import numpy as np
import pytest

from repro.edgetpu import SystolicArray
from repro.hdc import HDCClassifier, NonlinearEncoder
from repro.tflite.ops import FullyConnectedOp
from repro.tflite.quantization import qparams_asymmetric


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((10, 617)) * 4.0
    y = np.arange(2000) % 10
    x = centers[y] + rng.standard_normal((2000, 617))
    return x.astype(np.float32), y.astype(np.int64)


def test_encoder_throughput(benchmark, blobs):
    x, _ = blobs
    encoder = NonlinearEncoder(617, 4096, seed=0)
    out = benchmark(encoder.encode, x[:512])
    assert out.shape == (512, 4096)


def test_training_pass_throughput(benchmark, blobs):
    x, y = blobs
    model = HDCClassifier(dimension=2048, seed=0)
    encoded = NonlinearEncoder(617, 2048, seed=0).encode(x)

    def one_pass():
        fresh = HDCClassifier(dimension=2048, seed=0)
        fresh.fit(encoded, y, iterations=1, encoded=True, num_classes=10)
        return fresh

    trained = benchmark(one_pass)
    assert trained.class_hypervectors.shape == (10, 2048)


def test_int8_fully_connected_throughput(benchmark):
    rng = np.random.default_rng(0)
    in_qp = qparams_asymmetric(-4.0, 4.0)
    out_qp = qparams_asymmetric(-60.0, 60.0)
    op = FullyConnectedOp.from_float(
        rng.standard_normal((617, 4096)).astype(np.float32), in_qp, out_qp,
    )
    x = in_qp.quantize(rng.uniform(-3, 3, (256, 617)))
    out = benchmark(op.run, x)
    assert out.shape == (256, 4096)


def _time_update_kernel(kernel, dimension, wrong=64, num_classes=10,
                        number=200, repeats=5):
    """Best-of-repeats per-chunk microseconds for one update kernel."""
    import timeit
    rng = np.random.default_rng(0)
    classes = rng.standard_normal((num_classes, dimension)).astype(np.float32)
    hypervectors = np.tanh(
        rng.standard_normal((wrong, dimension))
    ).astype(np.float32)
    true_labels = rng.integers(0, num_classes, size=wrong)
    predicted = (true_labels + 1) % num_classes

    def step():
        kernel(classes, hypervectors, true_labels, predicted, 0.035)

    return min(
        timeit.timeit(step, number=number) / number for _ in range(repeats)
    ) * 1e6


def test_update_kernel_speedup_paper_workload(record_result):
    """Loop vs vectorized update on the paper workload (d=10k, chunk 64).

    At d=10,000 the per-chunk update moves ~20 MB through memory in the
    loop and ~4 MB in the matmul kernel, so the achievable speedup is
    bandwidth-bound: dispatch-bound multi-core hosts measure 5-15x,
    while flat-bandwidth single-core machines cap near the traffic
    ratio (~2x).  The assertion is therefore a conservative regression
    floor; the measured ratio is recorded in bench_results.txt.
    """
    from repro.hdc import kernels
    loop_us = _time_update_kernel(kernels.loop_class_update, 10_000)
    fast_us = _time_update_kernel(kernels.matmul_class_update, 10_000)
    speedup = loop_us / fast_us
    record_result(
        "update kernel, d=10000 / chunk 64 / k=10 (per chunk):\n"
        f"  per-sample loop   {loop_us:8.1f} us\n"
        f"  matmul kernel     {fast_us:8.1f} us\n"
        f"  speedup           {speedup:8.2f}x"
    )
    assert speedup > 1.3


def test_update_kernel_speedup_dispatch_bound(record_result):
    """Loop vs vectorized update where the loop is interpreter-bound.

    At d=1024 the loop's cost is Python dispatch, not memory traffic --
    the regime the vectorization targets -- and the matmul kernel must
    deliver at least the issue's 5x.
    """
    from repro.hdc import kernels
    loop_us = _time_update_kernel(kernels.loop_class_update, 1024)
    fast_us = _time_update_kernel(kernels.matmul_class_update, 1024)
    speedup = loop_us / fast_us
    record_result(
        "update kernel, d=1024 / chunk 64 / k=10 (per chunk):\n"
        f"  per-sample loop   {loop_us:8.1f} us\n"
        f"  matmul kernel     {fast_us:8.1f} us\n"
        f"  speedup           {speedup:8.2f}x"
    )
    assert speedup >= 5.0


def test_train_pass_vectorized_vs_loop(record_result, blobs):
    """End-to-end training pass: vectorized kernel vs reference loop."""
    import timeit
    x, y = blobs
    encoded = NonlinearEncoder(617, 2048, seed=0).encode(x)

    def one_pass(kernel):
        model = HDCClassifier(dimension=2048, seed=0, update_kernel=kernel)
        model.fit(encoded, y, iterations=1, encoded=True, num_classes=10)

    loop_s = min(
        timeit.timeit(lambda: one_pass("loop"), number=3) / 3
        for _ in range(3)
    )
    fast_s = min(
        timeit.timeit(lambda: one_pass("auto"), number=3) / 3
        for _ in range(3)
    )
    record_result(
        "full training pass, 2000 samples, d=2048 (per pass):\n"
        f"  loop kernel       {loop_s * 1e3:8.1f} ms\n"
        f"  auto kernel       {fast_s * 1e3:8.1f} ms\n"
        f"  speedup           {loop_s / fast_s:8.2f}x"
    )
    assert fast_s < loop_s


def test_systolic_simulation_throughput(benchmark):
    rng = np.random.default_rng(0)
    arr = SystolicArray(16, 16)
    arr.load_weights(rng.integers(-128, 128, (16, 16)))
    x = rng.integers(-128, 128, (64, 16))

    def run():
        out, cycles = arr.matmul(x)
        return out

    out = benchmark(run)
    np.testing.assert_array_equal(out, x @ arr.weights)
