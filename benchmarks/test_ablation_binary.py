"""Ablation: bipolar associative memory vs the paper's float/int8 path.

The paper keeps float class hypervectors (dot-product search maps to
the Edge TPU).  Classic HDC hardware binarizes instead: 1 bit per
component, Hamming search.  This bench measures the trade the paper
implicitly makes: how much accuracy does binarization cost, against a
32x smaller associative memory?
"""

from repro.data import isolet
from repro.experiments.report import format_table
from repro.hdc import BipolarAssociativeMemory, HDCClassifier


def test_ablation_binary_memory(benchmark, record_result):
    ds = isolet(max_samples=1200, seed=7).normalized()

    def run():
        model = HDCClassifier(dimension=2048, seed=0)
        model.fit(ds.train_x, ds.train_y, iterations=6,
                  num_classes=ds.num_classes)
        memory = BipolarAssociativeMemory.from_classifier(model)
        return (
            model.score(ds.test_x, ds.test_y),
            memory.score(ds.test_x, ds.test_y),
            model.class_hypervectors.nbytes,
            memory.memory_bytes(),
        )

    float_acc, binary_acc, float_bytes, binary_bytes = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # 32x compression, accuracy within a few points.
    assert binary_bytes * 32 == float_bytes
    assert binary_acc > float_acc - 0.08

    record_result(format_table(
        ["model", "accuracy", "class-memory bytes"],
        [["float dot-product (paper)", float_acc, float_bytes],
         ["bipolar Hamming (1-bit)", binary_acc, binary_bytes]],
        title="Ablation — binarized associative memory (ISOLET)",
    ))
