"""Bench: Fig. 10 — encoding speedup vs input feature count.

Paper anchors: ~1.06x at 20 features rising monotonically to ~8.25x at
700 features; the curve explains the PAMAP2 counterexample.
"""

from repro.experiments import fig10_feature_scaling


def test_fig10(benchmark, record_result):
    points = benchmark(fig10_feature_scaling.run)
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
    assert 0.7 < points[0].speedup < 1.5       # n = 20
    assert 6.0 < points[-1].speedup < 12.0     # n = 700
    record_result(fig10_feature_scaling.format_result(points))


def test_fig10_functional_cross_check(benchmark, record_result):
    """Validate the analytic curve against the functional simulator.

    Runs a real encoder model through the device simulator at two
    feature counts and checks the modeled speedup ordering agrees with
    the analytic Fig. 10 curve.
    """
    import numpy as np
    from repro.edgetpu import EdgeTpuDevice, compile_model
    from repro.hdc import NonlinearEncoder
    from repro.nn import encoder_network
    from repro.runtime import CostModel
    from repro.tflite import convert

    rng = np.random.default_rng(0)
    cm = CostModel()

    def device_encode_seconds(num_features: int) -> float:
        encoder = NonlinearEncoder(num_features, 2048, seed=0)
        data = rng.standard_normal((512, num_features)).astype(np.float32)
        flat = convert(encoder_network(encoder), data[:128])
        compiled = compile_model(flat)
        device = EdgeTpuDevice()
        device.load_model(compiled)
        quantized = flat.input_spec.qparams.quantize(data)
        for start in range(0, len(data), 256):
            device.invoke(quantized[start:start + 256])
        return device.stats.busy_seconds - compiled.load_seconds()

    def run():
        return device_encode_seconds(20), device_encode_seconds(700)

    narrow, wide = benchmark.pedantic(run, rounds=1, iterations=1)
    cpu_narrow = cm.cpu_encode_seconds(512, 20, 2048)
    cpu_wide = cm.cpu_encode_seconds(512, 700, 2048)
    assert cpu_wide / wide > cpu_narrow / narrow
