"""Before/after wall-clock of the int8 fast-path compute engine.

Builds the paper's full-width workload — a 617 → 10,000 nonlinear
encoder (FC→TANH) feeding a 10,000 → 26 classifier (FC→ARGMAX), the
ISOLET shape — and measures one in-process invoke through:

- **reference**: the frozen seed kernels (``run_reference`` /
  ``accumulate_reference`` plus the pre-change per-op tanh/argmax
  dispatch), which re-cast weights and scan the accumulator per invoke;
- **fastpath**: the fused BLAS engine as the interpreter and the Edge
  TPU simulator actually run it.

Bit-identity — predictions *and* every quantized activation byte — is
the regression guard; the wall-clock ratio is recorded to
``BENCH_fastpath.json`` (CI uploads it) and to ``bench_results.txt``.
The acceptance bar is a ≥ 3x speedup on this container.
"""

import json
import pathlib
import time

import numpy as np

from repro.edgetpu import EdgeTpuDevice, compile_model
from repro.experiments.report import format_table
from repro.tflite import FlatModel, Interpreter, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_fastpath.json"

FEATURES = 617
DIMENSION = 10_000
CLASSES = 26
BATCH = 64
REPEATS = 3


def _full_width_model(rng) -> FlatModel:
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-55.0, 55.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    encode = FullyConnectedOp.from_float(
        rng.standard_normal((FEATURES, DIMENSION)).astype(np.float32),
        in_qp, hid_qp, name="encode",
    )
    tanh = TanhOp(hid_qp, name="tanh")
    classify = FullyConnectedOp.from_float(
        rng.standard_normal((DIMENSION, CLASSES)).astype(np.float32) * 0.02,
        tanh.output_qparams, out_qp, name="classify",
    )
    return FlatModel(
        "hdc-fullwidth", TensorSpec("input", (FEATURES,), in_qp),
        [encode, tanh, classify, ArgmaxOp(out_qp, name="argmax")],
    )


def _run_reference(model: FlatModel, x: np.ndarray) -> list[np.ndarray]:
    """The seed execution: per-op dispatch through the frozen kernels.

    Returns every op's output so activations can be byte-compared.
    """
    outputs = []
    for op in model.ops:
        if isinstance(op, FullyConnectedOp):
            x = op.run_reference(x)
        elif isinstance(op, TanhOp):
            # Seed tanh dispatch: astype(int32) + 128 indexing.
            x = op.lut[x.astype(np.int32) + 128]
        else:
            x = op.run(x)
        outputs.append(x)
    return outputs


def _run_unfused_fast(model: FlatModel, x: np.ndarray) -> list[np.ndarray]:
    """Fast kernels, op-by-op — yields the intermediate activations."""
    outputs = []
    for op in model.ops:
        x = op.run(x)
        outputs.append(x)
    return outputs


def _best_of(fn, *args) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_fastpath_speedup_and_bit_identity(record_result):
    rng = np.random.default_rng(7)
    model = _full_width_model(rng)
    interpreter = Interpreter(model)
    x = model.input_spec.qparams.quantize(
        rng.uniform(-4, 4, (BATCH, FEATURES)).astype(np.float32)
    )

    # --- bit-identity: the regression guard -------------------------
    reference = _run_reference(model, x)
    unfused = _run_unfused_fast(model, x)
    for op, ref, fast in zip(model.ops, reference, unfused):
        assert fast.tobytes() == ref.tobytes(), \
            f"fast path diverged from seed oracle at op {op.name!r}"
    fused_out = interpreter.run_quantized(x)
    assert fused_out.tobytes() == reference[-1].tobytes()

    # The Edge TPU simulator shares the fused kernels: its TPU-subgraph
    # output must match the reference chain's classifier activations.
    compiled = compile_model(model)
    device = EdgeTpuDevice(compiled.arch)
    device.load_model(compiled)
    assert device.invoke(x).outputs.tobytes() == reference[-2].tobytes()

    # --- wall clock -------------------------------------------------
    reference_s = _best_of(_run_reference, model, x)
    fastpath_s = _best_of(interpreter.run_quantized, x)
    speedup = reference_s / fastpath_s

    payload = {
        "workload": {
            "features": FEATURES,
            "dimension": DIMENSION,
            "classes": CLASSES,
            "batch": BATCH,
            "ops": [op.kind for op in model.ops],
        },
        "repeats": REPEATS,
        "reference_seconds": reference_s,
        "fastpath_seconds": fastpath_s,
        "speedup": speedup,
        "bit_identical": True,
        "per_sample_us": {
            "reference": reference_s / BATCH * 1e6,
            "fastpath": fastpath_s / BATCH * 1e6,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_result(format_table(
        ["metric", "value"],
        [
            ["reference invoke (ms)", reference_s * 1e3],
            ["fast-path invoke (ms)", fastpath_s * 1e3],
            ["speedup (x)", speedup],
            ["outputs bit-identical", "yes"],
        ],
        title=(f"Int8 fast path — {FEATURES}->{DIMENSION}->{CLASSES} "
               f"encoder+classifier, batch {BATCH}"),
    ))

    # CI regression guard: bit-identity above is the hard gate; the
    # wall-clock bar has ~10x headroom on this container.
    assert speedup >= 3.0, (
        f"fast path only {speedup:.1f}x over the seed kernels "
        f"({reference_s:.3f}s vs {fastpath_s:.3f}s)"
    )


def test_fastpath_is_exact_on_adversarial_batch():
    """Saturated codes through the full-width model stay byte-identical."""
    rng = np.random.default_rng(11)
    model = _full_width_model(rng)
    x = np.vstack([
        np.full((1, FEATURES), -128, dtype=np.int8),
        np.full((1, FEATURES), 127, dtype=np.int8),
        rng.integers(-128, 128, (6, FEATURES)).astype(np.int8),
    ])
    reference = _run_reference(model, x)
    assert Interpreter(model).run_quantized(x).tobytes() == \
        reference[-1].tobytes()
