"""Bench: federated HDC across edge nodes (extension).

Measures the intro's motivating scenario: accuracy per communication
round for IID and non-IID fleets, against the centralized reference,
plus total network traffic versus shipping the raw data.
"""

from repro.data import ucihar
from repro.experiments.report import format_table
from repro.federated import FederatedConfig, FederatedSimulation
from repro.hdc import HDCClassifier


def test_federated_fleet(benchmark, record_result):
    ds = ucihar(max_samples=1800, seed=11).normalized()

    def run():
        central = HDCClassifier(dimension=1024, seed=11)
        central.fit(ds.train_x, ds.train_y, iterations=6,
                    num_classes=ds.num_classes)
        central_acc = central.score(ds.test_x, ds.test_y)
        iid = FederatedSimulation(
            FederatedConfig(num_nodes=8, rounds=4, dimension=1024),
            seed=11,
        ).run(ds)
        skewed = FederatedSimulation(
            FederatedConfig(num_nodes=8, rounds=4, dimension=1024,
                            non_iid_alpha=0.2),
            seed=11,
        ).run(ds)
        return central_acc, iid, skewed

    central_acc, iid, skewed = benchmark.pedantic(run, rounds=1, iterations=1)

    # Federated catches the centralized model within a few rounds.
    assert iid.final_accuracy > central_acc - 0.05
    # Non-IID converges more slowly but still learns.
    assert skewed.final_accuracy > 0.7
    assert skewed.round_accuracy[-1] >= skewed.round_accuracy[0] - 0.02
    # Model traffic is far below shipping the raw training data once.
    assert iid.total_communication_bytes < 5 * ds.train_x.nbytes

    rows = [["centralized", central_acc, 0.0]]
    rows += [
        [f"IID round {i + 1}", acc, (i + 1) * (
            iid.upload_bytes_per_round + iid.broadcast_bytes_per_round
        ) / 1e6]
        for i, acc in enumerate(iid.round_accuracy)
    ]
    rows += [
        [f"non-IID round {i + 1}", acc, (i + 1) * (
            skewed.upload_bytes_per_round + skewed.broadcast_bytes_per_round
        ) / 1e6]
        for i, acc in enumerate(skewed.round_accuracy)
    ]
    record_result(format_table(
        ["setting", "accuracy", "traffic (MB)"],
        rows,
        title="Federated HDC — accuracy vs communication (UCIHAR, 8 nodes)",
    ))
