"""Tracing overhead: zero modeled cost, bounded wall cost.

The observability contract, measured on the paper's full-width
workload (617 features → 10,000-dim encoder → 26 classes):

- **Zero modeled overhead** — training and serving with tracing
  enabled must reproduce every modeled phase total, every prediction
  and every latency bit-identically; the asserted deltas are exactly
  zero, not approximately.
- **Span accounting** — the traced serving run exports at least one
  span per request (dropped requests included) and the per-device sums
  of the ``device.invoke`` spans' exact charges equal the report's
  device-busy seconds.
- **Bounded wall overhead** — the extra host wall-clock of recording
  spans at batch 64 is measured and recorded (target < 10%; the hard
  gates are the zero modeled deltas above).

Results land in ``BENCH_observability.json`` (CI uploads it) and the
shared ``bench_results.txt`` log.
"""

import json
import pathlib
import time

import numpy as np

from repro.config import PipelineConfig, ServeConfig
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import DevicePool
from repro.experiments.report import format_table
from repro.runtime.pipeline import TrainingPipeline
from repro.serving import ArrivalProcess, InferenceServer, RequestStream

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_observability.json"

FEATURES = 617
DIMENSION = 10_000
CLASSES = 26
ITERATIONS = 3
TRAIN_SAMPLES = 208
SERVE_BATCH = 64
SERVE_REQUESTS = 400
RATE_HZ = 300.0


def _dataset(rng):
    centers = rng.standard_normal((CLASSES, FEATURES)) * 2.0
    y = rng.integers(0, CLASSES, TRAIN_SAMPLES)
    x = (centers[y] + rng.standard_normal((TRAIN_SAMPLES, FEATURES)))
    return x.astype(np.float32), y


def _train(tracing: bool):
    rng = np.random.default_rng(13)
    x, y = _dataset(rng)
    config = PipelineConfig(dimension=DIMENSION, iterations=ITERATIONS,
                            seed=13, tracing=tracing)
    start = time.perf_counter()
    result = TrainingPipeline(config).run(x, y)
    wall = time.perf_counter() - start
    return result, wall


def _serve_trace():
    stream = DriftingStream(
        StreamConfig(num_features=FEATURES, num_classes=CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    arrivals = ArrivalProcess(RATE_HZ, "poisson", seed=5)
    requests = list(RequestStream(stream, arrivals, deadline_s=0.5,
                             drift_every=1).generate(SERVE_REQUESTS))
    return requests


def _serve(compiled, requests, tracing: bool):
    pool = DevicePool(2, compiled.arch)
    pool.load_replicated(compiled)
    config = ServeConfig(max_batch=SERVE_BATCH, max_queue=96,
                         tracing=tracing)
    server = InferenceServer(pool, config)
    start = time.perf_counter()
    report = server.serve(requests)
    wall = time.perf_counter() - start
    return report, wall


def test_tracing_zero_modeled_overhead(record_result):
    # --- training: full-width pipeline, traced vs untraced ----------
    untraced, train_wall_off = _train(tracing=False)
    traced, train_wall_on = _train(tracing=True)

    phase_deltas = {
        phase: traced.profiler.breakdown()[phase] - seconds
        for phase, seconds in untraced.profiler.breakdown().items()
    }
    assert all(delta == 0.0 for delta in phase_deltas.values()), (
        f"tracing changed modeled phase totals: {phase_deltas}"
    )
    assert traced.profiler.total == untraced.profiler.total
    assert traced.fused.class_matrix.tobytes() == \
        untraced.fused.class_matrix.tobytes()
    assert traced.trace is not None and len(traced.trace) > 0

    # --- serving: batch-64 trace, traced vs untraced ----------------
    requests = _serve_trace()
    report_off, serve_wall_off = _serve(untraced.compiled, requests,
                                        tracing=False)
    report_on, serve_wall_on = _serve(untraced.compiled, requests,
                                      tracing=True)

    summary_off = report_off.summary()
    summary_on = report_on.summary()
    assert summary_on == summary_off, "tracing changed the serve summary"
    assert report_on.predictions.tobytes() == \
        report_off.predictions.tobytes()
    assert report_on.latencies.tobytes() == report_off.latencies.tobytes()

    # Span accounting: one span per request, drops included.
    request_spans = [s for s in report_on.trace.spans
                     if s.name == "request"]
    assert len(request_spans) == len(requests)
    assert sum(1 for s in request_spans if "dropped" in s.tags) == \
        report_on.dropped

    # Device-span seconds equal busy seconds exactly (the spans carry
    # the exact charge as an attribute; see server._dispatch_batch).
    per_device = [0.0] * report_on.trace.spans[0].attrs["devices"]
    for span in report_on.trace.spans:
        if span.name == "device.invoke":
            per_device[span.attrs["device"]] += span.attrs["elapsed_s"]
    assert per_device == report_on.device_busy_seconds

    serve_overhead = serve_wall_on / serve_wall_off - 1.0
    train_overhead = train_wall_on / train_wall_off - 1.0

    payload = {
        "workload": {
            "features": FEATURES,
            "dimension": DIMENSION,
            "classes": CLASSES,
            "iterations": ITERATIONS,
            "serve_requests": SERVE_REQUESTS,
            "serve_batch": SERVE_BATCH,
        },
        "modeled_deltas": {
            "train_phase_deltas_s": phase_deltas,
            "serve_makespan_delta_s":
                report_on.makespan_s - report_off.makespan_s,
            "all_exactly_zero": True,
        },
        "spans": {
            "total": len(report_on.trace),
            "request_spans": len(request_spans),
            "dropped_spans": report_on.dropped,
            "device_busy_match": True,
        },
        "wall_overhead": {
            "train_off_s": train_wall_off,
            "train_on_s": train_wall_on,
            "train_overhead": train_overhead,
            "serve_off_s": serve_wall_off,
            "serve_on_s": serve_wall_on,
            "serve_overhead": serve_overhead,
            "target": 0.10,
        },
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_result(format_table(
        ["metric", "value"],
        [
            ["train phase deltas (s)", 0.0],
            ["serve makespan delta (s)",
             report_on.makespan_s - report_off.makespan_s],
            ["spans recorded", float(len(report_on.trace))],
            ["request spans / requests",
             len(request_spans) / len(requests)],
            ["train wall overhead", train_overhead],
            ["serve wall overhead (batch 64)", serve_overhead],
        ],
        title=(f"Tracing overhead — {FEATURES}->{DIMENSION}->{CLASSES}, "
               f"serve batch {SERVE_BATCH}"),
        float_format="{:.4f}",
    ))
