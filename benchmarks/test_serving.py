"""Online serving: SLA attainment, fault tolerance, hot-swap recovery.

Three end-to-end measurements back the serving subsystem's design, all
on the virtual clock (bit-reproducible across machines and runs):

- **Deadline-aware batching (SLA)** — at a load where fixed-size
  batching blows the p99 latency SLA (the first request of every batch
  ages while the batch fills), the deadline-aware policy dispatches
  short batches just in time and meets it.
- **Fault tolerance** — with the only device failing mid-stream (USB
  stall), the server completes the whole trace through the CPU-fallback
  op path with *bit-identical, in-order* predictions and zero drops.
- **Hot swap under drift** — a static server decays as the request
  distribution drifts; scheduling a mid-stream retrain + hot swap
  (charging the paper's modelgen/load costs) recovers accuracy.

Results are written machine-readable to ``BENCH_serving.json`` (built
twice and compared, so the file is proven run-to-run deterministic) and
human-readable to the shared ``bench_results.txt`` log.
"""

import json
import pathlib

import numpy as np

from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import FailurePlan, compile_model
from repro.experiments.report import format_table
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.serving import (
    ArrivalProcess,
    InferenceServer,
    ModelSwapper,
    RequestStream,
    ServeConfig,
)
from repro.tflite import convert

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_serving.json"

NUM_FEATURES = 24
NUM_CLASSES = 4
DIMENSION = 512
RATE_HZ = 200.0
SLA_S = 0.05
MAX_BATCH = 32
SLACK_S = 0.002
SLA_REQUESTS = 500
DRIFT_REQUESTS = 1200
WINDOWS = 6

DYNAMIC = ServeConfig(batcher="dynamic", max_batch=MAX_BATCH,
                      slack_s=SLACK_S, max_queue=2048)
FIXED = ServeConfig(batcher="fixed", max_batch=MAX_BATCH, max_queue=2048)


def _train_compiled(x, y, seed):
    rng = np.random.default_rng(seed)
    encoder = NonlinearEncoder(x.shape[1], DIMENSION, seed=rng)
    classifier = HDCClassifier(dimension=DIMENSION, encoder=encoder,
                               seed=rng)
    classifier.fit(x, y, iterations=5, num_classes=NUM_CLASSES)
    return compile_model(
        convert(from_classifier(classifier, include_argmax=True), x[:128])
    )


def _server(compiled, config, num_devices=2, failure=None,
            swapper_for=None):
    from repro.api import deploy
    from repro.config import FleetSpec

    pool = deploy(compiled, fleet=FleetSpec.single(count=num_devices)).pool
    if failure is not None:
        pool.schedule_failure(failure)
    swapper = ModelSwapper(pool) if swapper_for else None
    server = InferenceServer(pool, config, swapper=swapper)
    return server, swapper


def _stationary_trace(num_requests):
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=1,
    )
    train_x, train_y = stream.next_batch(400)
    compiled = _train_compiled(train_x, train_y, seed=0)
    arrivals = ArrivalProcess(RATE_HZ, "poisson", seed=3)
    trace = list(RequestStream(stream, arrivals, deadline_s=SLA_S,
                          drift_every=1).generate(num_requests))
    return compiled, trace


def _sla_section():
    """(a) deadline-aware meets the p99 SLA where fixed-size misses."""
    compiled, trace = _stationary_trace(SLA_REQUESTS)
    dyn_server, _ = _server(compiled, DYNAMIC)
    dynamic = dyn_server.serve(trace)
    fixed_server, _ = _server(compiled, FIXED)
    fixed = fixed_server.serve(trace)

    assert dynamic.dropped == 0 and fixed.dropped == 0
    assert dynamic.latency.p99 <= SLA_S, (
        f"deadline-aware p99 {dynamic.latency.p99:.4f}s misses the "
        f"{SLA_S:.3f}s SLA"
    )
    assert fixed.latency.p99 > SLA_S, (
        "fixed-size batching met the SLA; raise the load to restore "
        "the contrast"
    )
    return {
        "sla_s": SLA_S,
        "rate_hz": RATE_HZ,
        "num_requests": SLA_REQUESTS,
        "max_batch": MAX_BATCH,
        "dynamic": dynamic.summary(),
        "fixed": fixed.summary(),
    }, dynamic


def _failure_section(baseline):
    """(b) one device failure: completed via fallback, in order."""
    compiled, trace = _stationary_trace(SLA_REQUESTS)
    server, _ = _server(
        compiled, DYNAMIC, num_devices=1,
        failure=FailurePlan(device_index=0, at_s=1.0, mode="usb_stall"),
    )
    report = server.serve(trace)

    healthy_server, _ = _server(compiled, DYNAMIC, num_devices=1)
    healthy = healthy_server.serve(trace)

    assert report.dropped == 0
    assert report.served == len(trace)
    assert report.fallback_batches > 0
    assert report.failed_devices == [0]
    # Zero wrong-order (or wrong-value) predictions: the CPU-fallback
    # path runs the same int8 kernels, keyed by request id.
    mismatches = int(np.sum(report.predictions != healthy.predictions))
    assert mismatches == 0
    return {
        "mode": "usb_stall",
        "failure_at_s": 1.0,
        "fallback_batches": report.fallback_batches,
        "retried_batches": report.retried_batches,
        "failed_devices": report.failed_devices,
        "drop_rate": report.drop_rate,
        "prediction_mismatches_vs_healthy": mismatches,
        "p99_s": report.latency.p99,
        "throughput_rps": report.throughput,
    }, report


def _swap_section():
    """(c) hot swap under drift recovers accuracy vs. a static server."""
    def build_trace():
        stream = DriftingStream(
            StreamConfig(num_features=NUM_FEATURES,
                         num_classes=NUM_CLASSES, drift_rate=0.08),
            seed=1,
        )
        train_x, train_y = stream.next_batch(400)
        compiled = _train_compiled(train_x, train_y, seed=0)
        arrivals = ArrivalProcess(RATE_HZ, "poisson", seed=3)
        trace = list(RequestStream(stream, arrivals, deadline_s=SLA_S,
                              drift_every=1).generate(DRIFT_REQUESTS))
        return compiled, trace

    compiled, trace = build_trace()
    static_server, _ = _server(compiled, DYNAMIC)
    static = static_server.serve(trace)

    swap_server, swapper = _server(compiled, DYNAMIC, swapper_for=True)
    # Retrain on the most recent served window (labels are known in the
    # prequential setting) and schedule the swap when retraining data is
    # complete; modelgen cost delays readiness, commit lands at the next
    # batch boundary after that.
    cut = DRIFT_REQUESTS // 2
    window = trace[cut - 300:cut]
    window_x = np.stack([r.features for r in window])
    window_y = np.array([r.label for r in window], dtype=np.int64)
    retrained = _train_compiled(window_x, window_y, seed=5)
    swapper.schedule(retrained, trace[cut].arrival_s)
    swapped = swap_server.serve(trace)

    static_windows = static.windowed_accuracy(WINDOWS)
    swap_windows = swapped.windowed_accuracy(WINDOWS)
    recovery = swap_windows[-1] - static_windows[-1]
    assert swapped.swap_records, "the scheduled swap never committed"
    assert recovery >= 0.15, (
        f"hot swap recovered only {recovery:.3f} accuracy over static"
    )
    record = swapped.swap_records[0]
    return {
        "drift_rate": 0.08,
        "num_requests": DRIFT_REQUESTS,
        "windows": WINDOWS,
        "static_window_accuracy": static_windows,
        "swap_window_accuracy": swap_windows,
        "final_window_recovery": recovery,
        "swap_scheduled_s": record.scheduled_s,
        "swap_committed_s": record.committed_s,
        "swap_modelgen_seconds": record.modelgen_seconds,
        "swap_load_seconds": record.load_seconds,
        "static_accuracy": static.accuracy,
        "swap_accuracy": swapped.accuracy,
    }


def _build_payload():
    sla, dynamic = _sla_section()
    failure, _ = _failure_section(dynamic)
    swap = _swap_section()
    return {"sla": sla, "failure": failure, "swap": swap}


def test_online_serving(benchmark, record_result):
    payload = benchmark.pedantic(_build_payload, rounds=1, iterations=1)

    # Acceptance: the whole benchmark is virtual-clock deterministic —
    # a second build must serialize to the identical JSON.
    again = json.dumps(_build_payload(), indent=2, sort_keys=True)
    first = json.dumps(payload, indent=2, sort_keys=True)
    assert first == again, "serving benchmark is not run-deterministic"

    JSON_PATH.write_text(first + "\n")

    dyn = payload["sla"]["dynamic"]
    fixed = payload["sla"]["fixed"]
    record_result(format_table(
        ["metric", "value"],
        [
            ["deadline-aware p99 (ms)", dyn["latency"]["p99_s"] * 1e3],
            ["fixed-size p99 (ms)", fixed["latency"]["p99_s"] * 1e3],
            ["SLA (ms)", payload["sla"]["sla_s"] * 1e3],
            ["throughput (req/s)", dyn["throughput_rps"]],
            ["drop rate", dyn["drop_rate"]],
            ["failure fallback batches",
             payload["failure"]["fallback_batches"]],
            ["failure prediction mismatches",
             payload["failure"]["prediction_mismatches_vs_healthy"]],
            ["static final-window accuracy",
             payload["swap"]["static_window_accuracy"][-1]],
            ["swapped final-window accuracy",
             payload["swap"]["swap_window_accuracy"][-1]],
            ["swap recovery", payload["swap"]["final_window_recovery"]],
        ],
        title="Online serving — deadline batching, faults, hot swap",
        float_format="{:.3f}",
    ))
