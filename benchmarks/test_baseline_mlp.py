"""Baseline comparison: HDC vs a backprop-trained MLP.

The paper's framing: DNN training is too heavy for edge devices and the
Edge TPU cannot accelerate it, while HDC trains in a few cheap,
gradient-free passes (which the framework further accelerates).  This
bench measures both sides on the same surrogate: accuracy, wall-clock
training time, and arithmetic volume — and verifies both models ride
the same int8 Edge TPU inference path.
"""

import time

import numpy as np

from repro.baselines import MlpClassifier, MlpConfig
from repro.data import isolet
from repro.edgetpu import compile_model
from repro.experiments.report import format_table
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.tflite import Interpreter, convert


def test_baseline_mlp_vs_hdc(benchmark, record_result):
    ds = isolet(max_samples=1500, seed=7).normalized()

    def run():
        start = time.perf_counter()
        hdc = HDCClassifier(dimension=2048, seed=0)
        hdc.fit(ds.train_x, ds.train_y, iterations=6,
                num_classes=ds.num_classes)
        hdc_seconds = time.perf_counter() - start
        hdc_acc = hdc.score(ds.test_x, ds.test_y)

        start = time.perf_counter()
        mlp = MlpClassifier(MlpConfig(hidden_dim=256, epochs=20), seed=0)
        mlp.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
        mlp_seconds = time.perf_counter() - start
        mlp_acc = mlp.score(ds.test_x, ds.test_y)

        hdc_flat = convert(from_classifier(hdc), ds.train_x[:128])
        mlp_flat = convert(mlp.to_network(), ds.train_x[:128])
        hdc_int8 = float(np.mean(
            Interpreter(hdc_flat).predict(ds.test_x) == ds.test_y))
        mlp_int8 = float(np.mean(
            Interpreter(mlp_flat).predict(ds.test_x) == ds.test_y))
        return (hdc_acc, hdc_int8, hdc_seconds, hdc_flat,
                mlp_acc, mlp_int8, mlp_seconds, mlp_flat)

    (hdc_acc, hdc_int8, hdc_seconds, hdc_flat,
     mlp_acc, mlp_int8, mlp_seconds, mlp_flat) = benchmark.pedantic(
        run, rounds=1, iterations=1)

    # Both reach the learned regime and both quantize losslessly-ish.
    assert hdc_acc > 0.85 and mlp_acc > 0.85
    assert hdc_int8 > hdc_acc - 0.05
    assert mlp_int8 > mlp_acc - 0.05

    # Both compile onto the accelerator.
    assert len(compile_model(hdc_flat).tpu_ops) == 3
    assert len(compile_model(mlp_flat).tpu_ops) == 3

    record_result(format_table(
        ["model", "float acc", "int8 acc", "train wall (s)"],
        [["HDC (6 passes, gradient-free)", hdc_acc, hdc_int8, hdc_seconds],
         ["MLP-256 (20 epochs, backprop)", mlp_acc, mlp_int8, mlp_seconds]],
        title="Baseline — HDC vs MLP (ISOLET surrogate)",
    ))
