"""Bench: Fig. 6 — inference runtime (CPU vs TPU vs TPU_B).

Paper anchors: 4.19x (MNIST), 3.16x (FACE), 2.13x (ISOLET), 3.08x
(UCIHAR); PAMAP2 is the counterexample where the TPU is slower; the
fused bagged model adds zero inference overhead.
"""

from repro.experiments import fig6_inference_runtime


def test_fig6(benchmark, record_result):
    results = benchmark(fig6_inference_runtime.run)
    by_name = {r.dataset: r for r in results}

    assert 3.0 < by_name["mnist"].speedup < 5.5
    for name in ("face", "isolet", "ucihar"):
        assert 1.5 < by_name[name].speedup < 5.5, name
    assert by_name["pamap2"].speedup < 1.0

    for result in results:
        assert result.tpu_bagged_seconds == result.tpu_seconds

    record_result(fig6_inference_runtime.format_result(results))
