"""Ablation: one fused model vs parallel sub-models on a device pool.

The paper fuses because a *single* Edge TPU holds one model at a time.
With M devices, pinning one sub-model per device is feasible — this
bench measures whether parallel hardware beats fusion.  Measured
outcome: it does not meaningfully — every parallel device pays the same
dispatch + input-transfer floor that dominates the fused invocation, so
quadrupling the hardware buys only a few percent.  That is the
strongest form of the paper's argument: the fused single model matches
a 4-TPU pool with one device and no host aggregation.
"""

from repro.data import isolet
from repro.edgetpu import DevicePool, EdgeTpuDevice, compile_model
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_classifier, from_fused
from repro.platforms import MobileCpu
from repro.tflite import convert


def test_ablation_multidevice(benchmark, record_result):
    ds = isolet(max_samples=800, seed=7).normalized()
    config = BaggingConfig(num_models=4, dimension=2048, iterations=2,
                           dataset_ratio=0.6)
    trainer = BaggingHDCTrainer(config, seed=0)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    fused = trainer.fuse()
    calibration = ds.train_x[:128]
    host = MobileCpu()

    fused_compiled = compile_model(convert(from_fused(fused), calibration))
    sub_compiled = [
        compile_model(convert(from_classifier(model), calibration))
        for model in trainer.sub_models
    ]
    batch = ds.test_x[:16]

    def run():
        device = EdgeTpuDevice()
        device.load_model(fused_compiled)
        quantized = fused_compiled.model.input_spec.qparams.quantize(batch)
        fused_seconds = device.invoke(quantized).elapsed_s

        pool = DevicePool(4)
        pool.load_models(sub_compiled)
        result = pool.invoke_ensemble(batch, host.elementwise_seconds)
        return fused_seconds, result.total_seconds

    fused_seconds, parallel_seconds = benchmark.pedantic(run, rounds=1,
                                                         iterations=1)

    # Quadrupling the hardware must not beat the single fused device by
    # more than a sliver: both pay the same dispatch + input-transfer
    # floor, which dominates at edge batch sizes.
    assert fused_seconds < parallel_seconds * 1.15
    assert parallel_seconds < fused_seconds * 1.15

    record_result(format_table(
        ["execution", "modeled seconds / 16 samples"],
        [["fused, 1 device (paper)", fused_seconds],
         ["4 sub-models on 4 devices", parallel_seconds]],
        title="Ablation — fusion vs a multi-TPU pool",
        float_format="{:.6f}",
    ))
