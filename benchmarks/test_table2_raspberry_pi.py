"""Bench: Table II — framework vs Raspberry Pi 3.

Paper anchors: per-dataset training ratios 15.6x-23.6x (mean 19.4x) and
inference ratios 6.8x-11.4x (mean 8.9x).
"""

from repro.experiments import table2_raspberry_pi


def test_table2(benchmark, record_result):
    results = benchmark(table2_raspberry_pi.run)
    assert len(results) == 5
    mean_train = sum(r.training_ratio for r in results) / len(results)
    mean_infer = sum(r.inference_ratio for r in results) / len(results)
    assert 10.0 < mean_train < 30.0  # paper mean: 19.4x
    assert 5.0 < mean_infer < 25.0   # paper mean: 8.9x
    for result in results:
        assert result.training_ratio > 1.0, result.dataset
        assert result.inference_ratio > 1.0, result.dataset
        assert result.framework_training_energy_j < \
            result.pi_training_energy_j, result.dataset
    record_result(table2_raspberry_pi.format_result(results))
