"""Ablation: encoder choice — nonlinear (tanh) vs linear vs ID/level.

The paper adopts the nonlinear random-projection encoder because it
"achieves higher learning accuracy" on linearly inseparable data and
still maps to a single dense layer.  This ablation measures all three
encoders on the ISOLET surrogate (whose generator includes a sinusoidal
warp precisely to make linear encodings suboptimal) and documents the
accelerator-compatibility contrast.
"""

import numpy as np

from repro.data import isolet, pamap2
from repro.experiments.report import format_table
from repro.hdc import HDCClassifier, IdLevelEncoder, LinearEncoder, NonlinearEncoder
from repro.nn import encoder_network


def _accuracy(encoder_factory, ds, dimension=2048, iterations=6):
    encoder = encoder_factory(ds.num_features, dimension)
    model = HDCClassifier(dimension=dimension, encoder=encoder, seed=0)
    model.fit(ds.train_x, ds.train_y, iterations=iterations,
              num_classes=ds.num_classes)
    return model.score(ds.test_x, ds.test_y)


def test_ablation_encoders(benchmark, record_result):
    ds = isolet(max_samples=1200, seed=7).normalized()
    # The classical ID/level encoder binds one ID hypervector per
    # feature, which drowns in cross-talk on 600-feature inputs; its leg
    # of the ablation runs on the 27-feature PAMAP2 surrogate, the kind
    # of low-rate sensor data record-based encodings were designed for.
    sensor = pamap2(max_samples=800, seed=7).normalized()

    def run():
        nonlinear = _accuracy(
            lambda n, d: NonlinearEncoder(n, d, seed=0), ds)
        linear = _accuracy(
            lambda n, d: LinearEncoder(n, d, seed=0), ds)
        id_level = _accuracy(
            lambda n, d: IdLevelEncoder(n, d, num_levels=32, seed=0),
            sensor, dimension=1024, iterations=5)
        return nonlinear, linear, id_level

    nonlinear, linear, id_level = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    # The paper's choice should not lose to the linear ablation.
    assert nonlinear >= linear - 0.03
    assert id_level > 0.5  # learns the sensor task, at much higher cost

    # Accelerator compatibility: projection encoders compile to a dense
    # network; the classical ID/level encoder cannot.
    assert encoder_network(NonlinearEncoder(4, 8, seed=0)) is not None
    try:
        encoder_network(IdLevelEncoder(4, 8, seed=0))
        mappable = True
    except TypeError:
        mappable = False
    assert not mappable

    record_result(format_table(
        ["encoder", "accuracy", "maps to Edge TPU"],
        [["nonlinear (paper, ISOLET)", nonlinear, "yes"],
         ["linear (ISOLET)", linear, "yes"],
         ["id-level (classic HDC, PAMAP2)", id_level, "no"]],
        title="Ablation — encoder choice",
    ))
