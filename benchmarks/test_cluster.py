"""Fleet-scale cluster serving: replica scaling and elastic capacity.

Two measurements back the cluster subsystem, both on the virtual clock
(bit-reproducible across machines and runs):

- **Replica sweep** — the same multi-million-request three-tenant
  superposition served by 1, 2, 4 and 8 replicas: a single replica
  saturates (its device backlog grows without bound, so tail latency
  is hundreds of milliseconds and most deadlines miss), while the
  sharded fleets absorb the load at sub-millisecond p99 — the classic
  horizontal-scaling curve.
- **Autoscaler vs static fleets** — a 10× flash crowd hits a
  two-replica fleet.  A base-provisioned static fleet blows the
  deadline-miss SLA for the whole spike; a peak-provisioned static
  fleet meets it but pays for peak capacity the whole run.  The
  autoscaler must beat *both at once*: fewer deadline misses than the
  base fleet AND a smaller device-seconds bill than the peak fleet,
  despite paying the modeled provisioning lead time on every scale-up.

``CLUSTER_BENCH_REQUESTS`` scales the sweep (default one million
routed requests per replica count; CI smoke uses 10⁵).  The spike
section runs at a fixed 400k requests — its control-loop dynamics
(spike length vs provisioning latency) do not shrink meaningfully.
Results are written machine-readable to ``BENCH_cluster.json`` — a
reduced payload is built twice and compared, so the pipeline is proven
run-to-run deterministic — and human-readable to the shared
``bench_results.txt`` log.

Beyond the modeled results, every sweep point records the simulator's
own cost: ``wall_s`` (host wall-clock for that run) and
``sim_requests_per_wall_s`` (routed requests per host second) — the
figures the vectorized fast path (:mod:`repro.cluster.fastpath`) is
budgeted on.  CI's bench-smoke job compares the 10⁵-request sweep
wall time against the committed budget in ``cluster_wall_budget.json``
and fails on a >=5x regression (the threshold is deliberately loose:
shared runners are noisy, an order-of-magnitude slide is not).  Wall
fields are host noise, not simulation output, so the determinism
payload excludes them.
"""

import json
import os
import pathlib
import time

import numpy as np

import repro
from repro.cluster import AutoscalerConfig, ClusterConfig, DiurnalCurve, TenantSpec
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import compile_model
from repro.experiments.report import format_table
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.tflite import convert

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_cluster.json"

NUM_FEATURES = 16
NUM_CLASSES = 3
DIMENSION = 256

TOTAL_REQUESTS = int(os.environ.get("CLUSTER_BENCH_REQUESTS", 1_000_000))
REPLICA_SWEEP = (1, 2, 4, 8)
SWEEP_SEED = 7
SPIKE_SEED = 11

# ~105k req/s against one device's ~87k req/s batch-8 service rate:
# one replica saturates, two break even, four and eight cruise.
TENANTS = (
    TenantSpec("interactive", rate_hz=60000.0, deadline_s=0.01),
    TenantSpec("bursty", rate_hz=30000.0, deadline_s=0.05,
               kind="bursty"),
    TenantSpec("background", rate_hz=15000.0, deadline_s=0.2),
)
SERVE = repro.ServeConfig(max_batch=8, max_queue=50_000)

# Flash-crowd section: 10x spike on the interactive tenant for one
# second against a two-replica fleet (~35k req/s base, ~260k spiked).
SPIKE_REQUESTS = 400_000
SPIKE_AT_S = 0.5
SPIKE_DURATION_S = 1.0
SPIKE_FACTOR = 10.0
SPIKE_TENANTS = (
    TenantSpec("spiky", rate_hz=25000.0, deadline_s=0.01,
               curve=DiurnalCurve(spike_at_s=SPIKE_AT_S,
                                  spike_duration_s=SPIKE_DURATION_S,
                                  spike_factor=SPIKE_FACTOR)),
    TenantSpec("steady", rate_hz=10000.0, deadline_s=0.05),
)
PEAK_DEVICES_PER_REPLICA = 4  # provisioned for the 10x crowd
AUTOSCALER = AutoscalerConfig(
    interval_s=0.05, queue_high=1024, queue_low=64, miss_high=0.05,
    miss_low=0.01, up_streak=1, down_streak=4, cooldown_s=0.05,
    provision_s=0.1, max_devices=2 * PEAK_DEVICES_PER_REPLICA,
)


def _train_compiled():
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    train_x, train_y = stream.next_batch(240)
    rng = np.random.default_rng(0)
    encoder = NonlinearEncoder(NUM_FEATURES, DIMENSION, seed=rng)
    classifier = HDCClassifier(dimension=DIMENSION, encoder=encoder,
                               seed=rng)
    classifier.fit(train_x, train_y, iterations=4,
                   num_classes=NUM_CLASSES)
    return compile_model(
        convert(from_classifier(classifier, include_argmax=True),
                train_x[:96])
    )


def _sweep_section(compiled, total_requests, timing=True):
    """(a) p99 and throughput vs replica count on identical traffic.

    ``timing=True`` also records host wall-clock per sweep point —
    ``wall_s`` (simulator wall time for the run) and
    ``sim_requests_per_wall_s`` (routed requests per host second, the
    fast path's headline figure).  The determinism payload passes
    ``timing=False``: wall time is host noise, not simulation output.
    """
    rows = []
    routed_total = 0
    wall_total = 0.0
    for num_replicas in REPLICA_SWEEP:
        config = ClusterConfig(
            tenants=TENANTS, total_requests=total_requests,
            num_replicas=num_replicas, devices_per_replica=1,
            policy="round_robin", serve=SERVE, seed=SWEEP_SEED,
        )
        start = time.perf_counter()
        summary = repro.serve_cluster(compiled, config=config).summary()
        wall_s = time.perf_counter() - start
        wall_total += wall_s
        routed_total += summary["num_requests"]
        row = {
            "num_replicas": num_replicas,
            "num_requests": summary["num_requests"],
            "served": summary["served"],
            "dropped": summary["dropped"],
            "drop_rate": summary["drop_rate"],
            "deadline_miss_rate": summary["deadline_miss_rate"],
            "p50_s": summary["latency"]["p50_s"],
            "p99_s": summary["latency"]["p99_s"],
            "throughput_rps": summary["throughput_rps"],
            "makespan_s": summary["makespan_s"],
            "device_seconds": summary["device_seconds"],
        }
        if timing:
            row["wall_s"] = wall_s
            row["sim_requests_per_wall_s"] = (
                summary["num_requests"] / wall_s
            )
        rows.append(row)
    section = {
        "tenants": [spec.name for spec in TENANTS],
        "total_requests_per_run": total_requests,
        "routed_requests": routed_total,
        "policy": "round_robin",
        "sweep": rows,
    }
    if timing:
        section["wall_s"] = wall_total
        section["sim_requests_per_wall_s"] = routed_total / wall_total
    return section


def _spike_run(compiled, total_requests, devices_per_replica,
               autoscaler=None):
    config = ClusterConfig(
        tenants=SPIKE_TENANTS, total_requests=total_requests,
        num_replicas=2, devices_per_replica=devices_per_replica,
        policy="round_robin", serve=SERVE, seed=SPIKE_SEED,
        autoscaler=autoscaler,
    )
    report = repro.serve_cluster(compiled, config=config)
    summary = report.summary()
    return {
        "devices_per_replica_start": devices_per_replica,
        "deadline_miss_rate": summary["deadline_miss_rate"],
        "deadline_misses": summary["deadline_misses"],
        "drop_rate": summary["drop_rate"],
        "p99_s": summary["latency"]["p99_s"],
        "makespan_s": summary["makespan_s"],
        "device_seconds": summary["device_seconds"],
        "scale_ups": sum(1 for e in report.scaling_events
                         if e.action == "scale_up"),
        "scale_downs": sum(1 for e in report.scaling_events
                           if e.action == "scale_down"),
        "scaling": summary["scaling"],
    }


def _spike_section(compiled):
    """(b) elastic capacity vs static fleets under the 10x spike."""
    return {
        "spike_factor": SPIKE_FACTOR,
        "spike_at_s": SPIKE_AT_S,
        "spike_duration_s": SPIKE_DURATION_S,
        "total_requests": SPIKE_REQUESTS,
        "static_base": _spike_run(compiled, SPIKE_REQUESTS,
                                  devices_per_replica=1),
        "static_peak": _spike_run(
            compiled, SPIKE_REQUESTS,
            devices_per_replica=PEAK_DEVICES_PER_REPLICA,
        ),
        "autoscaled": _spike_run(compiled, SPIKE_REQUESTS,
                                 devices_per_replica=1,
                                 autoscaler=AUTOSCALER),
    }


def _build_payload(total_requests):
    compiled = _train_compiled()
    return {
        "schema": "repro.bench_cluster/2",
        "total_requests": total_requests,
        "sweep": _sweep_section(compiled, total_requests),
        "spike": _spike_section(compiled),
    }


def _determinism_payload(compiled):
    """A reduced run covering every subsystem: sharded sweep points
    plus an autoscaled mini-spike (its own timing so the control loop
    actually trips at this size)."""
    mini_spike = (
        TenantSpec("spiky", rate_hz=25000.0, deadline_s=0.01,
                   curve=DiurnalCurve(spike_at_s=0.1,
                                      spike_duration_s=0.2,
                                      spike_factor=SPIKE_FACTOR)),
        TenantSpec("steady", rate_hz=10000.0, deadline_s=0.05),
    )
    payload = {"sweep": _sweep_section(compiled, 20_000, timing=False)}
    config = ClusterConfig(
        tenants=mini_spike, total_requests=60_000, num_replicas=2,
        devices_per_replica=1, policy="round_robin", serve=SERVE,
        seed=SPIKE_SEED, autoscaler=AUTOSCALER,
    )
    payload["spike"] = repro.serve_cluster(compiled,
                                           config=config).summary()
    return payload


def test_cluster_serving(benchmark, record_result):
    payload = benchmark.pedantic(
        lambda: _build_payload(TOTAL_REQUESTS), rounds=1, iterations=1,
    )
    sweep_rows = payload["sweep"]["sweep"]
    spike = payload["spike"]

    # Acceptance: the configured request volume actually got routed.
    assert payload["sweep"]["routed_requests"] >= TOTAL_REQUESTS

    # Acceptance: horizontal scaling shows — the saturated single
    # replica against the sharded fleet's tail and throughput.
    assert sweep_rows[0]["p99_s"] > sweep_rows[-1]["p99_s"]
    assert (sweep_rows[-1]["throughput_rps"]
            > sweep_rows[0]["throughput_rps"])

    # Acceptance: the autoscaler reacted, shed capacity afterwards,
    # and beat both static fleets on their respective weak axes.
    autoscaled = spike["autoscaled"]
    assert autoscaled["scale_ups"] > 0, "the spike never tripped scale-up"
    assert autoscaled["scale_downs"] > 0, \
        "capacity never shed after the spike"
    assert (autoscaled["deadline_miss_rate"]
            < spike["static_base"]["deadline_miss_rate"]), (
        "autoscaler did not reduce the miss rate over the "
        "base-provisioned static fleet"
    )
    assert (autoscaled["device_seconds"]
            < spike["static_peak"]["device_seconds"]), (
        "autoscaler did not undercut the peak-provisioned fleet's "
        "device-seconds bill"
    )

    # Acceptance: virtual-clock determinism — a reduced payload built
    # twice serializes identically (a full re-run would double the
    # benchmark's wall time for the same guarantee).
    compiled = _train_compiled()
    first = json.dumps(_determinism_payload(compiled), indent=2,
                       sort_keys=True)
    again = json.dumps(_determinism_payload(compiled), indent=2,
                       sort_keys=True)
    assert first == again, "cluster benchmark is not run-deterministic"

    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    record_result(format_table(
        ["replicas", "p99 (ms)", "throughput (req/s)", "miss rate",
         "device-seconds", "wall (s)", "sim req/wall-s"],
        [
            [row["num_replicas"], row["p99_s"] * 1e3,
             row["throughput_rps"], row["deadline_miss_rate"],
             row["device_seconds"], row["wall_s"],
             row["sim_requests_per_wall_s"]]
            for row in sweep_rows
        ],
        title=(f"Cluster serving — replica sweep, "
               f"{payload['sweep']['total_requests_per_run']} requests "
               f"per point, 3 tenants"),
        float_format="{:.3f}",
    ))
    record_result(format_table(
        ["fleet", "miss rate", "p99 (ms)", "device-seconds",
         "scale ups/downs"],
        [
            ["static (base)",
             spike["static_base"]["deadline_miss_rate"],
             spike["static_base"]["p99_s"] * 1e3,
             spike["static_base"]["device_seconds"], "0/0"],
            ["static (peak)",
             spike["static_peak"]["deadline_miss_rate"],
             spike["static_peak"]["p99_s"] * 1e3,
             spike["static_peak"]["device_seconds"], "0/0"],
            ["autoscaled",
             autoscaled["deadline_miss_rate"],
             autoscaled["p99_s"] * 1e3,
             autoscaled["device_seconds"],
             (f"{autoscaled['scale_ups']}/"
              f"{autoscaled['scale_downs']}")],
        ],
        title="Cluster serving — 10x flash crowd, autoscaler vs "
              "static fleets",
        float_format="{:.4f}",
    ))
