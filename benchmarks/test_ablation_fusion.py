"""Ablation: fused single inference model vs serial sub-model execution.

The paper's Sec. III-B argument for fusion: most Edge TPUs hold one
model at a time, so running M sub-models serially pays a model re-load
(weights over USB) per sub-model per batch, plus M dispatch overheads
and an extra host-side aggregation.  The fused model pays one invoke.
This bench quantifies that gap with the device simulator and checks the
fused model's predictions equal the serial ensemble's.
"""

import numpy as np

from repro.data import isolet
from repro.edgetpu import EdgeTpuDevice, compile_model
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_classifier, from_fused
from repro.tflite import convert


def test_ablation_fusion(benchmark, record_result):
    ds = isolet(max_samples=1000, seed=7).normalized()
    config = BaggingConfig(num_models=4, dimension=2048, iterations=3,
                           dataset_ratio=0.6)
    trainer = BaggingHDCTrainer(config, seed=0)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    fused = trainer.fuse()
    calibration = ds.train_x[:128]
    test = ds.test_x[:64]

    fused_flat = convert(from_fused(fused), calibration)
    fused_compiled = compile_model(fused_flat)
    sub_compiled = [
        compile_model(convert(from_classifier(model), calibration))
        for model in trainer.sub_models
    ]

    def run():
        # Fused: load once, one invoke per batch.
        device = EdgeTpuDevice()
        device.load_model(fused_compiled)
        quantized = fused_flat.input_spec.qparams.quantize(test)
        fused_result = device.invoke(quantized)
        fused_seconds = fused_result.elapsed_s
        fused_scores = fused_compiled.tpu_ops[-1].output_qparams.dequantize(
            fused_result.outputs
        )

        # Serial: the device holds one model at a time, so each batch
        # pays M model loads + M invokes, and the host sums the scores.
        serial_seconds = 0.0
        serial_scores = None
        serial_device = EdgeTpuDevice()
        for compiled in sub_compiled:
            serial_seconds += serial_device.load_model(compiled)
            quantized = compiled.model.input_spec.qparams.quantize(test)
            result = serial_device.invoke(quantized)
            serial_seconds += result.elapsed_s
            scores = compiled.tpu_ops[-1].output_qparams.dequantize(
                result.outputs
            )
            serial_scores = scores if serial_scores is None \
                else serial_scores + scores
        return fused_seconds, serial_seconds, fused_scores, serial_scores

    fused_seconds, serial_seconds, fused_scores, serial_scores = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    # Fusion wins decisively on modeled time.
    assert fused_seconds < serial_seconds / 3

    # And the consensus predictions agree (quantization grids differ, so
    # compare argmax decisions, allowing a small disagreement margin).
    agreement = float(np.mean(
        np.argmax(fused_scores, axis=1) == np.argmax(serial_scores, axis=1)
    ))
    assert agreement > 0.9

    record_result(format_table(
        ["execution", "modeled seconds / 64 samples"],
        [["fused single model (paper)", fused_seconds],
         ["4 sub-models serially", serial_seconds]],
        title="Ablation — fused vs serial sub-model inference",
        float_format="{:.6f}",
    ))
