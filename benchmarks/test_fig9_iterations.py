"""Bench: Fig. 9 — sub-model iteration sweep (ISOLET, alpha = 0.6).

Paper conclusion: 4-6 iterations save ~20% of recurring training work
versus 8 iterations at similar accuracy; the paper settles on 6.
"""

from repro.experiments import fig9_iterations


def test_fig9(benchmark, record_result, quick_scale):
    points = benchmark.pedantic(
        fig9_iterations.run,
        kwargs=dict(scale=quick_scale),
        rounds=1, iterations=1,
    )
    by_iter = {p.iterations: p for p in points}

    # Runtime monotone in iterations; 6 visibly cheaper than 8.
    runtimes = [p.normalized_runtime for p in points]
    assert runtimes == sorted(runtimes)
    assert by_iter[6].normalized_runtime < 0.95

    # Accuracy at 6 iterations close to 8 (paper keeps 6).
    assert by_iter[6].accuracy > by_iter[8].accuracy - 0.05

    record_result(fig9_iterations.format_result(points))
