"""Bench: Fig. 4 — training/validation accuracy over iterations.

Regenerates the convergence curves the paper uses to justify 20
iterations for full models and ~6 for bagging sub-models.
"""

from repro.experiments import fig4_convergence


def test_fig4(benchmark, record_result, quick_scale):
    results = benchmark.pedantic(
        fig4_convergence.run,
        kwargs=dict(scale=quick_scale),
        rounds=1, iterations=1,
    )
    assert len(results) == 5
    for curve in results:
        # Paper shape: models converge, and they converge well before the
        # last iteration (the basis for short sub-model training).
        assert curve.train_accuracy[-1] > curve.train_accuracy[0]
        assert curve.plateau_iteration <= quick_scale.iterations
    record_result(fig4_convergence.format_result(results))
