"""Bench: Fig. 5 — training-runtime breakdown (CPU / TPU / TPU_B).

Paper anchors: encoding speedup up to 9.37x (MNIST); overall TPU_B
speedups 4.49x (MNIST), 3.49x (FACE), 2.45x (ISOLET), 1.81x (UCIHAR);
update-phase speedup up to 4.74x; PAMAP2 gains nothing from the TPU
encoding path.
"""

from repro.experiments import fig5_training_runtime


def test_fig5(benchmark, record_result):
    results = benchmark(fig5_training_runtime.run)
    by_name = {r.dataset: r for r in results}

    # Encoding acceleration: large for wide datasets, absent for PAMAP2.
    assert 8.0 < by_name["mnist"].encoding_speedup < 11.5
    assert by_name["pamap2"].encoding_speedup < 1.5

    # Overall framework speedups in the paper's neighbourhood.
    assert 3.5 < by_name["mnist"].tpu_bagged_speedup < 6.0
    assert by_name["face"].tpu_bagged_speedup > 3.0
    assert by_name["isolet"].tpu_bagged_speedup > 1.0
    assert by_name["ucihar"].tpu_bagged_speedup > 1.0

    # Update-phase reduction near the analytic 5.56x / measured 4.74x.
    for result in results:
        assert 3.5 < result.update_speedup < 6.5

    record_result(fig5_training_runtime.format_result(results))
