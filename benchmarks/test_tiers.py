"""Compression tiers: graceful degradation under bursty overload.

Two measurements back the tier ladder's design, on the virtual clock
(bit-reproducible across machines and runs):

- **Ladder build** — one trained d=4096 model compressed post-training
  into three co-resident serving tiers (full, DPQ-pruned d=512 at
  4-bit, LDC-distilled d=256).  Each tier's accuracy is measured at
  build time through the compiled int8 ops; both degraded tiers must
  land within 5 points of full width.
- **Graceful degradation** — under a bursty MMPP overload whose
  sustained rate exceeds the full tier's single-device capacity, the
  tiered server sheds overflow batches to the cheaper resident tiers
  while the untiered server (same pool, same trace) queues and blows
  deadlines.  Tiering must cut the combined SLA-violation rate
  (deadline misses + drops) at equal load, with per-tier served
  accuracy recorded.

Results are written machine-readable to ``BENCH_tiers.json`` (built
twice and compared, so the file is proven run-to-run deterministic) and
human-readable to the shared ``bench_results.txt`` log.
"""

import json
import pathlib

import numpy as np

from repro.compression.tiers import TierSpec, build_tiers
from repro.config import ServeConfig, TierPolicy
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import DevicePool
from repro.experiments.report import format_table
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
from repro.serving import ArrivalProcess, InferenceServer, RequestStream

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_tiers.json"

NUM_FEATURES = 16
NUM_CLASSES = 3
DIMENSION = 4096
NUM_REQUESTS = 3200
# Sustained MMPP load between the full tier's single-device capacity
# (~530k req/s at batch 64) and the tiny tier's (~660k req/s): the
# untiered server falls behind during bursts, the tiered one sheds.
RATE_HZ = 440_000.0
DEADLINE_S = 0.001
ACCURACY_BUDGET = 0.05

SPECS = (
    TierSpec("full"),
    TierSpec("compressed", "dpq", dimension=512, bits=4),
    TierSpec("tiny", "ldc", dimension=256),
)
POLICY = TierPolicy(queue_high=16, headroom_s=0.0001)


def _trained_ladder():
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=9,
    )
    x, y = stream.next_batch(400)
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=4, dimension=DIMENSION, iterations=3),
        seed=0,
    )
    trainer.fit(x, y)
    ladder = build_tiers(trainer.fuse(), x[:128], specs=SPECS,
                         evaluation=(x, y))
    trace = list(RequestStream(
        stream,
        ArrivalProcess(RATE_HZ, "bursty", seed=3, burst_factor=8.0,
                       burst_length=64, calm_length=128),
        deadline_s=DEADLINE_S, drift_every=0,
    ).generate(NUM_REQUESTS))
    return ladder, trace


def _serve(ladder, trace, tiered):
    pool = DevicePool(1, ladder[0].compiled.arch)
    pool.load_replicated(ladder[0].compiled)
    config = ServeConfig(max_batch=64, max_queue=256,
                         tiers=POLICY if tiered else None)
    server = InferenceServer(pool, config=config,
                             tiers=ladder if tiered else None)
    return server.serve(trace)


def _violation_rate(report):
    return (report.deadline_misses + report.dropped) / report.num_requests


def _ladder_section(ladder):
    """(a) post-training compression holds accuracy within budget."""
    full = ladder[0].build_accuracy
    for tier in ladder:
        assert tier.build_accuracy >= full - ACCURACY_BUDGET, (
            f"tier {tier.name!r} lost more than {ACCURACY_BUDGET:.2f} "
            f"accuracy at build time"
        )
    return {
        "specs": [
            {"name": s.name, "kind": s.kind, "dimension": s.dimension,
             "bits": s.bits}
            for s in SPECS
        ],
        "ladder": ladder.summary(),
        "accuracy_budget": ACCURACY_BUDGET,
    }


def _degradation_section(ladder, trace):
    """(b) shedding to resident tiers beats queueing under overload."""
    tiered = _serve(ladder, trace, tiered=True)
    untiered = _serve(ladder, trace, tiered=False)

    assert tiered.tier_sheds > 0, "the overload never triggered a shed"
    assert untiered.deadline_misses > 0, (
        "the untiered server met the SLA; raise the load to restore "
        "the contrast"
    )
    assert tiered.deadline_misses < untiered.deadline_misses
    assert tiered.dropped <= untiered.dropped
    assert _violation_rate(tiered) < _violation_rate(untiered)
    # Degrading keeps the answer quality close to full width.
    per_tier = tiered.tier_accuracy()
    assert per_tier[0] is not None
    return {
        "rate_hz": RATE_HZ,
        "deadline_s": DEADLINE_S,
        "num_requests": NUM_REQUESTS,
        "policy": {"queue_high": POLICY.queue_high,
                   "headroom_s": POLICY.headroom_s},
        "tiered": tiered.summary(),
        "untiered": untiered.summary(),
        "tiered_violation_rate": _violation_rate(tiered),
        "untiered_violation_rate": _violation_rate(untiered),
        "tier_accuracy": per_tier,
    }


def _build_payload():
    ladder, trace = _trained_ladder()
    return {
        "ladder": _ladder_section(ladder),
        "degradation": _degradation_section(ladder, trace),
    }


def test_compression_tiers(benchmark, record_result):
    payload = benchmark.pedantic(_build_payload, rounds=1, iterations=1)

    # Acceptance: the whole benchmark is virtual-clock deterministic —
    # a second build must serialize to the identical JSON.
    again = json.dumps(_build_payload(), indent=2, sort_keys=True)
    first = json.dumps(payload, indent=2, sort_keys=True)
    assert first == again, "tiers benchmark is not run-deterministic"

    JSON_PATH.write_text(first + "\n")

    ladder = payload["ladder"]["ladder"]["tiers"]
    deg = payload["degradation"]
    tiers = deg["tiered"]["tiers"]
    record_result(format_table(
        ["metric", "value"],
        [
            *[
                [f"{t['name']} build accuracy (d={t['dimension']})",
                 t["build_accuracy"]]
                for t in ladder
            ],
            ["tiered deadline misses",
             deg["tiered"]["deadline_misses"]],
            ["untiered deadline misses",
             deg["untiered"]["deadline_misses"]],
            ["tiered SLA-violation rate", deg["tiered_violation_rate"]],
            ["untiered SLA-violation rate",
             deg["untiered_violation_rate"]],
            ["shed batches", tiers["sheds"]],
            *[
                [f"{name} served", served]
                for name, served in zip(tiers["names"], tiers["served"])
            ],
        ],
        title="Compression tiers — graceful degradation under overload",
        float_format="{:.3f}",
    ))
