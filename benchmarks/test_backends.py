"""Backends and placement: cost/latency Pareto sweep, optimizer value.

Two measurements back the pluggable-backend framework and the fleet
placement optimizer, all on the virtual clock (bit-reproducible):

- **Cost/latency Pareto sweep** — the four registered backends span
  three orders of magnitude in modeled service time and an order of
  magnitude in unit cost on a wide ISOLET-style model; no single
  backend dominates, which is what makes placement a real problem.
- **Optimizer vs. static provisioning** — the ``PlacementOptimizer``
  splits three SLA tenants across a heterogeneous fleet and the
  resulting ``policy="placed"`` cluster run must dominate (strictly
  cheaper AND no worse measured p99 than) at least one
  single-backend static provisioning of the same tenants.

Results are written machine-readable to ``BENCH_backends.json`` (the
serving sections are built twice and compared, so the file is proven
run-to-run deterministic) and human-readable to the shared
``bench_results.txt`` log.

Set ``BACKENDS_BENCH_REQUESTS`` to shrink the trace for smoke runs.
"""

import json
import os
import pathlib

import numpy as np

import repro
from repro.cluster import ClusterConfig, TenantSpec
from repro.config import FleetSpec
from repro.data import isolet
from repro.edgetpu import compile_model, make_arch
from repro.experiments.report import format_table
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.runtime.placement import PlacementOptimizer
from repro.tflite import convert

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_backends.json"

NUM_REQUESTS = int(os.environ.get("BACKENDS_BENCH_REQUESTS", "12000"))
DIMENSION = 4096
BUCKETS = (1, 8, 32)

# Unit costs roughly track device capability: the big TPU is the
# premium part, the Pi CPU is nearly free, the neuromorphic part sits
# in between on price but three orders of magnitude away on latency.
BACKEND_COSTS = {
    "edgetpu": 4.0,
    "edgetpu-small": 1.5,
    "pi-cpu": 0.5,
    "neuromorphic": 1.0,
}

FLEET = FleetSpec(backends=(
    repro.BackendSpec("edgetpu", count=8, unit_cost=4.0),
    repro.BackendSpec("edgetpu", count=8, unit_cost=1.5,
                      overrides={"mxu_rows": 32, "mxu_cols": 32},
                      name="edgetpu-small"),
    repro.BackendSpec("pi-cpu", count=16, unit_cost=0.5),
    repro.BackendSpec("neuromorphic", count=16, unit_cost=1.0),
))

TENANTS = (
    TenantSpec("interactive", rate_hz=40000.0, deadline_s=0.002,
               num_features=617, num_classes=26),
    TenantSpec("bursty", rate_hz=8000.0, deadline_s=0.02, kind="bursty",
               num_features=617, num_classes=26),
    TenantSpec("background", rate_hz=400.0, deadline_s=1.0,
               num_features=617, num_classes=26),
)

SERVE = repro.ServeConfig(max_batch=8, max_queue=50_000)

_COMPILED = None


def _compiled():
    """Train the wide ISOLET model once (deterministic, but not cheap)."""
    global _COMPILED
    if _COMPILED is None:
        ds = isolet(max_samples=400, seed=7).normalized()
        rng = np.random.default_rng(0)
        encoder = NonlinearEncoder(ds.train_x.shape[1], DIMENSION,
                                   seed=rng)
        classifier = HDCClassifier(dimension=DIMENSION, encoder=encoder,
                                   seed=rng)
        classifier.fit(ds.train_x, ds.train_y, iterations=2,
                       num_classes=26)
        _COMPILED = compile_model(convert(
            from_classifier(classifier, include_argmax=True),
            ds.train_x[:96],
        ))
    return _COMPILED


def _pareto_section():
    """Modeled per-backend service time and cost across batch buckets."""
    rows = {}
    for backend, unit_cost in BACKEND_COSTS.items():
        variant = compile_model(_compiled().model, make_arch(backend))
        arch = variant.arch
        rows[backend] = {
            "unit_cost": unit_cost,
            "active_power_w": arch.active_power_w,
            "idle_power_w": arch.idle_power_w,
            "buckets": {
                str(bucket): {
                    "service_s": variant.invoke_seconds(bucket),
                    "us_per_row": 1e6 * variant.invoke_seconds(bucket)
                    / bucket,
                    "rows_per_s": bucket / variant.invoke_seconds(bucket),
                }
                for bucket in BUCKETS
            },
        }
    # Sanity: the sweep spans a real Pareto frontier — the cheapest
    # backend is not the fastest, so placement has a trade to make.
    fastest = min(rows, key=lambda b: rows[b]["buckets"]["32"]["service_s"])
    cheapest = min(rows, key=lambda b: rows[b]["unit_cost"])
    assert fastest != cheapest
    return rows


def _measured(placement, seed=7):
    """Serve the tenant trace on a placed fleet; return key metrics."""
    config = ClusterConfig(
        tenants=TENANTS, total_requests=NUM_REQUESTS, policy="placed",
        placement=placement, serve=SERVE, seed=seed,
    )
    summary = repro.serve_cluster(_compiled(), config=config).summary()
    return {
        "p99_s": summary["latency"]["p99_s"],
        "mean_s": summary["latency"]["mean_s"],
        "deadline_miss_rate": summary["deadline_miss_rate"],
        "drop_rate": summary["drop_rate"],
        "throughput_rps": summary["throughput_rps"],
        "energy_j": summary["energy_j"],
        "served": summary["served"],
    }


def _placed_section():
    """Optimizer placement on the heterogeneous fleet, then serve it."""
    placement = PlacementOptimizer(FLEET).place(_compiled(), TENANTS)
    backends_used = sorted({d.group for d in placement.decisions})
    assert placement.feasible, placement.summary()
    assert len(backends_used) >= 2, (
        f"optimizer picked a homogeneous placement: {backends_used}"
    )
    return {
        "decisions": placement.describe(),
        "total_cost_rate": placement.total_cost_rate,
        "total_devices": placement.total_devices,
        "backends_used": backends_used,
        "measured": _measured(placement),
    }


def _static_section():
    """Single-backend provisioning of the same tenants, per backend."""
    rows = {}
    for backend, unit_cost in BACKEND_COSTS.items():
        placement = PlacementOptimizer(
            FleetSpec.single(backend, count=64, unit_cost=unit_cost)
        ).place(_compiled(), TENANTS)
        rows[backend] = {
            "total_cost_rate": placement.total_cost_rate,
            "total_devices": placement.total_devices,
            "feasible": placement.feasible,
            "measured": _measured(placement),
        }
    return rows


def _build_payload():
    heterogeneous = _placed_section()
    static = _static_section()

    # Acceptance: the optimizer's heterogeneous placement dominates —
    # strictly cheaper AND no worse measured p99 — at least one static
    # single-backend provisioning (all-neuromorphic cannot meet the
    # 2 ms interactive SLA at any device count, so it is always a
    # victim; all-big-TPU pays the premium part for every tenant).
    het_cost = heterogeneous["total_cost_rate"]
    het_p99 = heterogeneous["measured"]["p99_s"]
    dominated = sorted(
        backend for backend, row in static.items()
        if het_cost < row["total_cost_rate"]
        and het_p99 <= row["measured"]["p99_s"]
    )
    assert dominated, (
        f"heterogeneous placement (cost {het_cost:.2f}, "
        f"p99 {1e3 * het_p99:.2f} ms) dominates no static provisioning"
    )
    return {
        "num_requests": NUM_REQUESTS,
        "tenants": [
            {"name": t.name, "rate_hz": t.rate_hz,
             "deadline_s": t.deadline_s}
            for t in TENANTS
        ],
        "pareto": _pareto_section(),
        "heterogeneous": heterogeneous,
        "static": static,
        "dominated_baselines": dominated,
    }


def test_backends_placement(benchmark, record_result):
    payload = benchmark.pedantic(_build_payload, rounds=1, iterations=1)

    # Acceptance: the whole benchmark is virtual-clock deterministic —
    # a second build must serialize to the identical JSON.
    again = json.dumps(_build_payload(), indent=2, sort_keys=True)
    first = json.dumps(payload, indent=2, sort_keys=True)
    assert first == again, "backends benchmark is not run-deterministic"

    JSON_PATH.write_text(first + "\n")

    het = payload["heterogeneous"]
    rows = [[
        "heterogeneous (optimizer)",
        het["total_cost_rate"],
        het["total_devices"],
        1e3 * het["measured"]["p99_s"],
        het["measured"]["deadline_miss_rate"],
        het["measured"]["energy_j"],
    ]]
    for backend, row in sorted(payload["static"].items()):
        rows.append([
            f"static all-{backend}",
            row["total_cost_rate"],
            row["total_devices"],
            1e3 * row["measured"]["p99_s"],
            row["measured"]["deadline_miss_rate"],
            row["measured"]["energy_j"],
        ])
    record_result(format_table(
        ["fleet", "cost rate", "devices", "p99 (ms)", "miss rate",
         "energy (J)"],
        rows,
        title="Backends — optimizer placement vs. static provisioning",
        float_format="{:.3f}",
    ))
