"""Bench: Fig. 8 — bagging sampling-ratio parameter search (ISOLET).

Paper conclusions: alpha = 0.6 keeps accuracy while cutting recurring
training work to ~70% or less; feature sampling (beta) saves little
runtime, so it is disabled.
"""

from repro.experiments import fig8_param_search


def test_fig8(benchmark, record_result, quick_scale):
    points = benchmark.pedantic(
        fig8_param_search.run,
        kwargs=dict(scale=quick_scale),
        rounds=1, iterations=1,
    )
    alpha = {p.ratio: p for p in points if p.parameter == "alpha"}
    beta = {p.ratio: p for p in points if p.parameter == "beta"}

    # alpha=0.6 cuts recurring runtime substantially without losing
    # accuracy.
    assert alpha[0.6].normalized_runtime < 0.75
    assert alpha[0.6].accuracy > alpha[1.0].accuracy - 0.05

    # beta saves almost nothing (the paper's reason to disable it).
    assert beta[0.6].normalized_runtime > 0.85

    record_result(fig8_param_search.format_result(points))
