"""Bench: energy accounting per platform (extension of Table II).

Backs the paper's "similar average power consumption" framing with
explicit joules: the framework's training energy should undercut both
CPU platforms on every dataset, and the Edge TPU's ~2 W makes inference
energy dramatically lower.
"""

from repro.experiments import energy_table


def test_energy(benchmark, record_result):
    rows = benchmark(energy_table.run)
    assert len(rows) == 5
    for row in rows:
        assert row.framework_training_j < row.host_training_j, row.dataset
        assert row.framework_training_j < row.pi_training_j, row.dataset
        assert row.framework_inference_j < row.pi_inference_j, row.dataset
        assert row.training_efficiency_vs_pi > 1.5, row.dataset
    record_result(energy_table.format_result(rows))
