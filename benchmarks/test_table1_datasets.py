"""Bench: Table I — dataset inventory (and surrogate generation cost)."""

from repro.data import load
from repro.experiments import table1_datasets


def test_table1(benchmark, record_result):
    rows = benchmark(table1_datasets.run)
    assert len(rows) == 5
    record_result(table1_datasets.format_result(rows))


def test_surrogate_generation_throughput(benchmark):
    """Wall-clock cost of materializing a Table-I surrogate slice."""
    ds = benchmark(lambda: load("isolet", max_samples=2000, seed=0))
    assert ds.num_features == 617
