"""Bench: continual on-edge learning under concept drift (extension).

Quantifies the paper's motivating claim that edge models need frequent
updates: under drift, a statically-trained model decays while the
continually-updated model — paying only the cheap host-side
class-hypervector updates plus periodic model regeneration — holds its
accuracy.
"""

from repro.data import DriftingStream, StreamConfig
from repro.experiments.report import format_table
from repro.runtime import ContinualLearner


def test_continual_vs_static(benchmark, record_result):
    cfg = StreamConfig(drift_rate=0.12)

    def run_mode(train):
        stream = DriftingStream(cfg, seed=4)
        learner = ContinualLearner(cfg.num_features, cfg.num_classes,
                                   dimension=1024, refresh_interval=25,
                                   seed=4)
        warm_x, warm_y = stream.test_set(400, seed=1)
        learner.warmup(warm_x, warm_y, iterations=5)
        return learner.run(stream, num_batches=80, train=train)

    def run():
        return run_mode(False), run_mode(True)

    static, continual = benchmark.pedantic(run, rounds=1, iterations=1)

    # The headline: continual updates beat the static model under drift,
    # and the gap widens over time (compare the last quarter).
    assert continual.mean_prequential_accuracy > \
        static.mean_prequential_accuracy
    static_tail = sum(static.prequential_accuracy[-20:]) / 20
    continual_tail = sum(continual.prequential_accuracy[-20:]) / 20
    assert continual_tail > static_tail + 0.03

    record_result(format_table(
        ["mode", "mean preq. acc", "tail acc (last 20)",
         "update (s)", "modelgen (s)"],
        [["static (train once)", static.mean_prequential_accuracy,
          static_tail, static.update_seconds, static.modelgen_seconds],
         ["continual updates", continual.mean_prequential_accuracy,
          continual_tail, continual.update_seconds,
          continual.modelgen_seconds]],
        title="Continual learning under drift (80 batches, drift 0.12)",
    ))
