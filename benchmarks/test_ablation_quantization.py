"""Ablation: int8 post-training quantization vs float inference.

Quantifies Fig. 7's underlying claim at several hypervector widths: HDC
is so redundant that per-element int8 error averages out of the class
scores.  Also benchmarks the quantized interpreter's wall-clock
throughput against float numpy inference.
"""

import numpy as np

from repro.data import isolet
from repro.experiments.report import format_table
from repro.hdc import HDCClassifier
from repro.nn import from_classifier
from repro.tflite import Interpreter, convert

DIMENSIONS = (512, 2048, 8192)


def test_ablation_quantization_accuracy(benchmark, record_result):
    ds = isolet(max_samples=1200, seed=7).normalized()

    def run():
        results = []
        for dimension in DIMENSIONS:
            model = HDCClassifier(dimension=dimension, seed=0)
            model.fit(ds.train_x, ds.train_y, iterations=6,
                      num_classes=ds.num_classes)
            float_acc = model.score(ds.test_x, ds.test_y)
            flat = convert(from_classifier(model), ds.train_x[:128])
            int8_acc = float(np.mean(
                Interpreter(flat).predict(ds.test_x) == ds.test_y
            ))
            results.append((dimension, float_acc, int8_acc))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for dimension, float_acc, int8_acc in results:
        assert int8_acc > float_acc - 0.06, dimension
    record_result(format_table(
        ["dimension", "float accuracy", "int8 accuracy", "drop"],
        [[d, f, q, f - q] for d, f, q in results],
        title="Ablation — int8 quantization vs float (ISOLET)",
    ))


def test_quantized_interpreter_throughput(benchmark):
    """Wall-clock samples/s of the int8 reference interpreter."""
    ds = isolet(max_samples=1200, seed=7).normalized()
    model = HDCClassifier(dimension=2048, seed=0)
    model.fit(ds.train_x, ds.train_y, iterations=3,
              num_classes=ds.num_classes)
    interpreter = Interpreter(
        convert(from_classifier(model), ds.train_x[:128])
    )
    batch = ds.test_x[:128]
    predictions = benchmark(interpreter.predict, batch)
    assert len(predictions) == 128
