"""CI gate: fail when the cluster sweep's wall-clock regresses >= 5x.

Reads the sweep wall time the cluster benchmark just recorded in
``BENCH_cluster.json`` and compares it against the committed budget in
``cluster_wall_budget.json``.  The budget was measured at 10⁵ requests
per sweep point; a run at a different size scales the budget linearly
(the simulator is O(requests) end to end).  The gate trips only at
``max_regression_factor`` times the budget — CI runners are slow and
noisy, so this catches a lost fast path (the scalar pump is ~4x the
budget by itself), not percent-level drift.

Usage::

    python benchmarks/check_wall_budget.py
"""

import json
import pathlib
import sys

HERE = pathlib.Path(__file__).parent


def main() -> int:
    results = json.loads((HERE / "BENCH_cluster.json").read_text())
    budget = json.loads((HERE / "cluster_wall_budget.json").read_text())

    sweep = results["sweep"]
    wall_s = sweep.get("wall_s")
    if wall_s is None:
        print("BENCH_cluster.json has no sweep wall_s field; re-run "
              "benchmarks/test_cluster.py", file=sys.stderr)
        return 2
    requests = sweep["total_requests_per_run"]
    scale = requests / budget["requests_per_sweep_point"]
    allowed = (budget["sweep_wall_s_budget"] * scale
               * budget["max_regression_factor"])
    rate = sweep["sim_requests_per_wall_s"]
    print(f"cluster sweep: {wall_s:.3f}s wall for "
          f"{sweep['routed_requests']} routed requests "
          f"({rate:,.0f} req/s); allowed {allowed:.3f}s "
          f"({budget['sweep_wall_s_budget']}s budget x {scale:g} size "
          f"x {budget['max_regression_factor']}x tolerance)")
    if wall_s > allowed:
        print(f"FAIL: sweep wall time {wall_s:.3f}s exceeds the "
              f"regression gate {allowed:.3f}s — the simulator fast "
              f"path has regressed by >= "
              f"{budget['max_regression_factor']}x; profile with "
              f"`python -m repro.tools profile-cluster`",
              file=sys.stderr)
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
