"""Parallel execution layer: worker-pool training + dispatcher scaling.

Two measurements back the executor design:

- **Bagged training** — M=4 sub-models trained by a 4-worker pool must
  produce the *bit-identical* fused model the sequential path produces
  (the seed-spawning contract) while the modeled makespan — measured
  per-task wall seconds list-scheduled onto the pool's lanes — shows at
  least the 2x speedup the co-design argument needs.  Wall-clock is
  recorded too but not asserted: this container may expose a single
  core, and the repo's reported runtimes are virtual-clock readings.
- **Micro-batched inference** — the dispatcher's modeled throughput
  over a replicated :class:`DevicePool` must scale with pool size.

Both are written machine-readable to ``BENCH_parallel.json`` next to
this file for CI artifact upload, and human-readable to the shared
``bench_results.txt`` log.
"""

import json
import pathlib
import time

import numpy as np

from repro.data import isolet
from repro.edgetpu import DevicePool, compile_model
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_fused
from repro.platforms import MobileCpu
from repro.runtime.executor import ExecutorConfig, MicroBatchDispatcher
from repro.tflite import convert

JSON_PATH = pathlib.Path(__file__).parent / "BENCH_parallel.json"

NUM_MODELS = 4
WORKERS = 4
POOL_SIZES = (1, 2, 4)
MICRO_BATCH = 32


def _train(ds, executor):
    config = BaggingConfig(num_models=NUM_MODELS, dimension=1024,
                           iterations=3, dataset_ratio=0.7)
    trainer = BaggingHDCTrainer(config, seed=0, executor=executor)
    start = time.perf_counter()
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    wall = time.perf_counter() - start
    return trainer, wall


def test_parallel_training_and_dispatch(benchmark, record_result):
    ds = isolet(max_samples=800, seed=7).normalized()

    def run():
        serial_trainer, serial_wall = _train(ds, None)
        parallel_trainer, parallel_wall = _train(
            ds, ExecutorConfig(workers=WORKERS, backend="thread")
        )
        return serial_trainer, serial_wall, parallel_trainer, parallel_wall

    serial_trainer, serial_wall, parallel_trainer, parallel_wall = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    serial_fused = serial_trainer.fuse()
    parallel_fused = parallel_trainer.fuse()
    bit_identical = (
        np.array_equal(serial_fused.base_matrix, parallel_fused.base_matrix)
        and np.array_equal(serial_fused.class_matrix,
                           parallel_fused.class_matrix)
    )
    assert bit_identical, "parallel training broke the determinism contract"

    report = parallel_trainer.last_parallel_report
    assert report is not None and report.workers == WORKERS
    # Acceptance criterion: >= 2x for M=4 at workers=4.  Modeled makespan
    # (measured task seconds scheduled onto 4 lanes) — four near-equal
    # sub-model tasks should land close to 4x.
    assert report.speedup >= 2.0

    # --- inference dispatcher scaling across pool sizes ---
    fused_compiled = compile_model(
        convert(from_fused(parallel_fused), ds.train_x[:128])
    )
    x = ds.test_x
    inference_rows = []
    for pool_size in POOL_SIZES:
        pool = DevicePool(pool_size)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, host=MobileCpu(),
                                          micro_batch=MICRO_BATCH)
        result = dispatcher.dispatch(x, ds.test_y)
        inference_rows.append({
            "pool_size": pool_size,
            "micro_batch": MICRO_BATCH,
            "samples": result.samples,
            "num_batches": result.num_batches,
            "throughput_samples_per_s": result.throughput,
            "makespan_seconds": result.makespan_seconds,
            "serial_seconds": result.serial_seconds,
            "speedup_vs_serial": result.speedup,
            "accuracy": result.accuracy,
        })
    base = inference_rows[0]["throughput_samples_per_s"]
    assert inference_rows[-1]["throughput_samples_per_s"] > base

    payload = {
        "training": {
            "num_models": NUM_MODELS,
            "workers": WORKERS,
            "backend": report.backend,
            "bit_identical": bool(bit_identical),
            "task_seconds": list(report.task_seconds),
            "serial_task_seconds": report.serial_seconds,
            "modeled_makespan_seconds": report.makespan_seconds,
            "modeled_speedup": report.speedup,
            "serial_wall_seconds": serial_wall,
            "parallel_wall_seconds": parallel_wall,
        },
        "inference": inference_rows,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    record_result(format_table(
        ["configuration", "modeled speedup / throughput"],
        [[f"training M={NUM_MODELS}, workers={WORKERS} (vs serial)",
          report.speedup]] +
        [[f"inference pool={row['pool_size']} (samples/s)",
          row["throughput_samples_per_s"]] for row in inference_rows],
        title="Parallel execution — worker pool + micro-batch dispatcher",
        float_format="{:.2f}",
    ))
