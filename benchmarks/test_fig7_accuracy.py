"""Bench: Fig. 7 — inference accuracy across framework settings.

Paper claims: int8 TPU accuracy matches float CPU accuracy, and the
bagged model matches (occasionally beats) the fully-trained full-width
model.
"""

from repro.experiments import fig7_accuracy


def test_fig7(benchmark, record_result, quick_scale):
    results = benchmark.pedantic(
        fig7_accuracy.run,
        kwargs=dict(scale=quick_scale),
        rounds=1, iterations=1,
    )
    assert len(results) == 5
    for result in results:
        assert result.cpu > 0.75, result.dataset
        assert abs(result.quantization_drop) < 0.06, result.dataset
        assert result.tpu_bagged > result.tpu - 0.08, result.dataset
    # The paper observes the ensemble beating the full model on some
    # datasets; expect it on at least one.
    assert any(r.tpu_bagged >= r.tpu for r in results)
    record_result(fig7_accuracy.format_result(results))
