"""Ablation: hypervector width sweep.

HDC accuracy grows with dimension and saturates; runtime grows linearly.
This locates the knee that justifies the paper's d = 10,000 (and the
d' = 2,500 sub-models): below ~1-2k dimensions accuracy degrades, above
it the extra width buys little.
"""

from repro.data import TABLE_I, isolet
from repro.experiments.report import format_table
from repro.hdc import HDCClassifier
from repro.runtime import CostModel, HdcTrainingConfig, Workload

DIMENSIONS = (256, 1024, 4096, 10_000)


def test_ablation_dimension(benchmark, record_result):
    ds = isolet(max_samples=1200, seed=7).normalized()
    cm = CostModel()
    workload = Workload.from_spec(TABLE_I["isolet"])

    def run():
        results = []
        for dimension in DIMENSIONS:
            model = HDCClassifier(dimension=dimension, seed=0)
            model.fit(ds.train_x, ds.train_y, iterations=6,
                      num_classes=ds.num_classes)
            accuracy = model.score(ds.test_x, ds.test_y)
            seconds = cm.cpu_training(
                workload, HdcTrainingConfig(dimension=dimension, iterations=20)
            ).total
            results.append((dimension, accuracy, seconds))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    accuracies = [accuracy for _, accuracy, _ in results]
    seconds = [s for _, _, s in results]

    # Accuracy saturates: the last doubling buys far less than the first.
    assert accuracies[1] > accuracies[0] - 0.02
    assert accuracies[-1] > 0.8
    assert abs(accuracies[-1] - accuracies[-2]) < 0.05
    # Modeled training time grows with width.
    assert seconds == sorted(seconds)

    record_result(format_table(
        ["dimension", "accuracy", "modeled CPU train (s)"],
        [[d, a, s] for d, a, s in results],
        title="Ablation — hypervector width (ISOLET surrogate)",
    ))
