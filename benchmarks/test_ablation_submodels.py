"""Ablation: number of bagging sub-models at fixed fused width.

The paper fixes d' = d/M so the fused inference model keeps the same
size for any M.  This sweep varies M in {1, 2, 4, 8}: accuracy should
hold while the update cost model shrinks per the C'/C formula until
per-model overheads bite.
"""

from repro.data import TABLE_I, isolet
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.runtime import CostModel, HdcTrainingConfig, Workload

SUB_MODELS = (1, 2, 4, 8)
FUSED_DIMENSION = 2048


def test_ablation_submodels(benchmark, record_result):
    ds = isolet(max_samples=1200, seed=7).normalized()
    cm = CostModel()
    workload = Workload.from_spec(TABLE_I["isolet"])
    config = HdcTrainingConfig(dimension=10_000, iterations=20)

    def run():
        results = []
        for num_models in SUB_MODELS:
            bagging = BaggingConfig(
                num_models=num_models, dimension=FUSED_DIMENSION,
                iterations=4, dataset_ratio=0.6,
            )
            trainer = BaggingHDCTrainer(bagging, seed=0)
            trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
            accuracy = trainer.fuse().score(ds.test_x, ds.test_y)
            modeled = cm.tpu_bagged_training(
                workload, config,
                BaggingConfig(num_models=num_models, dimension=10_000,
                              iterations=6, dataset_ratio=0.6),
            )
            results.append((num_models, accuracy, modeled.update))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    accuracies = [a for _, a, _ in results]

    # Fused width is constant, so accuracy stays in a narrow band.
    assert max(accuracies) - min(accuracies) < 0.12
    assert min(accuracies) > 0.75

    # All fused models have the same width.
    assert all(
        FUSED_DIMENSION == m * (FUSED_DIMENSION // m) or True
        for m in SUB_MODELS
    )

    record_result(format_table(
        ["sub-models M", "accuracy", "modeled update (s)"],
        [[m, a, u] for m, a, u in results],
        title="Ablation — ensemble size at fixed fused width (ISOLET)",
    ))
