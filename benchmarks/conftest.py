"""Shared benchmark fixtures and the result log.

Every benchmark regenerates one paper table/figure (or an ablation) and
appends its formatted output to ``bench_results.txt`` next to this file,
so a full ``pytest benchmarks/ --benchmark-only`` run leaves a complete
paper-vs-measured record behind.
"""

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "bench_results.txt"


@pytest.fixture(scope="session")
def record_result():
    """Append a formatted experiment table to the results log."""
    RESULTS_PATH.write_text("")

    def _record(text: str) -> None:
        with RESULTS_PATH.open("a") as handle:
            handle.write(text)
            handle.write("\n\n")

    return _record


@pytest.fixture(scope="session")
def quick_scale():
    from repro.experiments import QUICK
    return QUICK
