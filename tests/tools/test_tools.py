"""Tests for the command-line tools."""

import pytest

from repro.tflite import FlatModel
from repro.tools.__main__ import main as dispatch
from repro.tools.inspect import main as inspect_main
from repro.tools.train import main as train_main


@pytest.fixture(scope="module")
def trained_model_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("models") / "pamap2.rtfl"
    code = train_main([
        "pamap2", "--dimension", "512", "--iterations", "3",
        "--max-samples", "800", "-o", str(path),
    ])
    assert code == 0
    return path


class TestTrainTool:
    def test_writes_loadable_model(self, trained_model_path):
        model = FlatModel.load(trained_model_path)
        assert model.output_is_index
        assert model.input_spec.shape == (27,)

    def test_reports_accuracy(self, trained_model_path, capsys):
        # Re-run to capture output (module fixture already consumed it).
        code = train_main([
            "pamap2", "--dimension", "256", "--iterations", "2",
            "--max-samples", "600", "-o", str(trained_model_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "test accuracy" in out
        assert "saved quantized model" in out

    def test_bagging_flag(self, tmp_path, capsys):
        path = tmp_path / "bagged.rtfl"
        code = train_main([
            "pamap2", "--bagging", "--models", "2",
            "--bagging-iterations", "2", "--dimension", "512",
            "--max-samples", "600", "-o", str(path),
        ])
        assert code == 0
        assert path.exists()

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            train_main(["cifar10"])


class TestInspectTool:
    def test_reports_compilation(self, trained_model_path, capsys):
        code = inspect_main([str(trained_model_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ops mapped to TPU" in out
        assert "us/sample" in out

    def test_disasm_flag(self, trained_model_path, capsys):
        code = inspect_main([str(trained_model_path), "--disasm"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MATMUL" in out and "DMA_IN" in out

    def test_usb_override_changes_latency(self, trained_model_path, capsys):
        inspect_main([str(trained_model_path), "--batches", "64"])
        fast = capsys.readouterr().out
        inspect_main([str(trained_model_path), "--batches", "64",
                      "--usb-mbps", "10"])
        slow = capsys.readouterr().out
        assert fast != slow


class TestDispatch:
    def test_dispatches_inspect(self, trained_model_path, capsys):
        assert dispatch(["inspect", str(trained_model_path)]) == 0
        assert "ops mapped" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert dispatch(["frobnicate"]) == 2

    def test_no_command_usage(self, capsys):
        assert dispatch([]) == 2
        assert "usage" in capsys.readouterr().out

    def test_help(self, capsys):
        assert dispatch(["--help"]) == 0
