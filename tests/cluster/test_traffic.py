"""Multi-tenant traffic: superposition order, isolation, diurnal shape."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.cluster.traffic as traffic_module
from repro.cluster import DiurnalCurve, MultiTenantTraffic, TenantSpec


def _collect(tenants, n, seed=0):
    return list(MultiTenantTraffic(tenants, n, seed=seed).requests())


def test_superposition_is_time_ordered_and_complete(tenant_mix):
    requests = _collect(tenant_mix, 2000)
    assert len(requests) == 2000
    arrivals = [r.arrival_s for r in requests]
    assert arrivals == sorted(arrivals)
    assert [r.request_id for r in requests] == list(range(2000))
    # every tenant shows up, deadline = arrival + its SLA budget
    tenants = {r.tenant for r in requests}
    assert tenants == {0, 1, 2}
    for request in requests[:50]:
        spec = tenant_mix[request.tenant]
        assert request.deadline_s == pytest.approx(
            request.arrival_s + spec.deadline_s
        )
        assert request.features.shape == (spec.num_features,)


def test_deterministic_per_seed(tenant_mix):
    a = _collect(tenant_mix, 800, seed=11)
    b = _collect(tenant_mix, 800, seed=11)
    c = _collect(tenant_mix, 800, seed=12)
    assert [(r.arrival_s, r.tenant, r.label) for r in a] == \
        [(r.arrival_s, r.tenant, r.label) for r in b]
    assert [r.arrival_s for r in a] != [r.arrival_s for r in c]
    for left, right in zip(a, b):
        np.testing.assert_array_equal(left.features, right.features)


def test_adding_a_tenant_never_perturbs_existing_tenants(tenant_mix):
    """The seed-isolation regression: under a naive ``seed + i``
    layout the fourth tenant would renumber nothing for tenants 0-2
    (arrival domain) but collide payload/thinning streams; spawn-keyed
    children keep tenant 0's trace bit-identical."""
    before = _collect(tenant_mix, 3000, seed=7)
    grown = tenant_mix + (
        TenantSpec("newcomer", rate_hz=900.0, deadline_s=0.02),
    )
    after = _collect(grown, 3000, seed=7)
    key = lambda reqs, t: [(r.arrival_s, r.label) for r in reqs
                           if r.tenant == t]
    for tenant in range(3):
        old = key(before, tenant)
        new = key(after, tenant)
        # The run is truncated at 3000 superposed arrivals, so compare
        # the common prefix — it must be bit-identical.
        n = min(len(old), len(new))
        assert n > 0
        assert old[:n] == new[:n]


def test_diurnal_spike_concentrates_arrivals():
    spike = DiurnalCurve(spike_at_s=1.0, spike_duration_s=1.0,
                         spike_factor=10.0)
    tenant = TenantSpec("spiky", rate_hz=200.0, deadline_s=0.1,
                        curve=spike)
    requests = _collect((tenant,), 3000, seed=3)
    arrivals = np.array([r.arrival_s for r in requests])
    inside = ((arrivals >= 1.0) & (arrivals < 2.0)).sum()
    before = ((arrivals >= 0.0) & (arrivals < 1.0)).sum()
    # 10x the rate inside the window; allow generous sampling slack.
    assert inside > 4 * before


def test_diurnal_curve_multipliers_and_peak():
    curve = DiurnalCurve(period_s=10.0, amplitude=0.5, spike_at_s=3.0,
                         spike_duration_s=1.0, spike_factor=4.0)
    assert curve.peak == pytest.approx(1.5 * 4.0)
    times = np.array([0.0, 2.5, 3.5, 7.5])
    values = curve.multipliers(times)
    assert values[0] == pytest.approx(1.0)
    assert values[1] == pytest.approx(1.5)        # sinusoid crest
    assert values[3] == pytest.approx(0.5)        # sinusoid trough
    assert values[2] == pytest.approx(
        4.0 * (1.0 + 0.5 * np.sin(2 * np.pi * 0.35))
    )


def test_flat_curve_skips_thinning():
    tenant = TenantSpec("flat", rate_hz=100.0, deadline_s=0.1)
    requests = _collect((tenant,), 500, seed=5)
    rate = len(requests) / requests[-1].arrival_s
    assert rate == pytest.approx(100.0, rel=0.25)


@st.composite
def _tenant_mixes(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    tenants = []
    for index in range(count):
        if draw(st.booleans()):
            curve = DiurnalCurve()  # flat: skips thinning entirely
        else:
            curve = DiurnalCurve(
                period_s=draw(st.sampled_from((2.0, 30.0))),
                amplitude=draw(st.sampled_from((0.3, 0.8))),
                phase=draw(st.sampled_from((0.0, 0.25))),
            )
        drifting = draw(st.booleans())
        tenants.append(TenantSpec(
            f"tenant{index}",
            rate_hz=draw(st.sampled_from((5.0, 90.0, 700.0))),
            deadline_s=draw(st.sampled_from((0.02, 0.5))),
            kind=draw(st.sampled_from(("poisson", "bursty"))),
            drift_rate=0.05 if drifting else 0.0,
            drift_every=64 if drifting else 0,
            curve=curve,
        ))
    return tuple(tenants)


@settings(max_examples=40, deadline=None)
@given(mix=_tenant_mixes(),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       total=st.integers(min_value=1, max_value=400),
       chunk=st.sampled_from((7, 64, 1024)))
def test_chunked_generation_is_bit_identical_to_streamed(
        mix, seed, total, chunk):
    """The fast-path contract: ``chunks()`` (columnar, lexsort-merged)
    emits the exact ``(time, tenant, features, label, deadline)``
    sequence of the scalar heap merge ``requests_streamed()``, for any
    tenant mix, seed and draw-block size.  Shrinking the module block
    constant forces many refill boundaries — the only place the two
    code paths could diverge — without generating thousands of
    requests per example."""
    original = traffic_module._CHUNK
    traffic_module._CHUNK = chunk
    try:
        streamed = list(
            MultiTenantTraffic(mix, total, seed=seed).requests_streamed()
        )
        chunked = list(MultiTenantTraffic(mix, total, seed=seed).requests())
    finally:
        traffic_module._CHUNK = original
    assert len(chunked) == len(streamed) == total
    for new, old in zip(chunked, streamed):
        assert new.request_id == old.request_id
        assert new.arrival_s == old.arrival_s
        assert new.deadline_s == old.deadline_s
        assert new.tenant == old.tenant
        assert new.label == old.label
        np.testing.assert_array_equal(new.features, old.features)


def test_chunk_columns_are_contiguous_and_ordered(tenant_mix):
    traffic = MultiTenantTraffic(tenant_mix, 2000, seed=9)
    base = 0
    times = []
    for chunk in traffic.chunks():
        assert chunk.base_id == base
        assert len(chunk.times) == len(chunk.tenants) \
            == len(chunk.labels) == len(chunk.deadlines) \
            == chunk.features.shape[0]
        base += len(chunk.times)
        times.extend(chunk.times.tolist())
    assert base == 2000
    assert times == sorted(times)


def test_chunks_reject_mixed_feature_widths():
    mixed = (
        TenantSpec("narrow", rate_hz=50.0, deadline_s=0.1,
                   num_features=8),
        TenantSpec("wide", rate_hz=50.0, deadline_s=0.1,
                   num_features=32),
    )
    traffic = MultiTenantTraffic(mixed, 100, seed=0)
    with pytest.raises(ValueError, match="uniform"):
        next(traffic.chunks())
    # requests() falls back to the streamed path transparently.
    assert len(list(traffic.requests())) == 100


def test_validation():
    tenant = TenantSpec("ok", rate_hz=1.0, deadline_s=1.0)
    with pytest.raises(ValueError):
        MultiTenantTraffic((), 10)
    with pytest.raises(TypeError):
        MultiTenantTraffic(("nope",), 10)
    with pytest.raises(ValueError):
        MultiTenantTraffic((tenant, tenant), 10)  # duplicate names
    with pytest.raises(ValueError):
        MultiTenantTraffic((tenant,), 0)
    with pytest.raises(ValueError):
        TenantSpec("bad", rate_hz=0.0, deadline_s=1.0)
    with pytest.raises(ValueError):
        TenantSpec("bad", rate_hz=1.0, deadline_s=0.0)
    with pytest.raises(ValueError):
        DiurnalCurve(amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalCurve(spike_factor=0.5)
