"""The refactor contract: engine-driven serve ≡ the frozen old loop.

``InferenceServer.serve`` now runs on the discrete-event engine via a
:class:`~repro.cluster.replica.Replica` actor.  These tests pin it
byte-for-byte against :func:`repro.serving._reference.serve_reference`
— the pre-refactor loop kept verbatim as an oracle — across batcher
policies, admission pressure, streamed input and tracing.
"""

import json

import numpy as np
import pytest

from repro.config import ServeConfig
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu.multidevice import DevicePool
from repro.observability.trace import Tracer
from repro.serving import ArrivalProcess, RequestStream
from repro.serving._reference import serve_reference
from repro.serving.server import InferenceServer

from tests.cluster.conftest import NUM_CLASSES, NUM_FEATURES


def _trace(num_requests=300, rate_hz=300.0, kind="bursty", seed=5,
           deadline_s=0.04):
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    arrivals = ArrivalProcess(rate_hz, kind, seed=seed)
    return list(RequestStream(stream, arrivals, deadline_s=deadline_s,
                              drift_every=1).generate(num_requests))


def _server(compiled_model, config, num_devices=2, tracer=None):
    pool = DevicePool(num_devices, compiled_model.arch)
    pool.load_replicated(compiled_model)
    return InferenceServer(pool, config=config, tracer=tracer)


def _assert_reports_identical(new, old):
    assert json.dumps(new.summary(), sort_keys=True) == \
        json.dumps(old.summary(), sort_keys=True)
    np.testing.assert_array_equal(new.predictions, old.predictions)
    np.testing.assert_array_equal(new.latencies, old.latencies)
    assert new.makespan_s == old.makespan_s
    assert new.batch_sizes == old.batch_sizes
    assert new.device_busy_seconds == old.device_busy_seconds
    assert new.dropped == old.dropped


CONFIGS = [
    pytest.param(ServeConfig(), id="dynamic"),
    pytest.param(ServeConfig(slack_s=0.002, max_batch=4), id="slack"),
    pytest.param(ServeConfig(batcher="fixed", max_batch=8,
                             timeout_s=0.01), id="fixed"),
    pytest.param(ServeConfig(max_queue=4), id="drops"),
]


@pytest.mark.parametrize("config", CONFIGS)
def test_serve_matches_reference_loop(compiled_model, config):
    requests = _trace()
    new = _server(compiled_model, config).serve(requests)
    old = serve_reference(_server(compiled_model, config), requests)
    _assert_reports_identical(new, old)


def test_streamed_input_matches_list_input(compiled_model):
    config = ServeConfig()
    requests = _trace()
    exact = _server(compiled_model, config).serve(requests)
    streamed = _server(compiled_model, config).serve(iter(requests))
    _assert_reports_identical(streamed, exact)


def test_traced_serve_matches_reference_spans(compiled_model):
    config = ServeConfig(max_queue=8)
    requests = _trace(num_requests=150)
    new_tracer, old_tracer = Tracer(enabled=True), Tracer(enabled=True)
    new = _server(compiled_model, config, tracer=new_tracer).serve(
        requests
    )
    old = serve_reference(
        _server(compiled_model, config, tracer=old_tracer), requests
    )
    _assert_reports_identical(new, old)
    new_spans = [span.to_dict() for span in new_tracer.spans]
    old_spans = [span.to_dict() for span in old_tracer.spans]
    assert new_spans == old_spans


def test_single_device_and_empty_trace(compiled_model):
    config = ServeConfig()
    requests = _trace(num_requests=80, kind="poisson")
    new = _server(compiled_model, config, num_devices=1).serve(requests)
    old = serve_reference(
        _server(compiled_model, config, num_devices=1), requests
    )
    _assert_reports_identical(new, old)
    empty_new = _server(compiled_model, config).serve([])
    empty_old = serve_reference(_server(compiled_model, config), [])
    assert json.dumps(empty_new.summary(), sort_keys=True) == \
        json.dumps(empty_old.summary(), sort_keys=True)
