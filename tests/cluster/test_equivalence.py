"""The refactor contract: engine-driven serve ≡ the frozen old loop.

``InferenceServer.serve`` now runs on the discrete-event engine via a
:class:`~repro.cluster.replica.Replica` actor.  These tests pin it
byte-for-byte against :func:`repro.serving._reference.serve_reference`
— the pre-refactor loop kept verbatim as an oracle — across batcher
policies, admission pressure, streamed input and tracing.

The second half pins the *cluster* vectorized fast path (chunked
traffic + batched routing + columnar bookkeeping + macro-stepped
arrival pump, ``ClusterConfig(fast=True)``) byte-for-byte against the
scalar event-per-arrival pump (``fast=False``) across router policies,
tiered shedding, autoscaling, failure injection and cluster tracing.
"""

import json

import numpy as np
import pytest

from repro.cluster import (
    AutoscalerConfig,
    Cluster,
    ClusterConfig,
    TenantSpec,
)
from repro.compression.tiers import TierSpec, build_tiers
from repro.config import ServeConfig
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu.multidevice import DevicePool, FailurePlan
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
from repro.observability.trace import Tracer
from repro.serving import ArrivalProcess, RequestStream
from repro.serving._reference import serve_reference
from repro.serving.server import InferenceServer

from tests.cluster.conftest import NUM_CLASSES, NUM_FEATURES


def _trace(num_requests=300, rate_hz=300.0, kind="bursty", seed=5,
           deadline_s=0.04):
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    arrivals = ArrivalProcess(rate_hz, kind, seed=seed)
    return list(RequestStream(stream, arrivals, deadline_s=deadline_s,
                              drift_every=1).generate(num_requests))


def _server(compiled_model, config, num_devices=2, tracer=None):
    pool = DevicePool(num_devices, compiled_model.arch)
    pool.load_replicated(compiled_model)
    return InferenceServer(pool, config=config, tracer=tracer)


def _assert_reports_identical(new, old):
    assert json.dumps(new.summary(), sort_keys=True) == \
        json.dumps(old.summary(), sort_keys=True)
    np.testing.assert_array_equal(new.predictions, old.predictions)
    np.testing.assert_array_equal(new.latencies, old.latencies)
    assert new.makespan_s == old.makespan_s
    assert new.batch_sizes == old.batch_sizes
    assert new.device_busy_seconds == old.device_busy_seconds
    assert new.dropped == old.dropped


CONFIGS = [
    pytest.param(ServeConfig(), id="dynamic"),
    pytest.param(ServeConfig(slack_s=0.002, max_batch=4), id="slack"),
    pytest.param(ServeConfig(batcher="fixed", max_batch=8,
                             timeout_s=0.01), id="fixed"),
    pytest.param(ServeConfig(max_queue=4), id="drops"),
]


@pytest.mark.parametrize("config", CONFIGS)
def test_serve_matches_reference_loop(compiled_model, config):
    requests = _trace()
    new = _server(compiled_model, config).serve(requests)
    old = serve_reference(_server(compiled_model, config), requests)
    _assert_reports_identical(new, old)


def test_streamed_input_matches_list_input(compiled_model):
    config = ServeConfig()
    requests = _trace()
    exact = _server(compiled_model, config).serve(requests)
    streamed = _server(compiled_model, config).serve(iter(requests))
    _assert_reports_identical(streamed, exact)


def test_traced_serve_matches_reference_spans(compiled_model):
    config = ServeConfig(max_queue=8)
    requests = _trace(num_requests=150)
    new_tracer, old_tracer = Tracer(enabled=True), Tracer(enabled=True)
    new = _server(compiled_model, config, tracer=new_tracer).serve(
        requests
    )
    old = serve_reference(
        _server(compiled_model, config, tracer=old_tracer), requests
    )
    _assert_reports_identical(new, old)
    new_spans = [span.to_dict() for span in new_tracer.spans]
    old_spans = [span.to_dict() for span in old_tracer.spans]
    assert new_spans == old_spans


def test_single_device_and_empty_trace(compiled_model):
    config = ServeConfig()
    requests = _trace(num_requests=80, kind="poisson")
    new = _server(compiled_model, config, num_devices=1).serve(requests)
    old = serve_reference(
        _server(compiled_model, config, num_devices=1), requests
    )
    _assert_reports_identical(new, old)
    empty_new = _server(compiled_model, config).serve([])
    empty_old = serve_reference(_server(compiled_model, config), [])
    assert json.dumps(empty_new.summary(), sort_keys=True) == \
        json.dumps(empty_old.summary(), sort_keys=True)


# ----------------------------------------------------------------------
# Cluster fast path ≡ scalar pump
#
# Every comparison below runs the same ClusterConfig twice — once with
# the vectorized fast path (fast=True, the default) and once with the
# scalar event-per-arrival pump (fast=False) — and demands identity
# down to the last float: predictions, modeled latencies, batch
# splits, device busy time, the merged latency tracker's *value
# order*, and the full summary JSON (which folds in per-tenant SLA
# rows and scaling events).


def _cluster(compiled_model, tenant_mix, fast, *, tiers=None,
             tracer=None, failures=(), **overrides):
    kwargs = dict(tenants=tenant_mix, total_requests=3000,
                  num_replicas=2, seed=7)
    kwargs.update(overrides)
    cluster = Cluster(compiled_model, ClusterConfig(fast=fast, **kwargs),
                      tiers=tiers, tracer=tracer)
    for replica_index, plan in failures:
        cluster.replicas[replica_index].server.pool.schedule_failure(
            plan
        )
    return cluster


def _assert_cluster_reports_identical(fast, scalar):
    assert json.dumps(fast.summary(), sort_keys=True) == \
        json.dumps(scalar.summary(), sort_keys=True)
    assert fast.makespan_s == scalar.makespan_s
    assert fast.device_seconds == scalar.device_seconds
    assert fast.routed_counts == scalar.routed_counts
    assert fast.latency._values == scalar.latency._values
    assert len(fast.replica_reports) == len(scalar.replica_reports)
    for new, old in zip(fast.replica_reports, scalar.replica_reports):
        np.testing.assert_array_equal(new.predictions, old.predictions)
        np.testing.assert_array_equal(new.latencies, old.latencies)
        assert new.batch_sizes == old.batch_sizes
        assert new.device_busy_seconds == old.device_busy_seconds
        assert new.deadline_misses == old.deadline_misses
        assert new.dropped == old.dropped
        assert new.makespan_s == old.makespan_s
        assert new.latency._values == old.latency._values
        assert new.tier_batches == old.tier_batches
        assert new.tier_sheds == old.tier_sheds
        if old.request_tiers is None:
            assert new.request_tiers is None
        else:
            np.testing.assert_array_equal(new.request_tiers,
                                          old.request_tiers)


def _compare(compiled_model, tenant_mix, **kwargs):
    fast = _cluster(compiled_model, tenant_mix, True, **kwargs)
    scalar = _cluster(compiled_model, tenant_mix, False, **kwargs)
    assert fast._pump is not None, "fast run fell back to scalar"
    assert scalar._pump is None
    fast_report, scalar_report = fast.run(), scalar.run()
    _assert_cluster_reports_identical(fast_report, scalar_report)
    return fast_report, scalar_report


@pytest.mark.parametrize("policy,num_replicas", [
    ("round_robin", 3),
    ("round_robin", 1),
    ("tenant_affinity", 2),
    ("consistent_hash", 4),
])
def test_cluster_fast_path_matches_scalar_per_policy(
        compiled_model, tenant_mix, policy, num_replicas):
    _compare(compiled_model, tenant_mix, policy=policy,
             num_replicas=num_replicas)


@pytest.mark.parametrize("serve", [
    pytest.param(ServeConfig(batcher="fixed", max_batch=4,
                             timeout_s=0.01), id="fixed_batcher"),
    pytest.param(ServeConfig(max_queue=4), id="drops"),
])
def test_cluster_fast_path_matches_scalar_under_pressure(
        compiled_model, tenant_mix, serve):
    _compare(compiled_model, tenant_mix, serve=serve)


def test_cluster_fast_path_matches_scalar_with_autoscaler(
        compiled_model, tenant_mix):
    """Autoscaling reads mid-run report state, so bookkeeping cannot
    fully defer — this pins the partial-deferral path, including the
    periodic tick interleaving with macro-stepped arrivals."""
    autoscaler = AutoscalerConfig(interval_s=0.5, queue_high=8,
                                  queue_low=2, miss_high=0.02,
                                  cooldown_s=1.0)
    fast, _ = _compare(compiled_model, tenant_mix,
                       autoscaler=autoscaler, total_requests=6000)
    assert fast.scaling_events, "autoscaler never fired; weak test"


def test_cluster_fast_path_matches_scalar_under_failures(
        compiled_model, tenant_mix):
    failures = (
        (0, FailurePlan(device_index=0, at_s=1.0, mode="usb_stall")),
        (1, FailurePlan(device_index=0, at_s=2.0, mode="device_loss",
                        detect_seconds=0.01)),
    )
    _compare(compiled_model, tenant_mix, devices_per_replica=2,
             failures=failures, total_requests=6000)


@pytest.fixture(scope="module")
def tier_ladder():
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    x, y = stream.next_batch(240)
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=3, dimension=256, iterations=3),
        seed=7,
    )
    trainer.fit(x, y)
    return build_tiers(
        trainer.fuse(), x[:96],
        specs=(TierSpec("full"),
               TierSpec("mid", "dpq", dimension=128),
               TierSpec("low", "ldc", dimension=64)),
    )


def test_cluster_fast_path_matches_scalar_with_tiered_shedding(
        tenant_mix, tier_ladder):
    """A hot mix forces degraded-tier batches; the fast path must shed
    the exact same batches to the exact same tiers."""
    hot = tuple(
        TenantSpec(spec.name, rate_hz=spec.rate_hz * 12.0,
                   deadline_s=spec.deadline_s / 10.0, kind=spec.kind)
        for spec in tenant_mix
    )
    fast, _ = _compare(tier_ladder[0].compiled, hot, tiers=tier_ladder,
                       total_requests=4000)
    sheds = sum(r.tier_sheds for r in fast.replica_reports)
    assert sheds > 0, "no batches shed; weak test"


def test_cluster_traced_run_matches_untraced_and_scalar_spans(
        compiled_model, tenant_mix):
    fast_tracer = Tracer(enabled=True)
    scalar_tracer = Tracer(enabled=True)
    traced_fast = _cluster(compiled_model, tenant_mix, True,
                           tracer=fast_tracer).run()
    traced_scalar = _cluster(compiled_model, tenant_mix, False,
                             tracer=scalar_tracer).run()
    _assert_cluster_reports_identical(traced_fast, traced_scalar)
    fast_spans = [span.to_dict() for span in fast_tracer.spans]
    scalar_spans = [span.to_dict() for span in scalar_tracer.spans]
    assert fast_spans == scalar_spans
    untraced = _cluster(compiled_model, tenant_mix, True).run()
    _assert_cluster_reports_identical(traced_fast, untraced)


def test_least_queue_and_fast_off_fall_back_to_scalar_pump(
        compiled_model, tenant_mix):
    assert _cluster(compiled_model, tenant_mix, True,
                    policy="least_queue")._pump is None
    assert _cluster(compiled_model, tenant_mix, False)._pump is None
    assert _cluster(compiled_model, tenant_mix, True)._pump is not None
