"""Shared fixtures: a tiny compiled model and a standard tenant mix."""

import numpy as np
import pytest

from repro.cluster import TenantSpec
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import compile_model
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.tflite import convert

NUM_FEATURES = 16
NUM_CLASSES = 3
DIMENSION = 256


@pytest.fixture(scope="package")
def compiled_model():
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    train_x, train_y = stream.next_batch(240)
    rng = np.random.default_rng(0)
    encoder = NonlinearEncoder(NUM_FEATURES, DIMENSION, seed=rng)
    classifier = HDCClassifier(dimension=DIMENSION, encoder=encoder,
                               seed=rng)
    classifier.fit(train_x, train_y, iterations=4,
                   num_classes=NUM_CLASSES)
    return compile_model(
        convert(from_classifier(classifier, include_argmax=True),
                train_x[:96])
    )


@pytest.fixture(scope="package")
def tenant_mix():
    return (
        TenantSpec("interactive", rate_hz=400.0, deadline_s=0.05),
        TenantSpec("bursty", rate_hz=200.0, deadline_s=0.2,
                   kind="bursty"),
        TenantSpec("background", rate_hz=100.0, deadline_s=1.0),
    )
