"""End-to-end cluster runs: determinism, policies, scaling, facade."""

import json

import pytest

import repro
from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    DiurnalCurve,
    POLICIES,
    TenantSpec,
)
from repro.config import FleetSpec, ServeConfig
from repro.observability.metrics import MetricsRegistry
from repro.runtime.placement import PlacementOptimizer


def _summary(compiled, **overrides):
    config = ClusterConfig(**overrides)
    return repro.serve_cluster(compiled, config=config).summary()


@pytest.mark.parametrize("policy", POLICIES)
def test_every_policy_serves_the_whole_trace(compiled_model,
                                             tenant_mix, policy):
    overrides = {}
    if policy == "placed":
        optimizer = PlacementOptimizer(
            FleetSpec.single("edgetpu", count=8)
        )
        overrides["placement"] = optimizer.place(compiled_model,
                                                 tenant_mix)
    summary = _summary(compiled_model, tenants=tenant_mix,
                       total_requests=1200, num_replicas=2,
                       policy=policy, seed=7, **overrides)
    assert summary["policy"] == policy
    assert summary["num_requests"] == 1200
    assert summary["served"] + summary["dropped"] == 1200
    assert sum(summary["routed"]) == 1200


@pytest.mark.parametrize("policy", ["round_robin", "least_queue",
                                    "consistent_hash"])
def test_runs_are_bit_deterministic_per_seed(compiled_model,
                                             tenant_mix, policy):
    kwargs = dict(tenants=tenant_mix, total_requests=1000,
                  num_replicas=2, policy=policy, seed=13)
    first = json.dumps(_summary(compiled_model, **kwargs),
                       sort_keys=True)
    second = json.dumps(_summary(compiled_model, **kwargs),
                        sort_keys=True)
    assert first == second
    other_seed = json.dumps(
        _summary(compiled_model, **{**kwargs, "seed": 14}),
        sort_keys=True,
    )
    assert first != other_seed


def test_traffic_is_identical_across_replica_counts(compiled_model,
                                                    tenant_mix):
    """Routing consumes the trace but never feeds back into it: the
    superposed arrival set is the same for 1, 2 or 4 replicas."""
    totals = []
    for num_replicas in (1, 2, 4):
        summary = _summary(compiled_model, tenants=tenant_mix,
                           total_requests=900,
                           num_replicas=num_replicas, seed=21)
        totals.append(
            tuple(sorted((row["name"], row["requests"])
                         for row in summary["tenants"]))
        )
    assert totals[0] == totals[1] == totals[2]


def test_tenant_affinity_applies_tenant_config_on_home_replica(
        compiled_model):
    tenants = (
        TenantSpec("strict", rate_hz=1500.0, deadline_s=0.02,
                   config=ServeConfig(max_queue=2)),
        TenantSpec("lax", rate_hz=300.0, deadline_s=0.5),
    )
    summary = _summary(compiled_model, tenants=tenants,
                       total_requests=1500, num_replicas=2,
                       policy="tenant_affinity", seed=5)
    by_name = {row["name"]: row for row in summary["tenants"]}
    # tenant 0's home replica runs max_queue=2, so the flood sheds
    assert by_name["strict"]["dropped"] > 0
    assert by_name["lax"]["dropped"] == 0


def test_autoscaler_reacts_to_spike_and_bills_device_seconds(
        compiled_model):
    spike = DiurnalCurve(spike_at_s=1.5, spike_duration_s=2.0,
                         spike_factor=8.0)
    tenants = (TenantSpec("spiky", rate_hz=400.0, deadline_s=0.05,
                          curve=spike),)
    metrics = MetricsRegistry()
    config = ClusterConfig(
        tenants=tenants, total_requests=4000, num_replicas=2,
        policy="least_queue", seed=3, tracing=True,
        autoscaler=AutoscalerConfig(interval_s=0.25, queue_high=16,
                                    queue_low=2, up_streak=1,
                                    cooldown_s=0.5, provision_s=0.5),
    )
    report = repro.serve_cluster(compiled_model, config=config,
                                 metrics=metrics)
    actions = [e.action for e in report.scaling_events]
    assert "scale_up" in actions
    assert "device_online" in actions
    # every scale-up decision commits provision_s later
    ups = [e for e in report.scaling_events if e.action == "scale_up"]
    commits = [e for e in report.scaling_events
               if e.action == "device_online"]
    assert len(commits) == len(ups)
    for up, commit in zip(ups, commits):
        assert commit.time_s == pytest.approx(up.time_s + 0.5)
    # the bill covers the base fleet plus the elastic additions
    base = 2 * report.makespan_s
    assert report.device_seconds > base
    assert metrics.counter("cluster.scale_ups").value == len(ups)
    # scaling actions land in the trace
    names = {span.name for span in report.trace.spans}
    assert "cluster.serve" in names
    assert "cluster.scale_up" in names


def test_autoscaled_run_is_deterministic(compiled_model, tenant_mix):
    config = dict(
        tenants=tenant_mix, total_requests=1500, num_replicas=2,
        seed=17,
        autoscaler=AutoscalerConfig(interval_s=0.5, queue_high=8,
                                    up_streak=1, cooldown_s=1.0,
                                    provision_s=0.5),
    )
    first = _summary(compiled_model, **config)
    second = _summary(compiled_model, **config)
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


def test_max_events_budget_guards_runaway_runs(compiled_model,
                                               tenant_mix):
    with pytest.raises(RuntimeError, match="budget"):
        _summary(compiled_model, tenants=tenant_mix,
                 total_requests=2000, max_events=50)


def test_serve_cluster_accepts_pipeline_results_and_rejects_junk(
        compiled_model, tenant_mix):
    config = ClusterConfig(tenants=tenant_mix, total_requests=200)

    class FakeTrained:
        compiled = compiled_model

    report = repro.serve_cluster(FakeTrained(), config=config)
    assert report.num_requests == 200
    with pytest.raises(TypeError):
        repro.serve_cluster(object(), config=config)


def test_cluster_runs_once(compiled_model, tenant_mix):
    from repro.cluster import Cluster

    cluster = Cluster(compiled_model,
                      ClusterConfig(tenants=tenant_mix,
                                    total_requests=200))
    cluster.run()
    with pytest.raises(RuntimeError):
        cluster.run()


def test_config_validation(tenant_mix):
    with pytest.raises(ValueError):
        ClusterConfig(tenants=())
    with pytest.raises(ValueError):
        ClusterConfig(tenants=tenant_mix, total_requests=0)
    with pytest.raises(ValueError):
        ClusterConfig(tenants=tenant_mix, num_replicas=0)
    with pytest.raises(ValueError):
        ClusterConfig(tenants=tenant_mix, devices_per_replica=0)
    with pytest.raises(ValueError):
        ClusterConfig(tenants=tenant_mix, policy="sticky")
    with pytest.raises(TypeError):
        ClusterConfig(tenants=tenant_mix, serve="dynamic")
    with pytest.raises(TypeError):
        ClusterConfig(tenants=tenant_mix, autoscaler="yes")
