"""Domain-separated child seeds: stability and independence."""

import numpy as np

from repro.cluster import (
    DOMAIN_ARRIVALS,
    DOMAIN_FAILURES,
    DOMAIN_PAYLOAD,
    child_rng,
    child_seed,
)

import pytest


def test_child_is_deterministic():
    a = child_rng(7, DOMAIN_ARRIVALS, 3).random(16)
    b = child_rng(7, DOMAIN_ARRIVALS, 3).random(16)
    np.testing.assert_array_equal(a, b)


def test_children_differ_across_domain_and_index():
    base = child_rng(7, DOMAIN_ARRIVALS, 0).random(16)
    other_domain = child_rng(7, DOMAIN_FAILURES, 0).random(16)
    other_index = child_rng(7, DOMAIN_ARRIVALS, 1).random(16)
    other_seed = child_rng(8, DOMAIN_ARRIVALS, 0).random(16)
    assert not np.array_equal(base, other_domain)
    assert not np.array_equal(base, other_index)
    assert not np.array_equal(base, other_seed)


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        child_seed(0, DOMAIN_PAYLOAD, -1)


def test_naive_seed_plus_i_collides_but_spawn_keys_do_not():
    """The failure mode child_seed exists to prevent.

    Under ``seed + i`` allocated sequentially across domains (tenant
    arrival seeds first, then replica failure seeds), tenant 1's
    failure stream collides with tenant 2's arrival stream — and
    adding a tenant shifts every failure seed.  Spawn-keyed children
    have neither defect.
    """
    seed = 7

    def naive_layout(num_tenants):
        arrival_seeds = [seed + i for i in range(num_tenants)]
        failure_seeds = [seed + num_tenants + i
                         for i in range(num_tenants)]
        return arrival_seeds, failure_seeds

    # Naive: the cross-domain collision and the index shift.
    arrivals3, failures3 = naive_layout(3)
    arrivals4, failures4 = naive_layout(4)
    assert failures3[0] in arrivals4  # collision across domains
    assert failures3 != failures4[:3]  # adding a tenant shifts seeds

    # Spawn keys: failure streams never collide with arrival streams,
    # and tenant 0's streams are identical under 3 or 40 tenants.
    draw = lambda domain, index: child_rng(seed, domain, index).random(8)
    for index in range(4):
        assert not np.array_equal(draw(DOMAIN_ARRIVALS, index),
                                  draw(DOMAIN_FAILURES, index))
    np.testing.assert_array_equal(draw(DOMAIN_ARRIVALS, 0),
                                  child_rng(seed, DOMAIN_ARRIVALS,
                                            0).random(8))
