"""Streamed serving memory: O(1) Python objects per in-flight request.

The streamed path keeps report rows in growable numpy columns and
pulls arrivals one at a time, so the marginal memory per request is a
few array slots — never a materialized ``Request``.  The test measures
the tracemalloc peak at two trace lengths and bounds the marginal
bytes/request far below what a request list would cost (one frozen
``Request`` with a 16-float payload is ~400 bytes before the trace is
even sorted).
"""

import tracemalloc

from repro.config import ServeConfig
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu.multidevice import DevicePool
from repro.serving import ArrivalProcess, RequestStream
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer

from tests.cluster.conftest import NUM_CLASSES, NUM_FEATURES


def _stream(num_requests, seed=5):
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    arrivals = ArrivalProcess(500.0, "poisson", seed=seed)
    return RequestStream(stream, arrivals, deadline_s=0.05,
                         drift_every=0).generate(num_requests)


def _peak(compiled_model, num_requests):
    pool = DevicePool(2, compiled_model.arch)
    pool.load_replicated(compiled_model)
    server = InferenceServer(pool, config=ServeConfig())
    requests = _stream(num_requests)
    tracemalloc.start()
    try:
        report = server.serve(requests)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert report.num_requests == num_requests
    return peak


def test_request_dataclass_is_slotted():
    import numpy as np

    request = Request(request_id=0, arrival_s=0.0, deadline_s=1.0,
                      features=np.zeros(4))
    assert not hasattr(request, "__dict__")
    assert hasattr(Request, "__slots__")


def test_streamed_serve_memory_is_columnar_not_per_object(
        compiled_model):
    small = _peak(compiled_model, 2000)
    large = _peak(compiled_model, 8000)
    marginal = (large - small) / 6000.0
    # Report columns cost ~50 bytes/request (predictions, latencies,
    # arrivals, deadlines, tenants, labels at 8 bytes each) plus
    # doubling slack; a materialized Request alone is an order of
    # magnitude more.
    assert marginal < 400.0, f"marginal {marginal:.0f} bytes/request"
