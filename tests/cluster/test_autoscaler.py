"""Autoscaler control loop: hysteresis, cooldown, provisioning, floor."""

import pytest

from repro.cluster import Autoscaler, AutoscalerConfig, EventEngine


class _FakeLatency:
    def __init__(self):
        self.count = 0

    def __len__(self):
        return self.count


class _FakeReport:
    def __init__(self):
        self.deadline_misses = 0
        self.latency = _FakeLatency()


class _FakePool:
    def __init__(self, devices):
        self._devices = list(range(devices))

    def healthy_indices(self):
        return list(self._devices)


class _FakeServer:
    def __init__(self, devices):
        self.pool = _FakePool(devices)


class _FakeReplica:
    def __init__(self, devices=1):
        self.queue = []
        self.report = _FakeReport()
        self.server = _FakeServer(devices)
        self.added = 0
        self.retired = []

    def add_device(self):
        index = len(self.server.pool._devices)
        self.server.pool._devices.append(index)
        self.added += 1
        return index

    def retire_device(self, index):
        self.server.pool._devices.remove(index)
        self.retired.append(index)


def _scaler(replicas, engine, alive, **knobs):
    defaults = dict(interval_s=1.0, queue_high=10, queue_low=2,
                    miss_high=0.5, miss_low=0.01, up_streak=2,
                    down_streak=3, cooldown_s=0.0, provision_s=2.0)
    defaults.update(knobs)
    return Autoscaler(AutoscalerConfig(**defaults), replicas, engine,
                      still_serving=alive)


def test_scale_up_needs_streak_and_charges_provisioning_latency():
    engine = EventEngine()
    replicas = [_FakeReplica(), _FakeReplica()]
    replicas[1].queue = [None] * 50  # hot from the start
    ticks = []
    scaler = _scaler(replicas, engine, lambda: len(ticks) < 6)
    original_tick = scaler._tick
    scaler._tick = lambda: (ticks.append(engine.now), original_tick())
    scaler.start()
    engine.run()
    ups = [e for e in scaler.events if e.action == "scale_up"]
    commits = [e for e in scaler.events if e.action == "device_online"]
    # first hot tick at t=1 only starts the streak; decision at t=2
    assert ups[0].time_s == 2.0
    assert ups[0].replica == 1  # deepest queue wins
    assert ups[0].device == -1
    # the device lands provision_s later, on the same replica
    assert commits[0].time_s == 4.0
    assert commits[0].replica == 1
    assert replicas[1].added >= 1
    assert replicas[0].added == 0


def test_cooldown_spaces_scale_ups():
    engine = EventEngine()
    replica = _FakeReplica()
    replica.queue = [None] * 50
    count = [0]

    def alive():
        count[0] += 1
        return count[0] < 12

    scaler = _scaler([replica], engine, alive, up_streak=1,
                     cooldown_s=3.0, provision_s=0.5)
    scaler.start()
    engine.run()
    ups = [e.time_s for e in scaler.events if e.action == "scale_up"]
    assert ups[0] == 1.0
    for left, right in zip(ups, ups[1:]):
        assert right - left >= 3.0


def test_scale_down_respects_per_replica_floor():
    engine = EventEngine()
    replicas = [_FakeReplica(devices=3), _FakeReplica(devices=1)]
    count = [0]

    def alive():
        count[0] += 1
        return count[0] < 10

    scaler = _scaler(replicas, engine, alive, down_streak=2,
                     min_devices=1)
    scaler.start()
    engine.run()
    downs = [e for e in scaler.events if e.action == "scale_down"]
    assert downs  # idle fleet shrinks
    # only replica 0 was above the floor; it retires its highest device
    assert all(e.replica == 0 for e in downs)
    assert replicas[0].retired[0] == 2
    assert replicas[1].retired == []
    # never below the floor
    assert len(replicas[0].server.pool.healthy_indices()) >= 1


def test_max_devices_caps_fleet_with_pending_provisions():
    engine = EventEngine()
    replica = _FakeReplica(devices=1)
    replica.queue = [None] * 50
    count = [0]

    def alive():
        count[0] += 1
        return count[0] < 20

    scaler = _scaler([replica], engine, alive, up_streak=1,
                     provision_s=100.0, max_devices=3)
    scaler.start()
    engine.run(until_s=50.0)
    # 1 online + 2 pending = max_devices: no further decisions even
    # though the provisions have not landed yet.
    ups = [e for e in scaler.events if e.action == "scale_up"]
    assert len(ups) == 2


def test_miss_rate_window_is_per_tick():
    engine = EventEngine()
    replica = _FakeReplica()
    scaler = _scaler([replica], engine, lambda: False)
    replica.report.latency.count = 100
    replica.report.deadline_misses = 10
    assert scaler._window_miss_rate() == pytest.approx(0.1)
    # next window: 50 more served, no new misses
    replica.report.latency.count = 150
    assert scaler._window_miss_rate() == 0.0


def test_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(interval_s=0.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(queue_low=10, queue_high=5)
    with pytest.raises(ValueError):
        AutoscalerConfig(miss_low=0.5, miss_high=0.1)
    with pytest.raises(ValueError):
        AutoscalerConfig(up_streak=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_devices=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(max_devices=1, min_devices=2)
