"""Router policies: correctness, determinism, ring stability."""

from collections import Counter

import numpy as np
import pytest

from repro.cluster import Router
from repro.serving.arrivals import Request


class _FakeReplica:
    def __init__(self, depth=0):
        self.queue = [None] * depth


def _request(request_id=0, tenant=None):
    return Request(request_id=request_id, arrival_s=0.0, deadline_s=1.0,
                   features=np.zeros(4), tenant=tenant)


def test_round_robin_cycles():
    router = Router([_FakeReplica() for _ in range(3)], "round_robin")
    picks = [router.route(_request(i)) for i in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]
    assert router.routed_counts == [3, 2, 2]


def test_least_queue_joins_shortest_with_low_index_ties():
    replicas = [_FakeReplica(5), _FakeReplica(2), _FakeReplica(2)]
    router = Router(replicas, "least_queue")
    assert router.route(_request()) == 1  # tie 1 vs 2 → lowest index
    replicas[1].queue.extend([None] * 4)
    assert router.route(_request()) == 2


def test_tenant_affinity_pins_tenant_to_home_replica():
    router = Router([_FakeReplica() for _ in range(3)],
                    "tenant_affinity")
    for tenant in range(6):
        assert router.route(_request(tenant=tenant)) == tenant % 3
    # tenantless requests fall back to the request id
    assert router.route(_request(request_id=4)) == 1


def test_consistent_hash_is_sticky_per_tenant():
    router = Router([_FakeReplica() for _ in range(4)],
                    "consistent_hash")
    homes = {t: router.route(_request(request_id=t, tenant=t))
             for t in range(20)}
    for t, home in homes.items():
        for request_id in range(3):
            assert router.route(
                _request(request_id=request_id, tenant=t)
            ) == home


def test_consistent_hash_moves_few_tenants_on_replica_join():
    tenants = list(range(200))
    before = Router([_FakeReplica() for _ in range(4)],
                    "consistent_hash")
    after = Router([_FakeReplica() for _ in range(5)],
                   "consistent_hash")
    moved = sum(
        before.route(_request(tenant=t)) != after.route(_request(tenant=t))
        for t in tenants
    )
    # Ideal is 1/5 of tenants; a full rehash (mod N) would move ~4/5.
    assert moved < len(tenants) * 0.45


def test_consistent_hash_spreads_many_tenants():
    router = Router([_FakeReplica() for _ in range(4)],
                    "consistent_hash")
    homes = Counter(router.route(_request(tenant=t))
                    for t in range(400))
    assert set(homes) == {0, 1, 2, 3}
    assert max(homes.values()) < 400 * 0.6


def test_hashing_is_process_independent():
    """sha256 ring positions, not salted str hash: the same tenant maps
    to the same replica in every process."""
    router = Router([_FakeReplica() for _ in range(4)],
                    "consistent_hash")
    picks = [router.route(_request(tenant=t)) for t in range(8)]
    assert picks == [2, 2, 2, 1, 1, 3, 2, 3]


def test_validation():
    with pytest.raises(ValueError):
        Router([], "round_robin")
    with pytest.raises(ValueError):
        Router([_FakeReplica()], "power_of_two")
