"""Cluster report: exact percentile merging and per-tenant accounting."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.metrics import LatencyTracker

latencies = st.lists(
    st.floats(min_value=1e-6, max_value=10.0, allow_nan=False,
              allow_infinity=False),
    max_size=60,
)


@settings(max_examples=150, deadline=None)
@given(st.lists(latencies, min_size=1, max_size=6))
def test_merge_all_equals_pooled_tracker(shards):
    """The fleet percentile claim: merging per-replica trackers is
    byte-identical to one tracker that saw every observation."""
    trackers = []
    pooled = LatencyTracker()
    for shard in shards:
        tracker = LatencyTracker()
        tracker.record_many(np.array(shard))
        pooled.record_many(np.array(shard))
        trackers.append(tracker)
    merged = LatencyTracker.merge_all(trackers)
    assert merged.summary() == pooled.summary()
    assert len(merged) == sum(len(s) for s in shards)


@settings(max_examples=100, deadline=None)
@given(latencies, latencies)
def test_pairwise_merge_matches_merge_all(left, right):
    a, b = LatencyTracker(), LatencyTracker()
    a.record_many(np.array(left))
    b.record_many(np.array(right))
    merged = LatencyTracker.merge_all([a, b])
    a.merge(b)  # in-place
    assert a.summary() == merged.summary()


def test_cluster_summary_schema(compiled_model, tenant_mix):
    import repro
    from repro.cluster import ClusterConfig

    config = ClusterConfig(tenants=tenant_mix, total_requests=1500,
                           num_replicas=2, seed=9)
    report = repro.serve_cluster(compiled_model, config=config)
    summary = report.summary()
    json.dumps(summary)  # JSON-ready throughout
    assert summary["schema"] == "repro.cluster/1"
    assert summary["num_replicas"] == 2
    assert summary["num_requests"] == 1500
    assert summary["served"] + summary["dropped"] == 1500
    assert sum(summary["routed"]) == 1500
    assert len(summary["replicas"]) == 2
    assert summary["scaling"] == []
    assert {t["name"] for t in summary["tenants"]} == \
        {"interactive", "bursty", "background"}
    for row in summary["tenants"]:
        assert row["requests"] == row["served"] + row["dropped"]
        assert 0.0 <= row["sla_attainment"] <= 1.0
        assert row["latency"]["count"] == row["served"]
    assert sum(t["requests"] for t in summary["tenants"]) == 1500
    # merged fleet latency covers every served request exactly
    assert summary["latency"]["count"] == summary["served"]
    assert report.throughput == pytest.approx(
        report.served / report.makespan_s
    )


def test_tenant_sla_counts_drops_against_attainment(compiled_model):
    import repro
    from repro.cluster import ClusterConfig, TenantSpec
    from repro.config import ServeConfig

    tenants = (TenantSpec("flood", rate_hz=3000.0, deadline_s=0.01),)
    config = ClusterConfig(tenants=tenants, total_requests=1200,
                           num_replicas=1, seed=4,
                           serve=ServeConfig(max_queue=8))
    report = repro.serve_cluster(compiled_model, config=config)
    row = report.summary()["tenants"][0]
    assert row["dropped"] > 0
    # attainment = (served - misses) / submitted, so drops always hurt
    assert row["sla_attainment"] <= row["served"] / row["requests"]
