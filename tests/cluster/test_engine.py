"""EventEngine: fire order, tie-breaks, cancellation, budgets."""

import gc
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import EventEngine
from repro.cluster.engine import _COMPACT_MIN, _POOL_MAX

times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)


@settings(max_examples=200, deadline=None)
@given(st.lists(times, min_size=1, max_size=50))
def test_fires_in_time_order_for_any_insertion_order(schedule):
    engine = EventEngine()
    fired = []
    for index, time_s in enumerate(schedule):
        engine.at(time_s, fired.append, (time_s, index))
    engine.run()
    # Sorted by time; ties keep insertion order (seq is the index here
    # because every event was scheduled before the run started).
    assert fired == sorted(fired)
    assert engine.events_processed == len(schedule)
    assert engine.now == max(schedule)


@settings(max_examples=100, deadline=None)
@given(st.lists(times, min_size=2, max_size=40),
       st.data())
def test_cancelled_events_never_fire(schedule, data):
    engine = EventEngine()
    events = [engine.at(t, lambda t=t: fired.append(t))
              for t in schedule]
    fired = []
    drop = data.draw(st.sets(
        st.integers(min_value=0, max_value=len(schedule) - 1),
        max_size=len(schedule)))
    for index in drop:
        engine.cancel(events[index])
        engine.cancel(events[index])  # idempotent
    assert engine.pending == len(schedule) - len(drop)
    engine.run()
    kept = sorted(t for i, t in enumerate(schedule) if i not in drop)
    assert fired == kept
    assert engine.pending == 0


def test_simultaneous_events_fire_in_insertion_order():
    engine = EventEngine()
    fired = []
    for tag in range(10):
        engine.at(1.0, fired.append, tag)
    engine.run()
    assert fired == list(range(10))


def test_callback_may_schedule_at_now():
    engine = EventEngine()
    fired = []

    def outer():
        fired.append("outer")
        engine.at(engine.now, lambda: fired.append("inner"))

    engine.at(1.0, outer)
    engine.run()
    assert fired == ["outer", "inner"]
    assert engine.now == 1.0


def test_past_inf_and_nan_rejected():
    engine = EventEngine()
    engine.at(5.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.at(4.0, lambda: None)
    with pytest.raises(ValueError):
        engine.at(float("inf"), lambda: None)
    with pytest.raises(ValueError):
        engine.at(float("nan"), lambda: None)
    with pytest.raises(ValueError):
        engine.after(-1.0, lambda: None)


def test_run_until_leaves_later_events_scheduled():
    engine = EventEngine()
    fired = []
    engine.at(1.0, fired.append, 1)
    engine.at(2.0, fired.append, 2)
    engine.at(3.0, fired.append, 3)
    assert engine.run(until_s=2.0) == 2
    assert fired == [1, 2]
    assert engine.pending == 1
    engine.run()
    assert fired == [1, 2, 3]


def test_max_events_budget_raises_on_runaway_loop():
    engine = EventEngine()

    def reschedule():
        engine.after(1.0, reschedule)

    engine.at(0.0, reschedule)
    with pytest.raises(RuntimeError, match="budget"):
        engine.run(max_events=100)


def test_step_skips_tombstones():
    engine = EventEngine()
    fired = []
    doomed = engine.at(1.0, fired.append, "doomed")
    engine.at(2.0, fired.append, "kept")
    engine.cancel(doomed)
    assert engine.step() is True
    assert fired == ["kept"]
    assert engine.step() is False


def test_cancel_drops_callback_and_argument_references():
    """A tombstone must not pin the requests a cancelled dispatch
    closure captured: cancel() clears callback and args immediately,
    so the payload is collectable while the entry still sits in the
    heap awaiting its lazy pop."""
    engine = EventEngine()

    class Payload:
        pass

    payload = Payload()
    sink = []
    event = engine.at(1.0, sink.append, payload)
    ref = weakref.ref(payload)
    engine.cancel(event)
    assert event.callback is None
    assert event.args == ()
    del payload
    gc.collect()
    assert ref() is None
    engine.at(2.0, lambda: None)
    engine.run()
    assert sink == []


def test_cancel_heavy_run_keeps_heap_size_o_live():
    """The serving loop's hot pattern — cancel the pending dispatch
    after every arrival — must not grow the heap O(total arrivals):
    compaction keeps the physical heap bounded by the live count (plus
    the compaction floor), and the Event free list stays bounded."""
    engine = EventEngine()
    horizon = [engine.at(1e6 + i, lambda: None) for i in range(8)]
    peak = 0
    time_s = 0.0
    for _ in range(10_000):
        time_s += 0.001
        doomed = engine.at(time_s, lambda: None)
        engine.cancel(doomed)
        peak = max(peak, len(engine._heap))
    assert engine.pending == len(horizon)
    assert peak <= len(horizon) + 2 * _COMPACT_MIN
    assert len(engine._pool) <= _POOL_MAX
    for event in horizon:
        engine.cancel(event)
    assert engine.pending == 0


def test_peek_returns_next_live_key_without_firing():
    engine = EventEngine()
    assert engine.peek() is None
    first = engine.at(1.0, lambda: None)
    second = engine.at(2.0, lambda: None)
    engine.at(2.0, lambda: None)
    assert engine.peek() == (first.time_s, first.seq)
    engine.cancel(first)
    # The tombstone at the top is swept, not fired.
    assert engine.peek() == (2.0, second.seq)
    assert engine.events_processed == 0
    assert engine.pending == 2
    engine.run()
    assert engine.peek() is None
    assert engine.events_processed == 2
