"""Tests for the sequential Network graph."""

import numpy as np
import pytest

from repro.nn import Activation, Argmax, Dense, Network


def _simple_network(rng, n=5, d=16, k=3):
    return Network(n, [
        Dense(rng.standard_normal((n, d)).astype(np.float32), name="encode"),
        Activation("tanh", name="act"),
        Dense(rng.standard_normal((d, k)).astype(np.float32), name="classify"),
    ], name="test-net")


class TestConstruction:
    def test_shape_chain_validated_eagerly(self, rng):
        with pytest.raises(ValueError, match="input dim"):
            Network(5, [
                Dense(rng.standard_normal((5, 16))),
                Dense(rng.standard_normal((8, 3))),  # expects 8, gets 16
            ])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one layer"):
            Network(5, [])

    def test_rejects_bad_input_dim(self, rng):
        with pytest.raises(ValueError, match="input_dim"):
            Network(0, [Dense(rng.standard_normal((1, 2)))])

    def test_layer_widths(self, rng):
        net = _simple_network(rng)
        assert net.layer_widths == [5, 16, 16, 3]
        assert net.output_dim == 3


class TestForward:
    def test_matches_manual_composition(self, rng):
        net = _simple_network(rng)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        w1 = net.layers[0].weights
        w2 = net.layers[2].weights
        np.testing.assert_allclose(net.forward(x), np.tanh(x @ w1) @ w2,
                                   rtol=1e-5, atol=1e-5)

    def test_single_sample(self, rng):
        net = _simple_network(rng)
        out = net.forward(rng.standard_normal(5))
        assert out.shape == (3,)

    def test_rejects_wrong_width(self, rng):
        net = _simple_network(rng)
        with pytest.raises(ValueError, match="width"):
            net.forward(rng.standard_normal((2, 7)))

    def test_argmax_network(self, rng):
        net = Network(5, [
            Dense(rng.standard_normal((5, 8))),
            Argmax(),
        ])
        out = net.forward(rng.standard_normal((3, 5)))
        assert out.shape == (3, 1)
        assert out.dtype == np.int64


class TestAccounting:
    def test_flops(self, rng):
        net = _simple_network(rng)
        # 2*5*16 + 16 (tanh) + 2*16*3
        assert net.flops_per_sample() == 160 + 16 + 96

    def test_parameter_count(self, rng):
        net = _simple_network(rng)
        assert net.parameter_count() == 5 * 16 + 16 * 3

    def test_parameter_bytes(self, rng):
        net = _simple_network(rng)
        assert net.parameter_bytes(4) == 4 * net.parameter_count()
        assert net.parameter_bytes(1) == net.parameter_count()

    def test_parameter_bytes_rejects_zero(self, rng):
        with pytest.raises(ValueError, match="bytes_per_param"):
            _simple_network(rng).parameter_bytes(0)

    def test_summary_mentions_layers(self, rng):
        text = _simple_network(rng).summary()
        assert "encode" in text and "classify" in text and "total" in text

    def test_repr(self, rng):
        assert "test-net" in repr(_simple_network(rng))
