"""Tests for float layer specs."""

import numpy as np
import pytest

from repro.nn import Activation, Argmax, Dense


class TestDense:
    def test_apply_matches_matmul(self, rng):
        w = rng.standard_normal((4, 6)).astype(np.float32)
        layer = Dense(w)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_allclose(layer.apply(x), x @ w, rtol=1e-6)

    def test_bias(self, rng):
        w = rng.standard_normal((4, 6)).astype(np.float32)
        b = rng.standard_normal(6).astype(np.float32)
        layer = Dense(w, bias=b)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_allclose(layer.apply(x), x @ w + b, rtol=1e-5)

    def test_output_dim(self, rng):
        layer = Dense(rng.standard_normal((4, 6)))
        assert layer.output_dim(4) == 6
        assert layer.input_dim == 4

    def test_output_dim_rejects_mismatch(self, rng):
        layer = Dense(rng.standard_normal((4, 6)))
        with pytest.raises(ValueError, match="input dim"):
            layer.output_dim(5)

    def test_flops(self, rng):
        assert Dense(rng.standard_normal((4, 6))).flops(4) == 48
        b = Dense(rng.standard_normal((4, 6)), bias=np.zeros(6))
        assert b.flops(4) == 54

    def test_parameter_count(self, rng):
        assert Dense(rng.standard_normal((4, 6))).parameter_count() == 24
        with_bias = Dense(rng.standard_normal((4, 6)), bias=np.zeros(6))
        assert with_bias.parameter_count() == 30

    def test_rejects_1d_weights(self):
        with pytest.raises(ValueError, match="2-D"):
            Dense(np.zeros(4))

    def test_rejects_bad_bias(self):
        with pytest.raises(ValueError, match="bias"):
            Dense(np.zeros((4, 6)), bias=np.zeros(5))


class TestActivation:
    def test_tanh(self, rng):
        x = rng.standard_normal((2, 8)).astype(np.float32)
        np.testing.assert_allclose(Activation("tanh").apply(x), np.tanh(x),
                                   rtol=1e-6)

    def test_relu(self):
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(Activation("relu").apply(x),
                                      [[0.0, 0.0, 2.0]])

    def test_identity(self, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        np.testing.assert_array_equal(Activation("identity").apply(x), x)

    def test_shape_preserving(self):
        assert Activation("tanh").output_dim(100) == 100

    def test_no_parameters(self):
        assert Activation("tanh").parameter_count() == 0

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown activation"):
            Activation("gelu")


class TestArgmax:
    def test_picks_max(self):
        x = np.array([[1.0, 5.0, 2.0], [9.0, 0.0, 1.0]], dtype=np.float32)
        out = Argmax().apply(x)
        np.testing.assert_array_equal(out.ravel(), [1, 0])

    def test_output_dim_is_one(self):
        assert Argmax().output_dim(10) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Argmax().output_dim(0)
