"""Tests for compiling HDC models into wide networks (paper Fig. 2)."""

import numpy as np
import pytest

from repro.hdc import (
    BaggingConfig,
    BaggingHDCTrainer,
    HDCClassifier,
    IdLevelEncoder,
    LinearEncoder,
    NonlinearEncoder,
)
from repro.nn import encoder_network, from_classifier, from_fused, inference_network


def _blobs(num_samples=200, num_features=8, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 4.0
    y = np.arange(num_samples) % num_classes
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestEncoderNetwork:
    def test_matches_encoder_exactly(self, rng):
        enc = NonlinearEncoder(6, 64, seed=0)
        net = encoder_network(enc)
        x = rng.standard_normal((5, 6)).astype(np.float32)
        np.testing.assert_allclose(net.forward(x), enc.encode(x), rtol=1e-6)

    def test_linear_encoder_has_no_activation(self, rng):
        enc = LinearEncoder(6, 64, seed=0)
        net = encoder_network(enc)
        assert len(net.layers) == 1
        x = rng.standard_normal((5, 6)).astype(np.float32)
        np.testing.assert_allclose(net.forward(x), enc.encode(x), rtol=1e-5)

    def test_weights_are_base_hypervectors(self):
        enc = NonlinearEncoder(6, 64, seed=0)
        net = encoder_network(enc)
        np.testing.assert_array_equal(net.layers[0].weights,
                                      enc.base_hypervectors)

    def test_rejects_id_level_encoder(self):
        enc = IdLevelEncoder(4, 32, seed=0)
        with pytest.raises(TypeError, match="projection"):
            encoder_network(enc)


class TestInferenceNetwork:
    def test_three_layer_structure(self, rng):
        base = rng.standard_normal((8, 64)).astype(np.float32)
        classes = rng.standard_normal((64, 3)).astype(np.float32)
        net = inference_network(base, classes)
        assert net.layer_widths == [8, 64, 64, 3]

    def test_argmax_appended(self, rng):
        base = rng.standard_normal((8, 64)).astype(np.float32)
        classes = rng.standard_normal((64, 3)).astype(np.float32)
        net = inference_network(base, classes, include_argmax=True)
        assert net.output_dim == 1

    def test_linear_variant(self, rng):
        base = rng.standard_normal((8, 64)).astype(np.float32)
        classes = rng.standard_normal((64, 3)).astype(np.float32)
        net = inference_network(base, classes, nonlinear=False)
        assert len(net.layers) == 2
        x = rng.standard_normal((4, 8)).astype(np.float32)
        np.testing.assert_allclose(net.forward(x), x @ base @ classes,
                                   rtol=1e-4, atol=1e-4)

    def test_rejects_width_mismatch(self, rng):
        with pytest.raises(ValueError, match="width mismatch"):
            inference_network(rng.standard_normal((8, 64)),
                              rng.standard_normal((32, 3)))

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            inference_network(rng.standard_normal(8),
                              rng.standard_normal((8, 3)))


class TestFromClassifier:
    def test_network_reproduces_classifier_scores(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=256, seed=0)
        model.fit(x, y, iterations=3)
        net = from_classifier(model)
        np.testing.assert_allclose(net.forward(x[:10]), model.scores(x[:10]),
                                   rtol=1e-4, atol=1e-3)

    def test_network_reproduces_predictions(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=256, seed=0)
        model.fit(x, y, iterations=3)
        net = from_classifier(model, include_argmax=True)
        np.testing.assert_array_equal(
            net.forward(x[:20]).ravel(), model.predict(x[:20])
        )

    def test_rejects_untrained(self):
        with pytest.raises(ValueError, match="trained"):
            from_classifier(HDCClassifier(dimension=64))

    def test_rejects_id_level_encoder(self):
        x, y = _blobs(num_features=4)
        enc = IdLevelEncoder(4, 64, seed=0)
        model = HDCClassifier(dimension=64, encoder=enc, seed=0)
        model.fit(x, y, iterations=1)
        with pytest.raises(TypeError, match="projection"):
            from_classifier(model)

    def test_linear_classifier_compiles_without_tanh(self):
        x, y = _blobs(num_features=6)
        enc = LinearEncoder(6, 128, seed=0)
        model = HDCClassifier(dimension=128, encoder=enc, seed=0)
        model.fit(x, y, iterations=2)
        net = from_classifier(model)
        assert all(layer.name != "encode-tanh" for layer in net.layers)
        np.testing.assert_allclose(net.forward(x[:5]), model.scores(x[:5]),
                                   rtol=1e-3, atol=1e-3)


class TestFromFused:
    def test_network_reproduces_fused_model(self):
        x, y = _blobs(num_samples=300)
        cfg = BaggingConfig(num_models=3, dimension=384, iterations=2)
        fused = BaggingHDCTrainer(cfg, seed=0).fit(x, y).fuse()
        net = from_fused(fused)
        np.testing.assert_allclose(net.forward(x[:10]), fused.scores(x[:10]),
                                   rtol=1e-4, atol=1e-3)

    def test_full_width_single_model(self):
        # The paper's point: the fused bagged network has the same shape
        # as a non-bagged network of width d.
        x, y = _blobs()
        cfg = BaggingConfig(num_models=4, dimension=512, iterations=1)
        fused = BaggingHDCTrainer(cfg, seed=0).fit(x, y).fuse()
        net = from_fused(fused)
        assert net.layer_widths == [x.shape[1], 512, 512, 3]
