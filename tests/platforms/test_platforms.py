"""Tests for the platform cost models."""

import pytest

from repro.platforms import (
    CpuSpec,
    EdgeTpuPlatform,
    EnergyReport,
    MobileCpu,
    RaspberryPi3,
    VirtualClock,
    energy_joules,
)


class TestCpuSpec:
    def test_rejects_nonpositive_throughput(self):
        with pytest.raises(ValueError):
            CpuSpec("x", matmul_gflops=0, memory_gbps=1,
                    tanh_ns_per_element=1, per_call_overhead_s=0, power_w=1)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            CpuSpec("x", matmul_gflops=1, memory_gbps=1,
                    tanh_ns_per_element=1, per_call_overhead_s=-1, power_w=1)


class TestCpuPlatform:
    def test_matmul_compute_bound(self):
        cpu = MobileCpu()
        # A large square matmul is compute bound: time ~ flops / rate.
        t = cpu.matmul_seconds(1000, 1000, 1000)
        expected = 2e9 / (44.0 * 1e9)
        assert t == pytest.approx(expected, rel=0.2)

    def test_matmul_memory_bound_for_skinny_shapes(self):
        cpu = MobileCpu()
        # (1, 1, huge) moves data but does almost no flops.
        t = cpu.matmul_seconds(1, 1, 10_000_000)
        bandwidth_time = 4.0 * 2 * 10_000_000 / (12.0 * 1e9)
        assert t >= bandwidth_time * 0.9

    def test_tanh_linear_in_elements(self):
        cpu = MobileCpu()
        base = cpu.tanh_seconds(0)
        t1 = cpu.tanh_seconds(1_000_000) - base
        t2 = cpu.tanh_seconds(2_000_000) - base
        assert t2 == pytest.approx(2 * t1, rel=1e-6)

    def test_pi_slower_than_host(self):
        host, pi = MobileCpu(), RaspberryPi3()
        assert pi.matmul_seconds(100, 100, 100) > \
            host.matmul_seconds(100, 100, 100)
        assert pi.tanh_seconds(10_000) > host.tanh_seconds(10_000)

    def test_elementwise_bandwidth_bound(self):
        cpu = MobileCpu()
        t = cpu.elementwise_seconds(1_000_000, bytes_per_element=4)
        assert t == pytest.approx(
            2 * 4e6 / (12.0 * 1e9) + cpu.spec.per_call_overhead_s
        )

    def test_argmax_cheaper_than_matmul(self):
        cpu = MobileCpu()
        assert cpu.argmax_seconds(1000, 10) < \
            cpu.matmul_seconds(1000, 10_000, 10)

    def test_validation(self):
        cpu = MobileCpu()
        with pytest.raises(ValueError):
            cpu.matmul_seconds(0, 1, 1)
        with pytest.raises(ValueError):
            cpu.tanh_seconds(-1)
        with pytest.raises(ValueError):
            cpu.elementwise_seconds(-1)
        with pytest.raises(ValueError):
            cpu.argmax_seconds(-1, 1)
        with pytest.raises(ValueError):
            cpu.call_overhead_seconds(-1)

    def test_call_overhead_scales(self):
        cpu = MobileCpu()
        assert cpu.call_overhead_seconds(10) == \
            pytest.approx(10 * cpu.spec.per_call_overhead_s)


class TestEdgeTpuPlatform:
    def test_invoke_includes_dispatch_floor(self):
        tpu = EdgeTpuPlatform()
        assert tpu.invoke_seconds([(10, 10)], 1) > tpu.arch.invoke_overhead_s

    def test_batching_amortizes(self):
        tpu = EdgeTpuPlatform()
        layers = [(700, 10_000)]
        per1 = tpu.invoke_seconds(layers, 1)
        per256 = tpu.invoke_seconds(layers, 256) / 256
        assert per256 < per1

    def test_streaming_penalty_for_oversized_weights(self):
        tpu = EdgeTpuPlatform()
        layers = [(4000, 4000)]  # 16 MB int8 > 8 MiB buffer
        small = tpu.invoke_seconds([(1000, 1000)], 1)
        big = tpu.invoke_seconds(layers, 1)
        assert big > small + tpu.arch.transfer_time(
            4000 * 4000 - tpu.arch.parameter_buffer_bytes
        ) * 0.9

    def test_model_load_scales_with_size(self):
        tpu = EdgeTpuPlatform()
        assert tpu.model_load_seconds(10_000_000) > \
            tpu.model_load_seconds(1_000)

    def test_validation(self):
        tpu = EdgeTpuPlatform()
        with pytest.raises(ValueError):
            tpu.invoke_seconds([], 1)
        with pytest.raises(ValueError):
            tpu.invoke_seconds([(10, 10)], 0)
        with pytest.raises(ValueError):
            tpu.model_load_seconds(-1)
        with pytest.raises(ValueError):
            tpu.activation_cycles(-1)


class TestVirtualClock:
    def test_accumulates(self):
        clock = VirtualClock()
        clock.charge("a", 1.0)
        clock.charge("b", 2.0)
        clock.charge("a", 0.5)
        assert clock.elapsed() == pytest.approx(3.5)
        assert clock.phase("a") == pytest.approx(1.5)
        assert clock.phase("missing") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            VirtualClock().charge("a", -1.0)

    def test_phases_copy(self):
        clock = VirtualClock()
        clock.charge("a", 1.0)
        phases = clock.phases()
        phases["a"] = 99.0
        assert clock.phase("a") == 1.0


class TestEnergy:
    def test_energy_joules(self):
        assert energy_joules(2.0, 3.0) == 6.0

    def test_energy_validation(self):
        with pytest.raises(ValueError):
            energy_joules(0.0, 1.0)
        with pytest.raises(ValueError):
            energy_joules(1.0, -1.0)

    def test_report_efficiency(self):
        tpu = EnergyReport("tpu", seconds=1.0, power_w=2.0)
        pi = EnergyReport("pi", seconds=10.0, power_w=3.7)
        assert tpu.joules == 2.0
        assert tpu.efficiency_vs(pi) == pytest.approx(18.5)

    def test_similar_power_claim(self):
        # The paper's framing: host-CPU+TPU vs Pi 3 at "similar power".
        # The Edge TPU active power (2 W) is below the Pi's (3.7 W).
        from repro.platforms import RASPBERRY_PI3_SPEC
        from repro.edgetpu import EdgeTpuArch
        assert EdgeTpuArch().active_power_w < RASPBERRY_PI3_SPEC.power_w
