"""Tests for the bipolar associative-memory extension."""

import numpy as np
import pytest

from repro.hdc import BipolarAssociativeMemory, HDCClassifier, NonlinearEncoder


def _blobs(num_samples=400, num_features=10, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 4.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


@pytest.fixture()
def trained():
    x, y = _blobs()
    model = HDCClassifier(dimension=2048, seed=0)
    model.fit(x[:300], y[:300], iterations=5)
    return model, x, y


class TestConstruction:
    def test_from_classifier(self, trained):
        model, _, _ = trained
        memory = BipolarAssociativeMemory.from_classifier(model)
        assert memory.num_classes == 4
        assert memory.dimension == 2048
        assert set(np.unique(memory.class_hypervectors)).issubset({-1, 1})

    def test_untrained_rejected(self):
        with pytest.raises(ValueError, match="trained"):
            BipolarAssociativeMemory.from_classifier(
                HDCClassifier(dimension=64)
            )

    def test_rejects_non_bipolar(self):
        enc = NonlinearEncoder(4, 8, seed=0)
        with pytest.raises(ValueError, match="bipolar"):
            BipolarAssociativeMemory(np.full((2, 8), 0.5), enc)

    def test_rejects_dimension_mismatch(self):
        enc = NonlinearEncoder(4, 16, seed=0)
        with pytest.raises(ValueError, match="dimension"):
            BipolarAssociativeMemory(np.ones((2, 8), dtype=np.int8), enc)

    def test_rejects_1d(self):
        enc = NonlinearEncoder(4, 8, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            BipolarAssociativeMemory(np.ones(8, dtype=np.int8), enc)


class TestBehaviour:
    def test_accuracy_close_to_float(self, trained):
        # The 32x-compressed memory should stay within a few points of
        # the float model on an easy task.
        model, x, y = trained
        memory = BipolarAssociativeMemory.from_classifier(model)
        float_acc = model.score(x[300:], y[300:])
        binary_acc = memory.score(x[300:], y[300:])
        assert binary_acc > float_acc - 0.1

    def test_memory_is_one_bit_per_component(self, trained):
        model, _, _ = trained
        memory = BipolarAssociativeMemory.from_classifier(model)
        float_bytes = model.class_hypervectors.nbytes
        assert memory.memory_bytes() == float_bytes // 32

    def test_scores_shape_and_range(self, trained):
        model, x, _ = trained
        memory = BipolarAssociativeMemory.from_classifier(model)
        scores = memory.scores(x[:7])
        assert scores.shape == (7, 4)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_score_validates_lengths(self, trained):
        model, x, y = trained
        memory = BipolarAssociativeMemory.from_classifier(model)
        with pytest.raises(ValueError, match="labels"):
            memory.score(x[:5], y[:4])
