"""Tests for the OnlineHD-style adaptive classifier (extension)."""

import numpy as np

from repro.hdc import AdaptiveHDCClassifier, HDCClassifier


def _blobs(num_samples=400, num_features=12, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 3.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestAdaptiveClassifier:
    def test_learns(self):
        x, y = _blobs()
        model = AdaptiveHDCClassifier(dimension=1024, seed=0)
        model.fit(x, y, iterations=5)
        assert model.score(x, y) > 0.9

    def test_history_tracked(self):
        x, y = _blobs()
        model = AdaptiveHDCClassifier(dimension=512, seed=0)
        history = model.fit(x, y, iterations=3)
        assert history.iterations == 3

    def test_shares_inference_with_base(self):
        x, y = _blobs()
        model = AdaptiveHDCClassifier(dimension=512, seed=0)
        model.fit(x, y, iterations=2)
        scores = model.scores(x[:5])
        assert scores.shape == (5, 4)

    def test_converges_at_least_as_fast_as_fixed(self, small_isolet):
        # The adaptive rule's selling point: equal-or-better accuracy in
        # few passes.  Allow slack — this is a statistical property.
        ds = small_isolet
        fixed = HDCClassifier(dimension=2048, seed=1)
        fixed.fit(ds.train_x, ds.train_y, iterations=3)
        adaptive = AdaptiveHDCClassifier(dimension=2048, seed=1)
        adaptive.fit(ds.train_x, ds.train_y, iterations=3)
        assert adaptive.score(ds.test_x, ds.test_y) > \
            fixed.score(ds.test_x, ds.test_y) - 0.1

    def test_updates_counted(self):
        x, y = _blobs()
        model = AdaptiveHDCClassifier(dimension=512, seed=0)
        history = model.fit(x, y, iterations=4)
        assert all(u >= 0 for u in history.updates)
        assert history.updates[-1] <= history.updates[0]
