"""Tests for hypervector primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hdc import (
    bipolarize,
    bundle,
    cosine_similarity,
    dot_similarity,
    generate_base_hypervectors,
    hamming_similarity,
)


class TestGenerateBaseHypervectors:
    def test_shape_and_dtype(self):
        base = generate_base_hypervectors(5, 100, rng=0)
        assert base.shape == (5, 100)
        assert base.dtype == np.float32

    def test_standard_normal_statistics(self):
        base = generate_base_hypervectors(10, 50_000, rng=0)
        assert abs(base.mean()) < 0.01
        assert abs(base.std() - 1.0) < 0.01

    def test_near_orthogonality(self):
        # The paper's rationale: dot products between distinct base HVs are
        # near zero relative to their norms (~d).
        base = generate_base_hypervectors(8, 10_000, rng=1)
        gram = base @ base.T
        off_diag = gram[~np.eye(8, dtype=bool)]
        assert np.abs(off_diag).max() < 0.05 * 10_000

    def test_seed_determinism(self):
        a = generate_base_hypervectors(4, 64, rng=9)
        b = generate_base_hypervectors(4, 64, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_generator_instance_advances(self):
        rng = np.random.default_rng(3)
        a = generate_base_hypervectors(4, 64, rng=rng)
        b = generate_base_hypervectors(4, 64, rng=rng)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_bad_counts(self, bad):
        with pytest.raises(ValueError):
            generate_base_hypervectors(bad, 16)
        with pytest.raises(ValueError):
            generate_base_hypervectors(16, bad)


class TestBundle:
    def test_plain_sum(self, rng):
        hvs = rng.standard_normal((4, 32))
        np.testing.assert_allclose(bundle(hvs), hvs.sum(axis=0))

    def test_weighted_sum_matches_encoding_formula(self, rng):
        # bundle(B, weights=F) must equal the encoding aggregation F @ B.
        base = rng.standard_normal((6, 128))
        features = rng.standard_normal(6)
        np.testing.assert_allclose(
            bundle(base, weights=features), features @ base, rtol=1e-6
        )

    def test_bundled_remains_similar_to_inputs(self, rng):
        # Superposition property: the bundle correlates positively with
        # each bundled hypervector.
        hvs = rng.standard_normal((5, 20_000))
        bundled = bundle(hvs)
        for hv in hvs:
            assert np.dot(bundled, hv) > 0

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError, match="stack"):
            bundle(rng.standard_normal(16))

    def test_rejects_weight_mismatch(self, rng):
        with pytest.raises(ValueError, match="weights"):
            bundle(rng.standard_normal((3, 8)), weights=np.ones(4))


class TestSimilarities:
    def test_dot_matches_manual(self, rng):
        q = rng.standard_normal((3, 16))
        r = rng.standard_normal((5, 16))
        np.testing.assert_allclose(dot_similarity(q, r), q @ r.T)

    def test_cosine_self_similarity_is_one(self, rng):
        v = rng.standard_normal((4, 32))
        sims = cosine_similarity(v, v)
        np.testing.assert_allclose(np.diag(sims), 1.0, atol=1e-9)

    def test_cosine_range(self, rng):
        q = rng.standard_normal((10, 64))
        r = rng.standard_normal((7, 64))
        sims = cosine_similarity(q, r)
        assert (sims <= 1.0 + 1e-9).all() and (sims >= -1.0 - 1e-9).all()

    def test_cosine_zero_vector_safe(self):
        q = np.zeros((1, 8))
        r = np.ones((2, 8))
        sims = cosine_similarity(q, r)
        np.testing.assert_array_equal(sims, 0.0)

    def test_dot_and_cosine_agree_on_argmax_for_equal_norms(self, rng):
        # The paper's dot-product approximation is exact for ranking when
        # reference norms are equal.
        q = rng.standard_normal((20, 64))
        r = rng.standard_normal((5, 64))
        r /= np.linalg.norm(r, axis=1, keepdims=True)
        np.testing.assert_array_equal(
            np.argmax(dot_similarity(q, r), axis=1),
            np.argmax(cosine_similarity(q, r), axis=1),
        )


class TestBipolar:
    def test_bipolarize_values(self, rng):
        v = rng.standard_normal((3, 50))
        out = bipolarize(v)
        assert set(np.unique(out)).issubset({-1, 1})
        assert out.dtype == np.int8

    def test_bipolarize_zero_maps_to_plus_one(self):
        assert bipolarize(np.zeros((1, 4))).min() == 1

    def test_hamming_identity(self, rng):
        v = bipolarize(rng.standard_normal((4, 256)))
        sims = hamming_similarity(v, v)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_hamming_opposite(self):
        v = np.ones((1, 64), dtype=np.int8)
        sims = hamming_similarity(v, -v)
        np.testing.assert_allclose(sims, 0.0)

    def test_hamming_matches_cosine_transform(self, rng):
        a = bipolarize(rng.standard_normal((3, 512)))
        b = bipolarize(rng.standard_normal((4, 512)))
        expected = (1.0 + cosine_similarity(a, b)) / 2.0
        np.testing.assert_allclose(hamming_similarity(a, b), expected, atol=1e-6)

    def test_hamming_rejects_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="dimension mismatch"):
            hamming_similarity(np.ones((1, 8)), np.ones((1, 16)))


@given(
    hvs=hnp.arrays(np.float64, st.tuples(st.integers(1, 6), st.integers(1, 64)),
                   elements=st.floats(-100, 100)),
)
@settings(max_examples=40, deadline=None)
def test_property_bundle_linearity(hvs):
    """bundle(2x) == 2 * bundle(x) and bundle is permutation-invariant."""
    np.testing.assert_allclose(bundle(2.0 * hvs), 2.0 * bundle(hvs), rtol=1e-9)
    perm = np.random.default_rng(0).permutation(len(hvs))
    np.testing.assert_allclose(bundle(hvs[perm]), bundle(hvs), rtol=1e-9, atol=1e-9)


@given(
    dim=st.integers(8, 256),
    seed=st.integers(0, 1000),
)
@settings(max_examples=20, deadline=None)
def test_property_cosine_symmetry(dim, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((3, dim))
    b = rng.standard_normal((2, dim))
    np.testing.assert_allclose(
        cosine_similarity(a, b), cosine_similarity(b, a).T, atol=1e-9
    )
