"""Tests for the HDC regressor (RegHD-style)."""

import numpy as np
import pytest

from repro.hdc import HDCRegressor, NonlinearEncoder


def _nonlinear_problem(num_samples=1500, num_features=8, seed=0,
                       noise=0.05):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((num_samples, num_features)).astype(np.float32)
    u = rng.standard_normal(num_features)
    u /= np.linalg.norm(u)
    v = rng.standard_normal(num_features)
    v /= np.linalg.norm(v)
    y = np.sin(2.0 * x @ u) + 0.5 * (x @ v) ** 2
    y = y + rng.normal(0, noise, num_samples)
    split = int(0.8 * num_samples)
    return x[:split], y[:split], x[split:], y[split:]


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="learning_rate"):
            HDCRegressor(learning_rate=0.0)
        with pytest.raises(ValueError, match="chunk_size"):
            HDCRegressor(chunk_size=0)
        with pytest.raises(ValueError, match="input_scale"):
            HDCRegressor(input_scale=0.0)
        enc = NonlinearEncoder(4, 128, seed=0)
        with pytest.raises(ValueError, match="dimension"):
            HDCRegressor(dimension=64, encoder=enc)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            HDCRegressor(dimension=64).predict(np.zeros((2, 4)))


class TestIterativeFit:
    def test_learns_nonlinear_function(self):
        tx, ty, vx, vy = _nonlinear_problem()
        model = HDCRegressor(dimension=4096, learning_rate=0.2, seed=0)
        model.fit(tx, ty, iterations=20)
        assert model.score(vx, vy) > 0.5

    def test_beats_linear_regression(self):
        tx, ty, vx, vy = _nonlinear_problem()
        model = HDCRegressor(dimension=4096, learning_rate=0.2, seed=0)
        model.fit(tx, ty, iterations=15)
        design = np.c_[tx, np.ones(len(tx))]
        coef, *_ = np.linalg.lstsq(design, ty, rcond=None)
        linear_pred = np.c_[vx, np.ones(len(vx))] @ coef
        linear_r2 = 1 - np.square(vy - linear_pred).sum() / \
            np.square(vy - vy.mean()).sum()
        assert model.score(vx, vy) > linear_r2 + 0.2

    def test_mse_decreases(self):
        tx, ty, _, _ = _nonlinear_problem(num_samples=600)
        model = HDCRegressor(dimension=2048, seed=0)
        history = model.fit(tx, ty, iterations=8)
        assert history.train_mse[-1] < history.train_mse[0]
        assert history.iterations == 8

    def test_validation_curve(self):
        tx, ty, vx, vy = _nonlinear_problem(num_samples=600)
        model = HDCRegressor(dimension=1024, seed=0)
        history = model.fit(tx, ty, iterations=4, validation=(vx, vy))
        assert len(history.validation_mse) == 4

    def test_intercept_handles_offset_targets(self):
        # A pure-constant target must be fit exactly via the intercept.
        rng = np.random.default_rng(0)
        x = rng.standard_normal((200, 4)).astype(np.float32)
        y = np.full(200, 7.5)
        model = HDCRegressor(dimension=512, seed=0)
        model.fit(x, y, iterations=2)
        np.testing.assert_allclose(model.predict(x), 7.5, atol=0.5)

    def test_input_validation(self):
        model = HDCRegressor(dimension=64)
        with pytest.raises(ValueError, match="iterations"):
            model.fit(np.zeros((4, 2)), np.zeros(4), iterations=0)
        with pytest.raises(ValueError, match="2-D"):
            model.fit(np.zeros(4), np.zeros(4))
        with pytest.raises(ValueError, match="targets"):
            model.fit(np.zeros((4, 2)), np.zeros(3))


class TestRidgeFit:
    def test_ridge_quality(self):
        tx, ty, vx, vy = _nonlinear_problem()
        model = HDCRegressor(dimension=4096, seed=0)
        model.fit_ridge(tx, ty, regularization=0.05)
        assert model.score(vx, vy) > 0.6

    def test_ridge_at_least_as_good_as_sgd(self):
        tx, ty, vx, vy = _nonlinear_problem(num_samples=900)
        sgd = HDCRegressor(dimension=2048, seed=0)
        sgd.fit(tx, ty, iterations=10)
        ridge = HDCRegressor(dimension=2048, seed=0)
        ridge.fit_ridge(tx, ty, regularization=0.05)
        assert ridge.score(vx, vy) > sgd.score(vx, vy) - 0.05

    def test_ridge_validation(self):
        model = HDCRegressor(dimension=64)
        with pytest.raises(ValueError, match="regularization"):
            model.fit_ridge(np.zeros((4, 2)), np.zeros(4),
                            regularization=0.0)
        with pytest.raises(ValueError, match="targets"):
            model.fit_ridge(np.zeros((4, 2)), np.zeros(3))


class TestScore:
    def test_perfect_score(self):
        tx, ty, _, _ = _nonlinear_problem(num_samples=400, noise=0.0)
        model = HDCRegressor(dimension=4096, seed=0)
        model.fit_ridge(tx, ty, regularization=1e-4)
        assert model.score(tx, ty) > 0.95  # near-interpolation on train

    def test_constant_targets(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3)).astype(np.float32)
        model = HDCRegressor(dimension=256, seed=0)
        model.fit(x, np.ones(50), iterations=1)
        assert 0.0 <= model.score(x, np.ones(50)) <= 1.0

    def test_length_checked(self):
        tx, ty, _, _ = _nonlinear_problem(num_samples=200)
        model = HDCRegressor(dimension=256, seed=0)
        model.fit(tx, ty, iterations=1)
        with pytest.raises(ValueError, match="targets"):
            model.score(tx, ty[:-1])


class TestPhaseEncoder:
    def test_phases_break_oddness(self):
        # Without phases the encoding is odd; with them it is not.
        plain = NonlinearEncoder(4, 2048, seed=0)
        phased = NonlinearEncoder(4, 2048, seed=0, phase=True)
        x = np.random.default_rng(0).standard_normal((1, 4)).astype(np.float32)
        np.testing.assert_allclose(plain.encode(-x), -plain.encode(x),
                                   atol=1e-6)
        assert not np.allclose(phased.encode(-x), -phased.encode(x),
                               atol=1e-3)

    def test_phased_encoder_compiles_with_bias(self):
        from repro.nn import encoder_network
        encoder = NonlinearEncoder(4, 64, seed=0, phase=True)
        net = encoder_network(encoder)
        assert net.layers[0].bias is not None
        x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        np.testing.assert_allclose(net.forward(x), encoder.encode(x),
                                   rtol=1e-5, atol=1e-5)
