"""Tests for metrics and the paper's cost-ratio formula."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    weight_update_cost_ratio,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0

    def test_half(self):
        assert accuracy(np.array([0, 1, 0, 1]), np.array([0, 1, 1, 0])) == 0.5

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            accuracy(np.zeros(3), np.zeros(4))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="zero"):
            accuracy(np.array([]), np.array([]))


class TestConfusionMatrix:
    def test_counts(self):
        labels = np.array([0, 0, 1, 1, 2])
        predictions = np.array([0, 1, 1, 1, 0])
        matrix = confusion_matrix(predictions, labels)
        assert matrix[0, 0] == 1
        assert matrix[0, 1] == 1
        assert matrix[1, 1] == 2
        assert matrix[2, 0] == 1
        assert matrix.sum() == 5

    def test_explicit_num_classes(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]), num_classes=4)
        assert matrix.shape == (4, 4)

    def test_diagonal_equals_correct_count(self, rng):
        labels = rng.integers(0, 5, 200)
        predictions = rng.integers(0, 5, 200)
        matrix = confusion_matrix(predictions, labels)
        assert np.trace(matrix) == np.sum(predictions == labels)


class TestPerClassAccuracy:
    def test_values(self):
        labels = np.array([0, 0, 1, 1])
        predictions = np.array([0, 1, 1, 1])
        recall = per_class_accuracy(predictions, labels)
        np.testing.assert_allclose(recall, [0.5, 1.0])

    def test_absent_class_is_nan(self):
        recall = per_class_accuracy(np.array([0]), np.array([0]), num_classes=3)
        assert recall[0] == 1.0
        assert np.isnan(recall[1]) and np.isnan(recall[2])


class TestWeightUpdateCostRatio:
    def test_paper_configuration(self):
        # M=4, d'=2500 of d=10000, I'=6 of I=20, alpha=0.6, beta=1
        ratio = weight_update_cost_ratio(4, 2500, 10_000, 6, 20, 0.6, 1.0)
        assert ratio == pytest.approx(0.18)

    def test_no_bagging_is_identity(self):
        assert weight_update_cost_ratio(1, 100, 100, 5, 5, 1.0, 1.0) == 1.0

    def test_feature_sampling_scales(self):
        base = weight_update_cost_ratio(2, 50, 100, 3, 10, 0.5, 1.0)
        halved = weight_update_cost_ratio(2, 50, 100, 3, 10, 0.5, 0.5)
        assert halved == pytest.approx(base / 2)

    @pytest.mark.parametrize("kwargs", [
        dict(num_models=0, sub_dimension=1, dimension=1, sub_iterations=1,
             iterations=1, dataset_ratio=0.5),
        dict(num_models=1, sub_dimension=1, dimension=1, sub_iterations=1,
             iterations=1, dataset_ratio=0.0),
        dict(num_models=1, sub_dimension=1, dimension=1, sub_iterations=1,
             iterations=1, dataset_ratio=0.5, feature_ratio=1.5),
    ])
    def test_invalid_arguments(self, kwargs):
        with pytest.raises(ValueError):
            weight_update_cost_ratio(**kwargs)

    @given(
        num_models=st.integers(1, 16),
        iterations=st.integers(1, 40),
        sub_iterations=st.integers(1, 40),
        dataset_ratio=st.floats(0.01, 1.0),
        feature_ratio=st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_paper_default_width_rule(self, num_models, iterations,
                                               sub_iterations, dataset_ratio,
                                               feature_ratio):
        """With d' = d/M the M and d'/d factors cancel: the ratio reduces
        to (I'/I) * alpha * beta, independent of M."""
        dimension = 1000 * num_models
        ratio = weight_update_cost_ratio(
            num_models, dimension // num_models, dimension,
            sub_iterations, iterations, dataset_ratio, feature_ratio,
        )
        expected = (sub_iterations / iterations) * dataset_ratio * feature_ratio
        assert ratio == pytest.approx(expected)
