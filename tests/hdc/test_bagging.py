"""Tests for bagging-accelerated training and model fusion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc import BaggingConfig, BaggingHDCTrainer, FusedHDCModel
from repro.runtime.executor import ExecutorConfig


def _blobs(num_samples=400, num_features=10, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 4.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestBaggingConfig:
    def test_paper_defaults(self):
        cfg = BaggingConfig()
        assert cfg.num_models == 4
        assert cfg.dimension == 10_000
        assert cfg.effective_sub_dimension == 2500
        assert cfg.iterations == 6
        assert cfg.dataset_ratio == 0.6
        assert cfg.feature_ratio == 1.0

    def test_fused_dimension(self):
        cfg = BaggingConfig(num_models=4, dimension=10_000)
        assert cfg.fused_dimension == 10_000

    def test_explicit_sub_dimension(self):
        cfg = BaggingConfig(num_models=2, dimension=1000, sub_dimension=300)
        assert cfg.effective_sub_dimension == 300
        assert cfg.fused_dimension == 600

    @pytest.mark.parametrize("kwargs", [
        dict(num_models=0),
        dict(dataset_ratio=0.0),
        dict(dataset_ratio=1.5),
        dict(feature_ratio=0.0),
        dict(iterations=0),
        dict(sub_dimension=0),
        dict(num_models=100, dimension=50),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            BaggingConfig(**kwargs)


class TestTraining:
    def test_trains_m_sub_models(self):
        x, y = _blobs()
        cfg = BaggingConfig(num_models=3, dimension=768, iterations=2)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        assert len(trainer.sub_models) == 3
        assert all(m.dimension == 256 for m in trainer.sub_models)

    def test_bootstrap_subset_size(self):
        x, y = _blobs(num_samples=500)
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1,
                            dataset_ratio=0.6)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        for indices in trainer.sample_indices:
            assert len(indices) == 300

    def test_without_replacement_indices_unique(self):
        x, y = _blobs(num_samples=500)
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1,
                            dataset_ratio=0.5, replace=False)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        for indices in trainer.sample_indices:
            assert len(np.unique(indices)) == len(indices)

    def test_with_replacement_can_repeat(self):
        x, y = _blobs(num_samples=100)
        cfg = BaggingConfig(num_models=1, dimension=256, iterations=1,
                            dataset_ratio=1.0, replace=True)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        assert len(np.unique(trainer.sample_indices[0])) < 100

    def test_sub_models_see_different_subsets(self):
        x, y = _blobs(num_samples=500)
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        assert not np.array_equal(trainer.sample_indices[0],
                                  trainer.sample_indices[1])

    def test_feature_sampling_masks(self):
        x, y = _blobs(num_features=20)
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1,
                            feature_ratio=0.5)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        for mask in trainer.feature_masks:
            assert mask.sum() == 10
        for model, mask in zip(trainer.sub_models, trainer.feature_masks):
            np.testing.assert_array_equal(
                model.encoder.base_hypervectors[~mask], 0.0
            )

    def test_feature_ratio_one_keeps_all(self):
        x, y = _blobs(num_features=8)
        cfg = BaggingConfig(num_models=1, dimension=256, iterations=1)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        assert trainer.feature_masks[0].all()

    def test_rejects_mismatched_labels(self):
        x, y = _blobs()
        with pytest.raises(ValueError, match="labels"):
            BaggingHDCTrainer(BaggingConfig(dimension=256), seed=0).fit(x, y[:-1])

    def test_rejects_1d_samples(self):
        with pytest.raises(ValueError, match="2-D"):
            BaggingHDCTrainer(BaggingConfig(dimension=256), seed=0).fit(
                np.zeros(10), np.zeros(10, dtype=int)
            )

    def test_fuse_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            BaggingHDCTrainer(BaggingConfig(dimension=256), seed=0).fuse()


class TestFusion:
    def test_fused_shapes(self):
        x, y = _blobs(num_features=10, num_classes=3)
        cfg = BaggingConfig(num_models=4, dimension=1024, iterations=2)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        fused = trainer.fuse()
        assert fused.base_matrix.shape == (10, 1024)
        assert fused.class_matrix.shape == (1024, 3)
        assert fused.sub_widths == [256] * 4

    def test_fused_scores_equal_ensemble_sum(self):
        # The paper's key fusion identity: one matmul pair computes the
        # sum of the sub-models' similarity scores exactly.
        x, y = _blobs()
        cfg = BaggingConfig(num_models=3, dimension=768, iterations=3)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        fused = trainer.fuse()
        np.testing.assert_allclose(
            fused.scores(x[:50]), trainer.ensemble_scores(x[:50]),
            rtol=1e-4, atol=1e-3,
        )

    def test_fused_scores_equal_ensemble_with_feature_sampling(self):
        # feature_ratio < 1 exercises the zeroed-row path: unsampled
        # features have zero rows in each sub-encoder, and fusion must
        # still reproduce the ensemble's summed scores.
        x, y = _blobs(num_features=16)
        cfg = BaggingConfig(num_models=3, dimension=768, iterations=3,
                            feature_ratio=0.5)
        trainer = BaggingHDCTrainer(cfg, seed=4).fit(x, y)
        fused = trainer.fuse()
        for mask, model in zip(trainer.feature_masks, trainer.sub_models):
            assert 0 < mask.sum() < x.shape[1]
            zero_rows = ~model.encoder.base_hypervectors.any(axis=1)
            np.testing.assert_array_equal(zero_rows, ~mask)
        np.testing.assert_allclose(
            fused.scores(x[:60]), trainer.ensemble_scores(x[:60]),
            rtol=1e-4, atol=1e-3,
        )

    def test_fused_predictions_equal_ensemble(self):
        x, y = _blobs()
        cfg = BaggingConfig(num_models=3, dimension=768, iterations=3)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        fused = trainer.fuse()
        np.testing.assert_array_equal(fused.predict(x), trainer.predict(x))

    def test_fused_encoding_is_concatenation(self):
        x, y = _blobs()
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x, y)
        fused = trainer.fuse()
        pieces = np.hstack([m.encoder.encode(x[:5]) for m in trainer.sub_models])
        np.testing.assert_allclose(fused.encode(x[:5]), pieces, rtol=1e-5,
                                   atol=1e-6)

    def test_fused_model_accuracy(self):
        x, y = _blobs(num_samples=600)
        cfg = BaggingConfig(num_models=4, dimension=1024, iterations=3)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(x[:450], y[:450])
        fused = trainer.fuse()
        assert fused.score(x[450:], y[450:]) > 0.9

    def test_bagging_accuracy_close_to_full_model(self, small_isolet):
        # The paper's Fig. 7 claim: bagged training at d'=d/M with fewer
        # iterations reaches accuracy similar to the fully-trained model.
        from repro.hdc import HDCClassifier
        ds = small_isolet
        full = HDCClassifier(dimension=2048, seed=0)
        full.fit(ds.train_x, ds.train_y, iterations=10)
        cfg = BaggingConfig(num_models=4, dimension=2048, iterations=4)
        trainer = BaggingHDCTrainer(cfg, seed=0).fit(ds.train_x, ds.train_y)
        fused = trainer.fuse()
        full_acc = full.score(ds.test_x, ds.test_y)
        bag_acc = fused.score(ds.test_x, ds.test_y)
        assert bag_acc > full_acc - 0.08

    def test_fused_model_validation(self):
        with pytest.raises(ValueError, match="width mismatch"):
            FusedHDCModel(np.zeros((3, 8)), np.zeros((9, 2)), 2)
        with pytest.raises(ValueError, match="num_classes"):
            FusedHDCModel(np.zeros((3, 8)), np.zeros((8, 2)), 3)
        with pytest.raises(ValueError, match="2-D"):
            FusedHDCModel(np.zeros(8), np.zeros((8, 2)), 2)

    def test_fused_rejects_wrong_feature_count(self):
        x, y = _blobs(num_features=10)
        cfg = BaggingConfig(num_models=2, dimension=512, iterations=1)
        fused = BaggingHDCTrainer(cfg, seed=0).fit(x, y).fuse()
        with pytest.raises(ValueError, match="features"):
            fused.predict(np.zeros((2, 7)))


class TestParallelTraining:
    """The worker-pool determinism contract: bit-identical any-N."""

    def _fused(self, executor, seed=7):
        x, y = _blobs(num_samples=300)
        cfg = BaggingConfig(num_models=4, dimension=512, iterations=2)
        trainer = BaggingHDCTrainer(cfg, seed=seed, executor=executor)
        trainer.fit(x, y)
        return trainer, trainer.fuse()

    def test_workers_1_vs_4_bit_identical(self):
        _, serial = self._fused(None)
        _, parallel = self._fused(ExecutorConfig(workers=4))
        np.testing.assert_array_equal(serial.base_matrix,
                                      parallel.base_matrix)
        np.testing.assert_array_equal(serial.class_matrix,
                                      parallel.class_matrix)

    def test_process_backend_bit_identical(self):
        _, serial = self._fused(None)
        _, parallel = self._fused(
            ExecutorConfig(workers=4, backend="process")
        )
        np.testing.assert_array_equal(serial.base_matrix,
                                      parallel.base_matrix)
        np.testing.assert_array_equal(serial.class_matrix,
                                      parallel.class_matrix)

    def test_bookkeeping_identical(self):
        serial_trainer, _ = self._fused(None)
        parallel_trainer, _ = self._fused(ExecutorConfig(workers=2))
        for a, b in zip(serial_trainer.sample_indices,
                        parallel_trainer.sample_indices):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(serial_trainer.histories,
                        parallel_trainer.histories):
            assert a.train_accuracy == b.train_accuracy
            assert a.updates == b.updates

    def test_more_workers_than_models(self):
        _, serial = self._fused(None)
        _, parallel = self._fused(ExecutorConfig(workers=16))
        np.testing.assert_array_equal(serial.class_matrix,
                                      parallel.class_matrix)

    def test_workers_as_plain_int(self):
        trainer, _ = self._fused(2)
        assert trainer.executor.workers == 2

    def test_parallel_report_populated(self):
        trainer, _ = self._fused(ExecutorConfig(workers=4))
        report = trainer.last_parallel_report
        assert report.workers == 4
        assert len(report.task_seconds) == 4
        assert report.speedup > 1.0

    def test_different_seeds_still_differ(self):
        _, a = self._fused(ExecutorConfig(workers=4), seed=7)
        _, b = self._fused(ExecutorConfig(workers=4), seed=8)
        assert not np.array_equal(a.class_matrix, b.class_matrix)


@given(
    num_models=st.integers(1, 5),
    sub_dim=st.integers(8, 64),
    seed=st.integers(0, 100),
)
@settings(max_examples=10, deadline=None)
def test_property_fusion_identity(num_models, sub_dim, seed):
    """Fused scores == sum of sub-model scores for any M and d'."""
    x, y = _blobs(num_samples=60, seed=seed)
    cfg = BaggingConfig(num_models=num_models, dimension=num_models * sub_dim,
                        sub_dimension=sub_dim, iterations=1)
    trainer = BaggingHDCTrainer(cfg, seed=seed).fit(x, y)
    fused = trainer.fuse()
    np.testing.assert_allclose(
        fused.scores(x[:10]), trainer.ensemble_scores(x[:10]),
        rtol=1e-3, atol=1e-3,
    )
