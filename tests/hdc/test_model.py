"""Tests for the HDC classifier and its training dynamics."""

import numpy as np
import pytest

from repro.hdc import HDCClassifier, LinearEncoder, NonlinearEncoder


def _blobs(num_samples=300, num_features=12, num_classes=3, seed=0, spread=4.0):
    """Well-separated Gaussian blobs: easy, fast sanity workload."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * spread
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestConstruction:
    def test_rejects_bad_similarity(self):
        with pytest.raises(ValueError, match="similarity"):
            HDCClassifier(similarity="euclidean")

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError, match="chunk_size"):
            HDCClassifier(chunk_size=0)

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError, match="learning_rate"):
            HDCClassifier(learning_rate=0.0)

    def test_rejects_encoder_dimension_mismatch(self):
        enc = NonlinearEncoder(4, 128, seed=0)
        with pytest.raises(ValueError, match="dimension"):
            HDCClassifier(dimension=64, encoder=enc)

    def test_predict_before_fit_raises(self):
        model = HDCClassifier(dimension=32)
        with pytest.raises(RuntimeError, match="fit"):
            model.predict(np.zeros((1, 4)))


class TestTraining:
    def test_learns_blobs(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=1024, seed=0)
        model.fit(x, y, iterations=5)
        assert model.score(x, y) > 0.95

    def test_history_records_every_pass(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=512, seed=0)
        history = model.fit(x, y, iterations=4)
        assert history.iterations == 4
        assert len(history.updates) == 4
        assert history.samples_seen == [len(y)] * 4

    def test_train_accuracy_improves(self):
        x, y = _blobs(num_samples=600)
        model = HDCClassifier(dimension=2048, seed=0)
        history = model.fit(x, y, iterations=6)
        assert history.train_accuracy[-1] > history.train_accuracy[0]

    def test_validation_curve_recorded(self):
        x, y = _blobs(num_samples=400)
        model = HDCClassifier(dimension=512, seed=0)
        history = model.fit(x[:300], y[:300], iterations=3,
                            validation=(x[300:], y[300:]))
        assert len(history.validation_accuracy) == 3
        assert all(0.0 <= a <= 1.0 for a in history.validation_accuracy)

    def test_updates_decrease_as_model_converges(self):
        x, y = _blobs(num_samples=600)
        model = HDCClassifier(dimension=2048, seed=0)
        history = model.fit(x, y, iterations=8)
        assert history.updates[-1] < history.updates[0]

    def test_chunk_size_one_matches_paper_semantics(self):
        # With chunk_size=1 every sample is scored against fully-updated
        # class hypervectors: the strictly-online rule.  The result must
        # still learn; and on an easy task both settings should agree.
        x, y = _blobs(num_samples=200)
        online = HDCClassifier(dimension=512, chunk_size=1, seed=0)
        online.fit(x, y, iterations=3)
        assert online.score(x, y) > 0.9

    def test_mistake_driven_updates_only(self):
        # On a trivially separable 2-sample problem the first pass makes
        # exactly 2 updates (both initial misclassifications from zero HVs)
        # and later passes make none.
        x = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        y = np.array([0, 1])
        model = HDCClassifier(dimension=256, chunk_size=1, seed=1)
        history = model.fit(x, y, iterations=3, shuffle=False)
        assert history.updates[0] >= 1
        assert history.updates[-1] == 0

    def test_class_hypervector_shape(self):
        x, y = _blobs(num_classes=4)
        model = HDCClassifier(dimension=128, seed=0)
        model.fit(x, y, iterations=2)
        assert model.class_hypervectors.shape == (4, 128)

    def test_explicit_num_classes(self):
        x, y = _blobs(num_classes=3)
        model = HDCClassifier(dimension=128, seed=0)
        model.fit(x, y, iterations=1, num_classes=5)
        assert model.class_hypervectors.shape == (5, 128)

    def test_cannot_grow_classes(self):
        x, y = _blobs(num_classes=3)
        model = HDCClassifier(dimension=128, seed=0)
        model.fit(x, y, iterations=1, num_classes=3)
        with pytest.raises(ValueError, match="grow"):
            model.fit(x, np.full_like(y, 4), iterations=1, num_classes=5)

    def test_rejects_zero_iterations(self):
        x, y = _blobs()
        with pytest.raises(ValueError, match="iterations"):
            HDCClassifier(dimension=64).fit(x, y, iterations=0)

    def test_rejects_label_mismatch(self):
        x, y = _blobs()
        with pytest.raises(ValueError, match="labels"):
            HDCClassifier(dimension=64).fit(x, y[:-1])

    def test_learning_rate_scale_invariance_for_dot(self):
        # From zero-initialized class HVs with fixed lr, the dot-product
        # argmax is invariant to the lr value (all updates scale equally).
        x, y = _blobs(num_samples=200)
        a = HDCClassifier(dimension=512, learning_rate=0.01, seed=0)
        b = HDCClassifier(dimension=512, learning_rate=10.0, seed=0)
        a.fit(x, y, iterations=3, shuffle=False)
        b.fit(x, y, iterations=3, shuffle=False)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))


class TestPartialFit:
    def test_streaming_equivalent_to_one_pass(self):
        x, y = _blobs(num_samples=200)
        stream = HDCClassifier(dimension=512, seed=0)
        stream.partial_fit(x, y)
        assert stream.history.iterations == 1
        assert stream.class_hypervectors is not None

    def test_two_partial_fits_accumulate(self):
        x, y = _blobs(num_samples=200)
        model = HDCClassifier(dimension=512, seed=0)
        model.partial_fit(x[:100], y[:100])
        model.partial_fit(x[100:], y[100:])
        assert model.history.iterations == 2


class TestInference:
    def test_scores_shape(self):
        x, y = _blobs(num_classes=4)
        model = HDCClassifier(dimension=128, seed=0)
        model.fit(x, y, iterations=2)
        assert model.scores(x[:7]).shape == (7, 4)

    def test_cosine_similarity_mode(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=1024, similarity="cosine", seed=0)
        model.fit(x, y, iterations=4)
        assert model.score(x, y) > 0.9

    def test_encoded_roundtrip(self):
        # Feeding pre-encoded hypervectors must match feeding raw features.
        x, y = _blobs()
        model = HDCClassifier(dimension=512, seed=0)
        model.fit(x, y, iterations=3)
        encoded = model.encoder.encode(x)
        np.testing.assert_array_equal(
            model.predict(x), model.predict(encoded, encoded=True)
        )

    def test_encoded_width_validated(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=512, seed=0)
        model.fit(x, y, iterations=1)
        with pytest.raises(ValueError, match="width"):
            model.predict(np.zeros((2, 100)), encoded=True)

    def test_score_validates_lengths(self):
        x, y = _blobs()
        model = HDCClassifier(dimension=128, seed=0)
        model.fit(x, y, iterations=1)
        with pytest.raises(ValueError, match="labels"):
            model.score(x, y[:-1])


class TestEncoderVariants:
    def test_linear_encoder_supported(self):
        x, y = _blobs()
        enc = LinearEncoder(num_features=x.shape[1], dimension=1024, seed=0)
        model = HDCClassifier(dimension=1024, encoder=enc, seed=0)
        model.fit(x, y, iterations=4)
        assert model.score(x, y) > 0.9

    def test_nonlinear_beats_linear_on_warped_data(self, small_isolet):
        # The paper's claim for choosing tanh encoding: higher accuracy on
        # linearly inseparable data.
        ds = small_isolet
        nonlinear = HDCClassifier(dimension=2048, seed=0)
        nonlinear.fit(ds.train_x, ds.train_y, iterations=6)
        linear_enc = LinearEncoder(ds.num_features, 2048, seed=0)
        linear = HDCClassifier(dimension=2048, encoder=linear_enc, seed=0)
        linear.fit(ds.train_x, ds.train_y, iterations=6)
        assert nonlinear.score(ds.test_x, ds.test_y) >= \
            linear.score(ds.test_x, ds.test_y) - 0.02
