"""Tests for binding, permutation and the n-gram sequence encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc import SequenceEncoder, bind, bipolarize, permute


class TestBind:
    def test_elementwise_product(self, rng):
        a = rng.standard_normal(32)
        b = rng.standard_normal(32)
        np.testing.assert_allclose(bind(a, b), a * b)

    def test_self_inverse_for_bipolar(self, rng):
        a = bipolarize(rng.standard_normal(256)).astype(np.float32)
        b = bipolarize(rng.standard_normal(256)).astype(np.float32)
        np.testing.assert_array_equal(bind(bind(a, b), b), a)

    def test_bound_dissimilar_to_inputs(self, rng):
        a = bipolarize(rng.standard_normal(20_000)).astype(np.float32)
        b = bipolarize(rng.standard_normal(20_000)).astype(np.float32)
        bound = bind(a, b)
        assert abs(np.dot(bound, a)) < 0.05 * 20_000
        assert abs(np.dot(bound, b)) < 0.05 * 20_000

    def test_rejects_dim_mismatch(self, rng):
        with pytest.raises(ValueError, match="mismatch"):
            bind(np.ones(4), np.ones(5))

    def test_commutative(self, rng):
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        np.testing.assert_allclose(bind(a, b), bind(b, a))


class TestPermute:
    def test_cyclic_shift(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        np.testing.assert_array_equal(permute(v), [4.0, 1.0, 2.0, 3.0])

    def test_inverse(self, rng):
        v = rng.standard_normal(64)
        np.testing.assert_array_equal(permute(permute(v, 5), -5), v)

    def test_norm_preserved(self, rng):
        v = rng.standard_normal(128)
        assert np.linalg.norm(permute(v)) == pytest.approx(np.linalg.norm(v))

    def test_decorrelates(self, rng):
        v = bipolarize(rng.standard_normal(20_000)).astype(np.float32)
        assert abs(np.dot(permute(v), v)) < 0.05 * 20_000

    def test_composition(self, rng):
        v = rng.standard_normal(32)
        np.testing.assert_array_equal(permute(permute(v, 2), 3),
                                      permute(v, 5))


class TestSequenceEncoder:
    @pytest.fixture()
    def encoder(self):
        return SequenceEncoder(alphabet_size=4, dimension=8192, ngram=3,
                               seed=0)

    def test_output_shape(self, encoder):
        out = encoder.encode(np.array([0, 1, 2, 3, 0]))
        assert out.shape == (8192,)

    def test_deterministic(self, encoder):
        seq = np.array([0, 1, 2, 3])
        np.testing.assert_array_equal(encoder.encode(seq),
                                      encoder.encode(seq))

    def test_order_sensitive(self, encoder):
        # "ABC" and "CBA" must encode differently — the permutation's job.
        forward = encoder.encode(np.array([0, 1, 2]))
        backward = encoder.encode(np.array([2, 1, 0]))
        dim = encoder.dimension
        assert abs(np.dot(forward, backward)) < 0.2 * dim

    def test_shared_ngrams_increase_similarity(self, encoder, rng):
        # Sequences sharing most n-grams stay similar; unrelated random
        # sequences do not.
        base = rng.integers(0, 4, 40)
        near = base.copy()
        near[20] = (near[20] + 1) % 4  # one-symbol edit
        far = rng.integers(0, 4, 40)
        e_base = encoder.encode(base)
        e_near = encoder.encode(near)
        e_far = encoder.encode(far)
        sim_near = np.dot(e_base, e_near) / (
            np.linalg.norm(e_base) * np.linalg.norm(e_near))
        sim_far = np.dot(e_base, e_far) / (
            np.linalg.norm(e_base) * np.linalg.norm(e_far))
        assert sim_near > sim_far + 0.2

    def test_matches_manual_ngram_construction(self):
        # Cross-check the vectorized implementation against the textbook
        # definition for one tiny case.
        encoder = SequenceEncoder(alphabet_size=3, dimension=64, ngram=2,
                                  seed=1)
        items = encoder.item_hypervectors
        seq = np.array([2, 0, 1])
        expected = (
            permute(items[2], 1) * items[0]
            + permute(items[0], 1) * items[1]
        )
        np.testing.assert_allclose(encoder.encode(seq), expected, rtol=1e-6)

    def test_encode_batch(self, encoder):
        out = encoder.encode_batch([np.array([0, 1, 2]),
                                    np.array([3, 2, 1, 0])])
        assert out.shape == (2, 8192)

    def test_validation(self, encoder):
        with pytest.raises(ValueError, match="shorter"):
            encoder.encode(np.array([0, 1]))
        with pytest.raises(ValueError, match="range"):
            encoder.encode(np.array([0, 1, 9]))
        with pytest.raises(ValueError, match="1-D"):
            encoder.encode(np.zeros((2, 3), dtype=int))
        with pytest.raises(ValueError, match="no sequences"):
            encoder.encode_batch([])

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SequenceEncoder(alphabet_size=1, dimension=8)
        with pytest.raises(ValueError):
            SequenceEncoder(alphabet_size=4, dimension=8, ngram=0)

    def test_classification_of_sequence_families(self):
        # End-to-end: an HDCClassifier separates two Markov-ish sequence
        # families from their n-gram encodings.
        from repro.hdc import HDCClassifier
        rng = np.random.default_rng(0)
        encoder = SequenceEncoder(alphabet_size=4, dimension=4096, ngram=3,
                                  seed=0)

        def family(bias, count):
            sequences = []
            for _ in range(count):
                seq = [int(rng.integers(0, 4))]
                for _ in range(29):
                    if rng.random() < 0.8:
                        seq.append((seq[-1] + bias) % 4)
                    else:
                        seq.append(int(rng.integers(0, 4)))
                sequences.append(np.array(seq))
            return sequences

        train = family(1, 60) + family(3, 60)
        labels = np.array([0] * 60 + [1] * 60)
        test = family(1, 20) + family(3, 20)
        test_labels = np.array([0] * 20 + [1] * 20)
        model = HDCClassifier(dimension=4096, seed=0)
        model.fit(encoder.encode_batch(train), labels, iterations=5,
                  encoded=True)
        accuracy = model.score(encoder.encode_batch(test), test_labels,
                               encoded=True)
        assert accuracy > 0.85


@given(shifts=st.integers(-64, 64), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_property_permute_is_bijective(shifts, seed):
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(64)
    np.testing.assert_array_equal(permute(permute(v, shifts), -shifts), v)
    assert sorted(permute(v, shifts)) == sorted(v)
