"""Tests for the HDC encoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdc import IdLevelEncoder, LinearEncoder, NonlinearEncoder


class TestNonlinearEncoder:
    def test_formula(self, rng):
        # E = tanh(F @ B), the paper's Sec. III-A equation.
        enc = NonlinearEncoder(num_features=6, dimension=64, seed=0)
        x = rng.standard_normal((3, 6)).astype(np.float32)
        np.testing.assert_allclose(
            enc.encode(x), np.tanh(x @ enc.base_hypervectors), rtol=1e-6
        )

    def test_output_bounded(self, rng):
        enc = NonlinearEncoder(num_features=4, dimension=128, seed=0)
        out = enc.encode(rng.standard_normal((10, 4)) * 100)
        assert (np.abs(out) <= 1.0).all()

    def test_single_sample_shape(self, rng):
        enc = NonlinearEncoder(num_features=4, dimension=32, seed=0)
        assert enc.encode(rng.standard_normal(4)).shape == (32,)
        assert enc.encode(rng.standard_normal((2, 4))).shape == (2, 32)

    def test_projection_is_preactivation(self, rng):
        enc = NonlinearEncoder(num_features=4, dimension=32, seed=0)
        x = rng.standard_normal((5, 4))
        np.testing.assert_allclose(
            np.tanh(enc.projection(x)), enc.encode(x), rtol=1e-6
        )

    def test_feature_mask_zeroes_rows(self):
        mask = np.array([True, False, True])
        enc = NonlinearEncoder(num_features=3, dimension=16, seed=0,
                               feature_mask=mask)
        np.testing.assert_array_equal(enc.base_hypervectors[1], 0.0)
        assert not np.allclose(enc.base_hypervectors[0], 0.0)

    def test_masked_feature_does_not_affect_encoding(self, rng):
        mask = np.array([True, False, True])
        enc = NonlinearEncoder(num_features=3, dimension=64, seed=0,
                               feature_mask=mask)
        x1 = rng.standard_normal((4, 3)).astype(np.float32)
        x2 = x1.copy()
        x2[:, 1] = 999.0
        np.testing.assert_allclose(enc.encode(x1), enc.encode(x2))

    def test_rejects_bad_mask_shape(self):
        with pytest.raises(ValueError, match="feature_mask"):
            NonlinearEncoder(num_features=3, dimension=8,
                             feature_mask=np.ones(4, dtype=bool))

    def test_rejects_wrong_feature_count(self, rng):
        enc = NonlinearEncoder(num_features=3, dimension=8, seed=0)
        with pytest.raises(ValueError, match="features"):
            enc.encode(rng.standard_normal((2, 5)))

    def test_deterministic_seed(self, rng):
        x = rng.standard_normal((2, 3))
        a = NonlinearEncoder(3, 32, seed=7).encode(x)
        b = NonlinearEncoder(3, 32, seed=7).encode(x)
        np.testing.assert_array_equal(a, b)

    def test_similar_inputs_have_similar_encodings(self, rng):
        # Locality: encoding preserves neighborhood structure, the property
        # that makes HDC classification work.
        enc = NonlinearEncoder(num_features=10, dimension=4096, seed=0)
        x = rng.standard_normal(10).astype(np.float32)
        near = x + 0.01 * rng.standard_normal(10).astype(np.float32)
        far = rng.standard_normal(10).astype(np.float32) * 3
        e_x, e_near, e_far = enc.encode(np.stack([x, near, far]))
        sim_near = np.dot(e_x, e_near) / (np.linalg.norm(e_x) * np.linalg.norm(e_near))
        sim_far = np.dot(e_x, e_far) / (np.linalg.norm(e_x) * np.linalg.norm(e_far))
        assert sim_near > 0.95
        assert sim_near > sim_far


class TestLinearEncoder:
    def test_formula(self, rng):
        enc = LinearEncoder(num_features=5, dimension=32, seed=0)
        x = rng.standard_normal((3, 5)).astype(np.float32)
        np.testing.assert_allclose(enc.encode(x), x @ enc.base_hypervectors,
                                   rtol=1e-6)

    def test_linearity(self, rng):
        enc = LinearEncoder(num_features=5, dimension=32, seed=0)
        a = rng.standard_normal(5).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)
        np.testing.assert_allclose(
            enc.encode(a + b), enc.encode(a) + enc.encode(b), rtol=1e-4,
            atol=1e-5,
        )

    def test_dot_products_preserved_in_expectation(self, rng):
        # Johnson-Lindenstrauss-style property: <E(a), E(b)> / d ~ <a, b>.
        enc = LinearEncoder(num_features=8, dimension=50_000, seed=0)
        a = rng.standard_normal(8).astype(np.float32)
        b = rng.standard_normal(8).astype(np.float32)
        estimate = np.dot(enc.encode(a), enc.encode(b)) / enc.dimension
        assert abs(estimate - np.dot(a, b)) < 0.3


class TestIdLevelEncoder:
    def test_quantize_bounds(self):
        enc = IdLevelEncoder(num_features=2, dimension=64, num_levels=8,
                             value_range=(-1.0, 1.0), seed=0)
        idx = enc.quantize(np.array([[-5.0, 5.0]]))
        assert idx[0, 0] == 0
        assert idx[0, 1] == 7

    def test_quantize_monotonic(self):
        enc = IdLevelEncoder(num_features=1, dimension=64, num_levels=16,
                             value_range=(0.0, 1.0), seed=0)
        values = np.linspace(0, 0.999, 50)[:, None]
        idx = enc.quantize(values).ravel()
        assert (np.diff(idx) >= 0).all()

    def test_level_hypervectors_locality(self):
        # Adjacent levels stay similar; extreme levels drift apart.
        enc = IdLevelEncoder(num_features=1, dimension=8192, num_levels=32,
                             seed=0)
        levels = enc.level_hypervectors
        d = enc.dimension
        sim_adjacent = np.dot(levels[0], levels[1]) / d
        sim_extreme = np.dot(levels[0], levels[-1]) / d
        assert sim_adjacent > 0.9
        assert sim_extreme < 0.25

    def test_encoding_shape(self, rng):
        enc = IdLevelEncoder(num_features=5, dimension=128, seed=0)
        out = enc.encode(rng.standard_normal((3, 5)))
        assert out.shape == (3, 128)

    def test_identical_samples_encode_identically(self, rng):
        enc = IdLevelEncoder(num_features=5, dimension=128, seed=0)
        x = rng.standard_normal(5)
        np.testing.assert_array_equal(enc.encode(x), enc.encode(x))

    def test_degenerate_levels_still_distinct(self):
        # Regression: when num_levels - 1 > dimension / 2 the constant
        # per-level flip count floors to 0 and every level hypervector
        # used to collapse onto the base HV.  Flips are now redistributed
        # so the extremes stay near-orthogonal.
        enc = IdLevelEncoder(num_features=4, dimension=64, num_levels=64,
                             seed=0)
        levels = enc.level_hypervectors
        assert not np.array_equal(levels[0], levels[-1])
        extreme = float(levels[0] @ levels[-1]) / enc.dimension
        assert abs(extreme) < 0.25
        # Total flips across the ramp equal dimension // 2.
        changed = int(np.sum(levels[0] != levels[-1]))
        assert changed == enc.dimension // 2
        # Similarity to level 0 decreases monotonically along the ramp.
        sims = (levels @ levels[0]) / enc.dimension
        assert all(a >= b for a, b in zip(sims[:-1], sims[1:]))

    def test_degenerate_boundary_matches_non_degenerate_rule(self):
        # Just above the boundary (flips_per_level == 1) the original
        # construction is untouched.
        enc = IdLevelEncoder(num_features=2, dimension=64, num_levels=33,
                             seed=1)
        levels = enc.level_hypervectors
        diffs = [int(np.sum(levels[i] != levels[i + 1]))
                 for i in range(len(levels) - 1)]
        assert diffs == [1] * 32

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError, match="num_levels"):
            IdLevelEncoder(num_features=2, dimension=8, num_levels=1)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError, match="value_range"):
            IdLevelEncoder(num_features=2, dimension=8, value_range=(1.0, -1.0))


@given(
    num_features=st.integers(1, 12),
    dimension=st.integers(1, 128),
    seed=st.integers(0, 500),
)
@settings(max_examples=25, deadline=None)
def test_property_nonlinear_encoding_bounded_and_odd(num_features, dimension, seed):
    """tanh encoding is bounded by 1 and odd: E(-F) == -E(F)."""
    rng = np.random.default_rng(seed)
    enc = NonlinearEncoder(num_features, dimension, seed=seed)
    x = rng.standard_normal((3, num_features)).astype(np.float32)
    out = enc.encode(x)
    assert (np.abs(out) <= 1.0).all()
    np.testing.assert_allclose(enc.encode(-x), -out, atol=1e-6)
