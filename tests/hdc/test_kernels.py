"""Equivalence tests for the vectorized update/encode kernels.

The contract (see ``repro.hdc.kernels``): the scatter kernel is
bit-identical to the reference loop on any input; the matmul kernel is
bit-identical on exact-arithmetic inputs (bipolar hypervectors with a
power-of-two learning rate, or at most one mistake per chunk) and
association-order close otherwise.
"""

import numpy as np
import pytest

from repro.hdc import kernels
from repro.hdc.model import HDCClassifier


def _random_updates(rng, wrong=64, dimension=512, num_classes=10):
    hypervectors = rng.standard_normal((wrong, dimension)).astype(np.float32)
    true_labels = rng.integers(0, num_classes, size=wrong)
    predicted = (true_labels + rng.integers(1, num_classes, size=wrong)) \
        % num_classes
    return hypervectors, true_labels, predicted


def _apply(kernel, hypervectors, true_labels, predicted, lr=0.035,
           num_classes=10, zero_base=False, **kwargs):
    if zero_base:
        # Real training starts from zeros; with exact-grid updates the
        # accumulated values stay exactly representable.
        classes = np.zeros(
            (num_classes, hypervectors.shape[1]), dtype=np.float32
        )
    else:
        classes = np.asarray(
            np.linspace(-1.0, 1.0, num_classes * hypervectors.shape[1]),
            dtype=np.float32,
        ).reshape(num_classes, -1).copy()
    kernel(classes, hypervectors, true_labels, predicted, lr, **kwargs)
    return classes


class TestClassUpdateKernels:
    def test_scatter_bit_identical_to_loop(self):
        rng = np.random.default_rng(0)
        args = _random_updates(rng)
        expected = _apply(kernels.loop_class_update, *args)
        actual = _apply(kernels.scatter_class_update, *args)
        np.testing.assert_array_equal(actual, expected)

    def test_scatter_bit_identical_with_repeated_classes(self):
        # Many samples hitting the same two classes exercises the
        # sequential-duplicate-index guarantee of ufunc.at.
        rng = np.random.default_rng(1)
        hypervectors = rng.standard_normal((40, 256)).astype(np.float32)
        true_labels = np.zeros(40, dtype=np.int64)
        predicted = np.ones(40, dtype=np.int64)
        expected = _apply(kernels.loop_class_update, hypervectors,
                          true_labels, predicted, num_classes=3)
        actual = _apply(kernels.scatter_class_update, hypervectors,
                        true_labels, predicted, num_classes=3)
        np.testing.assert_array_equal(actual, expected)

    def test_matmul_bit_identical_on_exact_arithmetic(self):
        # Bipolar +/-1 hypervectors with a power-of-two learning rate
        # keep every partial sum exactly representable, so any summation
        # order gives the same bits.
        rng = np.random.default_rng(2)
        hypervectors = np.where(
            rng.random((64, 512)) < 0.5, -1.0, 1.0
        ).astype(np.float32)
        true_labels = rng.integers(0, 10, size=64)
        predicted = (true_labels + 1) % 10
        expected = _apply(kernels.loop_class_update, hypervectors,
                          true_labels, predicted, lr=0.03125,
                          zero_base=True)
        actual = _apply(kernels.matmul_class_update, hypervectors,
                        true_labels, predicted, lr=0.03125, zero_base=True)
        np.testing.assert_array_equal(actual, expected)

    def test_matmul_close_on_float_data(self):
        rng = np.random.default_rng(3)
        args = _random_updates(rng)
        expected = _apply(kernels.loop_class_update, *args)
        actual = _apply(kernels.matmul_class_update, *args)
        np.testing.assert_allclose(actual, expected, rtol=1e-5, atol=1e-5)

    def test_matmul_column_blocking_bit_identical(self):
        # Blocking splits output columns, not the reduction axis, so a
        # blocked matmul must match the one-shot matmul exactly.
        rng = np.random.default_rng(4)
        args = _random_updates(rng, dimension=1337)
        one_shot = _apply(kernels.matmul_class_update, *args,
                          col_block=10_000)
        blocked = _apply(kernels.matmul_class_update, *args, col_block=256)
        np.testing.assert_array_equal(blocked, one_shot)

    def test_matmul_single_mistake_exact(self):
        # One mistake per chunk (the paper's strictly-online rule) has a
        # single product per output element -- exact for any input.
        rng = np.random.default_rng(5)
        args = _random_updates(rng, wrong=1)
        expected = _apply(kernels.loop_class_update, *args)
        actual = _apply(kernels.matmul_class_update, *args)
        np.testing.assert_array_equal(actual, expected)

    def test_empty_chunk_is_noop(self):
        classes = np.ones((4, 16), dtype=np.float32)
        empty_hv = np.empty((0, 16), dtype=np.float32)
        empty_idx = np.empty(0, dtype=np.int64)
        for kernel in (kernels.scatter_class_update,
                       kernels.matmul_class_update):
            kernel(classes, empty_hv, empty_idx, empty_idx, 0.035)
        np.testing.assert_array_equal(classes, np.ones((4, 16)))

    def test_dispatcher_rejects_unknown_kernel(self):
        rng = np.random.default_rng(6)
        hv, true_labels, predicted = _random_updates(rng, wrong=4)
        classes = np.zeros((10, 512), dtype=np.float32)
        with pytest.raises(ValueError, match="unknown update kernel"):
            kernels.class_update(classes, hv, true_labels, predicted,
                                 0.035, kernel="einsum")


class TestTrainPassEquivalence:
    """The vectorized ``_train_pass`` against the reference loop."""

    @staticmethod
    def _bipolar_dataset(seed=0, samples=400, dimension=256, num_classes=5):
        rng = np.random.default_rng(seed)
        prototypes = np.where(
            rng.random((num_classes, dimension)) < 0.5, -1.0, 1.0
        )
        labels = rng.integers(0, num_classes, size=samples)
        flip = rng.random((samples, dimension)) < 0.2
        hypervectors = np.where(
            flip, -prototypes[labels], prototypes[labels]
        ).astype(np.float32)
        return hypervectors, labels

    def _fit(self, kernel, hypervectors, labels, lr):
        model = HDCClassifier(
            dimension=hypervectors.shape[1], learning_rate=lr,
            update_kernel=kernel, seed=7,
        )
        model.fit(hypervectors, labels, iterations=5, num_classes=5,
                  encoded=True)
        return model

    def test_full_fit_identical_across_kernels(self):
        # On exact-arithmetic data every kernel must reproduce the loop's
        # class_hypervectors, train_accuracy and updates bit for bit.
        hypervectors, labels = self._bipolar_dataset()
        reference = self._fit("loop", hypervectors, labels, lr=0.03125)
        for kernel in ("scatter", "matmul", "auto"):
            model = self._fit(kernel, hypervectors, labels, lr=0.03125)
            np.testing.assert_array_equal(
                model.class_hypervectors, reference.class_hypervectors
            )
            assert model.history.train_accuracy == \
                reference.history.train_accuracy
            assert model.history.updates == reference.history.updates

    def test_full_fit_scatter_identical_on_float_data(self):
        rng = np.random.default_rng(8)
        hypervectors = np.tanh(
            rng.standard_normal((300, 200))
        ).astype(np.float32)
        labels = rng.integers(0, 5, size=300)
        reference = self._fit("loop", hypervectors, labels, lr=0.035)
        model = self._fit("scatter", hypervectors, labels, lr=0.035)
        np.testing.assert_array_equal(
            model.class_hypervectors, reference.class_hypervectors
        )
        assert model.history.updates == reference.history.updates

    def test_chunk_size_one_identical_for_all_kernels(self):
        # chunk_size=1 chunks carry at most one mistake, where even the
        # matmul kernel is exact -- the strictly-online rule is preserved
        # bit for bit on arbitrary float data.
        rng = np.random.default_rng(9)
        hypervectors = rng.standard_normal((120, 128)).astype(np.float32)
        labels = rng.integers(0, 4, size=120)
        results = []
        for kernel in ("loop", "scatter", "matmul", "auto"):
            model = HDCClassifier(
                dimension=128, chunk_size=1, update_kernel=kernel, seed=3,
            )
            model.fit(hypervectors, labels, iterations=3, num_classes=4,
                      encoded=True)
            results.append(model.class_hypervectors)
        for other in results[1:]:
            np.testing.assert_array_equal(other, results[0])

    def test_invalid_kernel_rejected_at_construction(self):
        with pytest.raises(ValueError, match="update_kernel"):
            HDCClassifier(dimension=64, update_kernel="nope")


class TestIdLevelEncodeKernel:
    @staticmethod
    def _reference(id_hvs, level_hvs, level_idx):
        encoded = np.empty((len(level_idx), id_hvs.shape[1]),
                           dtype=np.float32)
        for row, idx in enumerate(level_idx):
            encoded[row] = (id_hvs * level_hvs[idx]).sum(axis=0)
        return encoded

    def test_bit_identical_to_row_loop(self):
        rng = np.random.default_rng(10)
        id_hvs = np.where(rng.random((7, 96)) < 0.5, -1.0, 1.0) \
            .astype(np.float32)
        level_hvs = np.where(rng.random((16, 96)) < 0.5, -1.0, 1.0) \
            .astype(np.float32)
        level_idx = rng.integers(0, 16, size=(53, 7))
        expected = self._reference(id_hvs, level_hvs, level_idx)
        for budget in (1, 4096, 1 << 20, 1 << 30):
            actual = kernels.id_level_encode(
                id_hvs, level_hvs, level_idx, max_chunk_bytes=budget,
            )
            np.testing.assert_array_equal(actual, expected)
