"""Tests for federated HDC: nodes, server, simulation."""

import numpy as np
import pytest

from repro.federated import (
    EdgeNode,
    FederatedConfig,
    FederatedServer,
    FederatedSimulation,
)
from repro.hdc import NonlinearEncoder


def _blobs(num_samples=300, num_features=10, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 4.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestEdgeNode:
    @pytest.fixture()
    def node(self):
        x, y = _blobs()
        encoder = NonlinearEncoder(10, 512, seed=0)
        return EdgeNode(0, x, y, encoder, num_classes=4, seed=0)

    def test_properties(self, node):
        assert node.num_samples == 300
        assert set(node.local_classes()) == {0, 1, 2, 3}
        assert node.upload_bytes() == 4 * 512 * 4

    def test_train_improves_on_global_zeros(self, node):
        updated = node.train(np.zeros((4, 512), dtype=np.float32),
                             iterations=3)
        assert updated.shape == (4, 512)
        assert np.abs(updated).sum() > 0

    def test_train_does_not_mutate_global(self, node):
        global_model = np.ones((4, 512), dtype=np.float32)
        node.train(global_model, iterations=1)
        np.testing.assert_array_equal(global_model, 1.0)

    def test_shape_validated(self, node):
        with pytest.raises(ValueError, match="shape"):
            node.train(np.zeros((4, 100), dtype=np.float32))

    def test_empty_node_rejected(self):
        encoder = NonlinearEncoder(10, 64, seed=0)
        with pytest.raises(ValueError, match="no local data"):
            EdgeNode(0, np.zeros((0, 10)), np.zeros(0, dtype=int), encoder, 4)

    def test_label_mismatch_rejected(self):
        x, y = _blobs()
        encoder = NonlinearEncoder(10, 64, seed=0)
        with pytest.raises(ValueError, match="labels"):
            EdgeNode(0, x, y[:-1], encoder, 4)


class TestServer:
    def test_weighted_average(self):
        server = FederatedServer(num_classes=2, dimension=4)
        a = np.ones((2, 4), dtype=np.float32)
        b = np.full((2, 4), 4.0, dtype=np.float32)
        out = server.aggregate([a, b], [1, 3])
        np.testing.assert_allclose(out, 0.25 * 1 + 0.75 * 4)
        assert server.rounds_completed == 1

    def test_single_node_identity(self):
        server = FederatedServer(2, 4)
        update = np.arange(8, dtype=np.float32).reshape(2, 4)
        np.testing.assert_allclose(server.aggregate([update], [5]), update)

    def test_validation(self):
        server = FederatedServer(2, 4)
        with pytest.raises(ValueError, match="no updates"):
            server.aggregate([], [])
        with pytest.raises(ValueError, match="weights"):
            server.aggregate([np.zeros((2, 4))], [1, 2])
        with pytest.raises(ValueError, match="positive"):
            server.aggregate([np.zeros((2, 4))], [0])
        with pytest.raises(ValueError, match="shape"):
            server.aggregate([np.zeros((3, 4))], [1])

    def test_broadcast_bytes(self):
        server = FederatedServer(num_classes=10, dimension=100)
        assert server.broadcast_bytes(5) == 5 * 10 * 100 * 4
        with pytest.raises(ValueError):
            server.broadcast_bytes(0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FederatedServer(1, 8)


class TestSimulation:
    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data import ucihar
        return ucihar(max_samples=1500, seed=5).normalized()

    def test_iid_converges(self, dataset):
        config = FederatedConfig(num_nodes=4, rounds=3, dimension=1024)
        result = FederatedSimulation(config, seed=5).run(dataset)
        assert len(result.round_accuracy) == 3
        assert result.final_accuracy > 0.85

    def test_non_iid_split_skews_labels(self, dataset):
        config = FederatedConfig(num_nodes=6, rounds=1, dimension=512,
                                 non_iid_alpha=0.1)
        result = FederatedSimulation(config, seed=5).run(dataset)
        # With alpha = 0.1 most nodes should miss several classes.
        assert min(result.node_class_counts) < dataset.num_classes

    def test_non_iid_still_learns(self, dataset):
        config = FederatedConfig(num_nodes=6, rounds=4, dimension=1024,
                                 non_iid_alpha=0.3)
        result = FederatedSimulation(config, seed=5).run(dataset)
        assert result.final_accuracy > 0.75

    def test_partition_is_exact(self, dataset):
        config = FederatedConfig(num_nodes=5, rounds=1, dimension=256)
        sim = FederatedSimulation(config, seed=1)
        parts = sim._split(dataset.train_y)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined,
                                      np.arange(dataset.num_train))

    def test_non_iid_partition_is_exact(self, dataset):
        config = FederatedConfig(num_nodes=5, rounds=1, dimension=256,
                                 non_iid_alpha=0.2)
        sim = FederatedSimulation(config, seed=1)
        parts = sim._split(dataset.train_y)
        combined = np.sort(np.concatenate(parts))
        np.testing.assert_array_equal(combined,
                                      np.arange(dataset.num_train))
        assert all(len(part) > 0 for part in parts)

    def test_communication_accounting(self, dataset):
        config = FederatedConfig(num_nodes=4, rounds=2, dimension=512)
        result = FederatedSimulation(config, seed=0).run(dataset)
        per_round = (result.upload_bytes_per_round
                     + result.broadcast_bytes_per_round)
        assert result.total_communication_bytes == 2 * per_round
        # Upload = broadcast: same k x d matrix each way per node.
        assert result.upload_bytes_per_round == \
            result.broadcast_bytes_per_round

    def test_more_rounds_do_not_hurt_much(self, dataset):
        config = FederatedConfig(num_nodes=4, rounds=5, dimension=1024)
        result = FederatedSimulation(config, seed=5).run(dataset)
        assert result.round_accuracy[-1] > result.round_accuracy[0] - 0.05

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_nodes=0)
        with pytest.raises(ValueError):
            FederatedConfig(non_iid_alpha=0.0)

    def test_too_many_nodes_rejected(self, dataset):
        config = FederatedConfig(num_nodes=10_000, rounds=1, dimension=64)
        with pytest.raises(ValueError, match="split"):
            FederatedSimulation(config, seed=0).run(dataset)

    def test_result_final_accuracy_requires_rounds(self):
        from repro.federated import FederatedResult
        with pytest.raises(ValueError, match="rounds"):
            FederatedResult().final_accuracy
