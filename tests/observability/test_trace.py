"""Tracer core semantics: spans, cursor, charging, splice, pickling."""

import pickle

import pytest

from repro.observability.trace import Span, Tracer, format_seconds


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0.0) == "0.000 s"

    def test_microseconds(self):
        assert format_seconds(2.5e-6) == "2.500 µs"

    def test_milliseconds(self):
        assert format_seconds(0.002) == "2.000 ms"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.500 s"

    def test_negative_follows_magnitude(self):
        assert format_seconds(-0.002) == "-2.000 ms"


class TestPhaseClock:
    def test_charge_accumulates_without_spans_when_disabled(self):
        tracer = Tracer(enabled=False)
        tracer.charge("encode", 1.0)
        tracer.charge("encode", 2.0)
        tracer.charge("update", 0.5)
        assert tracer.phase_seconds("encode") == 3.0
        assert tracer.total_charged == 3.5
        assert len(tracer) == 0
        assert not tracer

    def test_clock_identical_enabled_vs_disabled(self):
        charges = [("encode", 0.1), ("update", 0.2), ("encode", 0.3),
                   ("modelgen", 0.05)]
        on, off = Tracer(enabled=True), Tracer(enabled=False)
        for phase, seconds in charges:
            on.charge(phase, seconds)
            off.charge(phase, seconds)
        assert on.phase_totals() == off.phase_totals()
        assert on.total_charged == off.total_charged

    def test_charge_records_leaf_span_at_cursor(self):
        tracer = Tracer()
        tracer.charge("encode", 1.5, name="device.invoke", device=0)
        tracer.charge("update", 0.5)
        first, second = tracer.spans
        assert first.name == "device.invoke"
        assert (first.start_s, first.end_s) == (0.0, 1.5)
        assert first.phase == "encode"
        assert first.attrs == {"device": 0}
        assert second.name == "update"
        assert (second.start_s, second.end_s) == (1.5, 2.0)
        assert tracer.cursor_s == 2.0

    def test_charge_record_false_clock_only(self):
        tracer = Tracer()
        tracer.charge("encode", 1.0, record=False)
        assert tracer.phase_seconds("encode") == 1.0
        assert len(tracer) == 0
        assert tracer.cursor_s == 0.0


class TestStructuralSpans:
    def test_nesting_parent_ids(self):
        tracer = Tracer()
        with tracer.span("pipeline.train"):
            with tracer.span("submodel[0]"):
                tracer.charge("encode", 1.0)
            tracer.charge("update", 0.5)
        root, sub, encode, update = tracer.spans
        assert root.parent_id is None
        assert sub.parent_id == root.span_id
        assert encode.parent_id == sub.span_id
        assert update.parent_id == root.span_id
        assert root.end_s == 1.5
        assert sub.end_s == 1.0

    def test_handle_set_and_tag(self):
        tracer = Tracer()
        with tracer.span("encode", samples=4) as span:
            span.set(batch=2)
            span.tag("cache_hit")
        recorded = tracer.spans[0]
        assert recorded.attrs == {"samples": 4, "batch": 2}
        assert recorded.tags == ("cache_hit",)

    def test_disabled_span_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            span.set(a=1)
            span.tag("t")
        assert len(tracer) == 0


class TestExplicitSpans:
    def test_add_and_finish(self):
        tracer = Tracer()
        span_id = tracer.add("serve", 0.0, 0.0, requests=3)
        tracer.add("request", 0.5, 2.0, parent_id=span_id)
        tracer.finish(span_id, 2.5)
        serve = tracer.spans[0]
        assert serve.end_s == 2.5
        assert tracer.spans[1].parent_id == span_id

    def test_add_defaults_parent_to_open_structural_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add("timed", 1.0, 2.0)
        outer, timed = tracer.spans
        assert timed.parent_id == outer.span_id

    def test_add_rejects_reversed_interval(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="before it starts"):
            tracer.add("bad", 2.0, 1.0)

    def test_finish_unknown_id(self):
        tracer = Tracer()
        with pytest.raises(KeyError):
            tracer.finish(99, 1.0)

    def test_disabled_add_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.add("x", 0.0, 1.0) is None
        tracer.finish(None, 2.0)  # no-op, no raise

    def test_advance_moves_cursor(self):
        tracer = Tracer()
        tracer.advance(1.5)
        assert tracer.cursor_s == 1.5
        with pytest.raises(ValueError):
            tracer.advance(-0.1)


class TestSplice:
    def test_grafts_shifted_spans_under_wrapper(self):
        child = Tracer()
        child.charge("encode", 1.0)
        child.charge("update", 0.5)

        parent = Tracer()
        parent.charge("modelgen", 2.0)
        parent.splice(child, "submodel[0]", sub_dimension=128)

        wrapper = parent.spans[1]
        assert wrapper.name == "submodel[0]"
        assert (wrapper.start_s, wrapper.end_s) == (2.0, 3.5)
        assert wrapper.attrs == {"sub_dimension": 128}
        grafted = parent.spans[2:]
        assert [s.name for s in grafted] == ["encode", "update"]
        assert all(s.parent_id == wrapper.span_id for s in grafted)
        assert grafted[0].start_s == 2.0
        assert grafted[1].end_s == 3.5
        assert parent.cursor_s == 3.5

    def test_does_not_merge_phase_totals(self):
        child = Tracer()
        child.charge("encode", 1.0)
        parent = Tracer()
        parent.splice(child, "sub")
        assert parent.phase_seconds("encode") == 0.0

    def test_remaps_nested_parent_ids(self):
        child = Tracer()
        with child.span("inner"):
            child.charge("encode", 1.0)
        parent = Tracer()
        parent.splice(child, "wrap")
        wrap, inner, encode = parent.spans
        assert inner.parent_id == wrap.span_id
        assert encode.parent_id == inner.span_id
        assert len({s.span_id for s in parent.spans}) == 3

    def test_disabled_either_side_is_noop(self):
        child = Tracer(enabled=True)
        child.charge("encode", 1.0)
        parent = Tracer(enabled=False)
        parent.splice(child, "sub")
        assert len(parent) == 0


class TestPickling:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.charge("encode", 1.0, device=0)
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone.phase_totals() == tracer.phase_totals()
        assert [s.to_dict() for s in clone.spans] == \
            [s.to_dict() for s in tracer.spans]


class TestSpanDataclass:
    def test_dict_round_trip(self):
        span = Span(span_id=3, parent_id=1, name="device.invoke",
                    start_s=0.5, end_s=1.5, phase="inference",
                    attrs={"device": 2}, tags=("retry",))
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration_s == 1.0
