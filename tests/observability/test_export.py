"""Exporter schemas: JSONL round trip, Chrome trace_event, flamegraph."""

import json

from repro.observability.export import (
    flamegraph,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.trace import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline.train", samples=8):
        tracer.charge("encode", 1.0, name="device.invoke", device=0,
                      batch=8, tags=("cache_hit",))
        tracer.charge("update", 0.5, name="host.update")
    return tracer


class TestJsonl:
    def test_round_trip_exact(self):
        tracer = _sample_tracer()
        assert read_jsonl(to_jsonl(tracer)) == tracer.spans

    def test_one_line_per_span(self):
        tracer = _sample_tracer()
        assert len(to_jsonl(tracer).splitlines()) == len(tracer.spans)

    def test_file_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer, path)
        assert count == len(tracer.spans)
        assert read_jsonl(path) == tracer.spans

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl(Tracer(), path) == 0
        assert read_jsonl(path.read_text()) == []


class TestChromeTrace:
    def test_structure(self):
        document = to_chrome_trace(_sample_tracer())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 3
        assert {e["name"] for e in metadata} == {"thread_name"}

    def test_microsecond_timestamps(self):
        events = to_chrome_trace(_sample_tracer())["traceEvents"]
        invoke = next(e for e in events if e["name"] == "device.invoke")
        assert invoke["ts"] == 0.0
        assert invoke["dur"] == 1e6  # 1.0 s

    def test_device_spans_get_their_own_track(self):
        events = to_chrome_trace(_sample_tracer())["traceEvents"]
        invoke = next(e for e in events if e["name"] == "device.invoke")
        update = next(e for e in events if e["name"] == "host.update")
        assert invoke["tid"] == 1
        assert update["tid"] == 0
        names = {e["tid"]: e["args"]["name"] for e in events
                 if e["ph"] == "M"}
        assert names == {0: "host", 1: "device 0"}

    def test_args_carry_attrs_and_tags(self):
        events = to_chrome_trace(_sample_tracer())["traceEvents"]
        invoke = next(e for e in events if e["name"] == "device.invoke")
        assert invoke["args"]["batch"] == 8
        assert invoke["args"]["tags"] == ["cache_hit"]
        assert invoke["cat"] == "encode"

    def test_written_file_is_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_sample_tracer(), path)
        parsed = json.loads(path.read_text())
        assert len(parsed["traceEvents"]) == count


class TestFlamegraph:
    def test_tree_with_counts_and_shares(self):
        tracer = Tracer()
        with tracer.span("root"):
            tracer.charge("encode", 1.0, name="device.invoke")
            tracer.charge("encode", 1.0, name="device.invoke")
        text = flamegraph(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "(100.0%)" in lines[0]
        assert "device.invoke x2" in lines[1]
        assert "2.000 s" in lines[1]

    def test_empty(self):
        assert flamegraph(Tracer()) == "(empty trace)"

    def test_max_depth_truncates(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                tracer.charge("encode", 1.0, name="c")
        text = flamegraph(tracer, max_depth=2)
        assert "c" not in text.splitlines()[-1].split()[0] or \
            len(text.splitlines()) == 2
        assert len(text.splitlines()) == 2
