"""Tracing must not change a single modeled second or prediction.

The tentpole contract of the observability subsystem: enabling the
tracer is purely additive.  These tests run the same work traced and
untraced — across worker counts, pool backends, both inference paths
and the serving event loop — and assert bit-identical phase totals,
timings and predictions, plus the serving span invariants (one span per
request, device-span seconds summing to the report's busy seconds).
"""

import numpy as np
import pytest

from repro.config import PipelineConfig, ServeConfig
from repro.edgetpu.multidevice import DevicePool, FailurePlan
from repro.observability.trace import Tracer
from repro.runtime.executor import ExecutorConfig, WorkerPool
from repro.runtime.pipeline import InferencePipeline, TrainingPipeline
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer
from repro.serving.swap import ModelSwapper
from repro.hdc.bagging import BaggingConfig


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    x = rng.normal(size=(90, 18)).astype(np.float32)
    y = rng.integers(0, 3, size=90)
    return x, y


def _config(tracing, workers=1):
    return PipelineConfig(
        dimension=256, iterations=2, seed=5, tracing=tracing,
        bagging=BaggingConfig(num_models=4, dimension=256, iterations=2),
        executor=ExecutorConfig(workers=workers),
    )


class TestTrainingDeterminism:
    def test_traced_equals_untraced(self, data):
        x, y = data
        off = TrainingPipeline(_config(False)).run(x, y)
        on = TrainingPipeline(_config(True)).run(x, y)
        assert on.profiler.breakdown() == off.profiler.breakdown()
        assert on.profiler.total == off.profiler.total
        np.testing.assert_array_equal(
            on.fused.class_matrix, off.fused.class_matrix
        )
        assert off.trace is None
        assert on.trace is not None and len(on.trace.spans) > 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_invariant(self, data, workers):
        x, y = data
        serial = TrainingPipeline(_config(True, workers=1)).run(x, y)
        result = TrainingPipeline(_config(True, workers=workers)).run(x, y)
        assert result.profiler.breakdown() == serial.profiler.breakdown()
        np.testing.assert_array_equal(
            result.fused.class_matrix, serial.fused.class_matrix
        )
        # The trace itself is worker-order-invariant (task-order splice).
        assert [s.to_dict() for s in result.trace.spans] == \
            [s.to_dict() for s in serial.trace.spans]

    def test_submodel_spans_present(self, data):
        x, y = data
        result = TrainingPipeline(_config(True, workers=2)).run(x, y)
        names = [s.name for s in result.trace.spans]
        assert names.count("submodel[0]") == 1
        assert names.count("submodel[3]") == 1
        assert "pipeline.train" in names
        assert "device.invoke" in names


def _traced_task(seconds):
    """Module-level so the process backend can pickle it."""
    tracer = Tracer()
    tracer.charge("encode", seconds, name="work")
    return tracer


class TestBackendInvariance:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_task_order_merge_identical(self, backend):
        tasks = [0.25, 0.5, 0.125, 1.0]
        pool = WorkerPool(workers=2, backend=backend)
        locals_ = pool.map(_traced_task, tasks)
        merged = Tracer()
        for index, local in enumerate(locals_):
            merged.splice(local, f"task[{index}]")
        serial = Tracer()
        for index, seconds in enumerate(tasks):
            serial.splice(_traced_task(seconds), f"task[{index}]")
        assert [s.to_dict() for s in merged.spans] == \
            [s.to_dict() for s in serial.spans]


class TestInferenceDeterminism:
    @pytest.fixture(scope="class")
    def compiled(self, data):
        x, y = data
        return TrainingPipeline(
            PipelineConfig(dimension=256, iterations=2, seed=5)
        ).run(x, y).compiled

    def test_sequential_path(self, compiled, data):
        x, y = data
        off = InferencePipeline(compiled, batch=8).run(x, y)
        on = InferencePipeline(compiled, batch=8, tracing=True).run(x, y)
        assert on.seconds == off.seconds
        np.testing.assert_array_equal(on.predictions, off.predictions)
        assert off.trace is None
        assert sum(1 for s in on.trace.spans
                   if s.name == "device.invoke") == 12  # ceil(90 / 8)

    def test_dispatcher_path(self, compiled, data):
        x, y = data
        executor = ExecutorConfig(num_devices=2, micro_batch=16)
        off = InferencePipeline(compiled, executor=executor).run(x, y)
        on = InferencePipeline(compiled, executor=executor,
                               tracing=True).run(x, y)
        assert on.seconds == off.seconds
        np.testing.assert_array_equal(on.predictions, off.predictions)
        invokes = [s for s in on.trace.spans if s.name == "device.invoke"]
        assert {s.attrs["device"] for s in invokes} == {0, 1}


def _requests(x, y, rate_rps=1500.0, n=60, budget_s=0.01):
    rng = np.random.default_rng(3)
    times = np.cumsum(rng.exponential(1.0 / rate_rps, n))
    return [
        Request(request_id=i, arrival_s=float(t),
                deadline_s=float(t) + budget_s,
                features=x[i % len(x)], label=int(y[i % len(y)]))
        for i, t in enumerate(times)
    ]


class TestServingDeterminism:
    @pytest.fixture(scope="class")
    def compiled(self, data):
        x, y = data
        return TrainingPipeline(
            PipelineConfig(dimension=256, iterations=2, seed=5)
        ).run(x, y).compiled

    def _pool(self, compiled, fail=False):
        pool = DevicePool(2, compiled.arch)
        pool.load_replicated(compiled)
        if fail:
            pool.schedule_failure(FailurePlan(device_index=1, at_s=0.002))
        return pool

    def test_traced_equals_untraced(self, compiled, data):
        x, y = data
        requests = _requests(x, y)
        config_off = ServeConfig(max_batch=8, max_queue=4)
        config_on = ServeConfig(max_batch=8, max_queue=4, tracing=True)
        off = InferenceServer(self._pool(compiled, fail=True),
                              config_off).serve(requests)
        on = InferenceServer(self._pool(compiled, fail=True),
                             config_on).serve(requests)
        assert on.summary() == off.summary()
        np.testing.assert_array_equal(on.predictions, off.predictions)
        np.testing.assert_array_equal(on.latencies, off.latencies)
        assert off.trace is None

    def test_traced_equals_untraced_with_swap(self, compiled, data):
        # Hot swap commits mid-run (and now charges per-device
        # swap-load accounting); tracing must still be purely additive.
        x, y = data
        retrained = TrainingPipeline(
            PipelineConfig(dimension=256, iterations=2, seed=9)
        ).run(x, y).compiled
        gen_s = ModelSwapper(DevicePool(1)).modelgen_seconds(retrained)
        # Stretch the trace to ~3x the modelgen time so the swap
        # scheduled at t=0 commits well inside the run.
        requests = _requests(x, y, rate_rps=60 / (3 * gen_s), n=60,
                             budget_s=gen_s)

        def run(tracing):
            pool = self._pool(compiled)
            swapper = ModelSwapper(pool)
            swapper.schedule(retrained, at_s=0.0)
            server = InferenceServer(
                pool,
                ServeConfig(max_batch=8, max_queue=64, tracing=tracing),
                swapper=swapper,
            )
            return server.serve(requests)

        off, on = run(False), run(True)
        assert len(off.swap_records) == 1
        assert on.summary() == off.summary()
        assert on.device_swap_seconds == off.device_swap_seconds
        assert sum(on.device_swap_seconds) > 0
        np.testing.assert_array_equal(on.predictions, off.predictions)
        np.testing.assert_array_equal(on.latencies, off.latencies)
        assert off.trace is None
        swaps = [s for s in on.trace.spans if s.name == "model.swap"]
        assert len(swaps) == 1
        assert swaps[0].attrs["load_s"] > 0

    def test_span_per_request_including_drops(self, compiled, data):
        x, y = data
        requests = _requests(x, y)
        report = InferenceServer(
            self._pool(compiled),
            ServeConfig(max_batch=8, max_queue=4, tracing=True),
        ).serve(requests)
        assert report.dropped > 0
        request_spans = [s for s in report.trace.spans
                         if s.name == "request"]
        assert len(request_spans) == len(requests)
        dropped = [s for s in request_spans if "dropped" in s.tags]
        assert len(dropped) == report.dropped
        assert all(s.duration_s == 0.0 for s in dropped)
        ids = sorted(s.attrs["request_id"] for s in request_spans)
        assert ids == list(range(len(requests)))

    def test_device_span_seconds_equal_busy_seconds(self, compiled, data):
        x, y = data
        requests = _requests(x, y)
        report = InferenceServer(
            self._pool(compiled, fail=True),
            ServeConfig(max_batch=8, max_queue=64, tracing=True),
        ).serve(requests)
        assert report.retried_batches > 0
        per_device = [0.0] * 2
        for span in report.trace.spans:
            if span.name == "device.invoke":
                per_device[span.attrs["device"]] += span.attrs["elapsed_s"]
        assert per_device == report.device_busy_seconds

    def test_fallback_batches_traced(self, compiled, data):
        x, y = data
        requests = _requests(x, y, n=40)
        pool = DevicePool(1, compiled.arch)
        pool.load_replicated(compiled)
        pool.schedule_failure(FailurePlan(device_index=0, at_s=0.002))
        report = InferenceServer(
            pool, ServeConfig(max_batch=8, max_queue=64, tracing=True),
        ).serve(requests)
        assert report.fallback_batches > 0
        fallback = [s for s in report.trace.spans
                    if s.name == "host.fallback"]
        assert len(fallback) == report.fallback_batches
        assert all("fallback" in s.tags for s in fallback)
        detect = [s for s in report.trace.spans
                  if s.name == "device.detect"]
        assert detect and all("failure" in s.tags for s in detect)
