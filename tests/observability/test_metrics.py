"""Counters, gauges, the registry, and the histogram re-export."""

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    LatencyTracker,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("serve.requests")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_value_and_peak(self):
        gauge = Gauge("serve.queue_depth")
        assert gauge.value is None and gauge.peak is None
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2.0
        assert gauge.peak == 7.0


class TestRegistry:
    def test_lazily_creates_and_reuses(self):
        metrics = MetricsRegistry()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.gauge("b") is metrics.gauge("b")
        assert metrics.histogram("c") is metrics.histogram("c")
        assert len(metrics) == 3

    def test_summary_structure(self):
        metrics = MetricsRegistry()
        metrics.counter("serve.dropped").inc(2)
        metrics.gauge("serve.queue_depth").set(5)
        metrics.histogram("serve.latency_s").record(0.004)
        summary = metrics.summary()
        assert summary["counters"] == {"serve.dropped": 2}
        assert summary["gauges"] == {
            "serve.queue_depth": {"value": 5.0, "peak": 5.0}
        }
        assert summary["histograms"]["serve.latency_s"]["count"] == 1
        assert summary["histograms"]["serve.latency_s"]["p99_s"] == 0.004

    def test_summary_sorted_by_name(self):
        metrics = MetricsRegistry()
        metrics.counter("b").inc()
        metrics.counter("a").inc()
        assert list(metrics.summary()["counters"]) == ["a", "b"]


class TestLatencyTrackerEdges:
    def test_empty_summary(self):
        assert LatencyTracker().summary() == {"count": 0}
        assert len(LatencyTracker()) == 0

    def test_empty_statistics_raise(self):
        tracker = LatencyTracker()
        with pytest.raises(ValueError, match="no latencies"):
            tracker.percentile(50.0)
        with pytest.raises(ValueError, match="no latencies"):
            tracker.mean
        with pytest.raises(ValueError, match="no latencies"):
            tracker.max

    def test_cache_starts_invalid(self):
        # The cache protocol is "None means stale": a fresh tracker
        # must start stale, not with a cached (empty) sort that a first
        # record() would have to know to invalidate.
        assert LatencyTracker()._sorted is None

    def test_record_after_read_invalidates_cache(self):
        tracker = LatencyTracker()
        tracker.record(0.002)
        assert tracker.percentile(100.0) == 0.002
        tracker.record(0.005)
        assert tracker.percentile(100.0) == 0.005
        assert tracker.p50 == 0.002


class TestLatencyTrackerHome:
    def test_profiler_reexport_is_same_class(self):
        from repro.runtime.profiler import LatencyTracker as reexported
        assert reexported is LatencyTracker

    def test_histogram_is_latency_tracker(self):
        metrics = MetricsRegistry()
        assert isinstance(metrics.histogram("h"), LatencyTracker)
