"""Tests for the MLP baseline."""

import numpy as np
import pytest

from repro.baselines import MlpClassifier, MlpConfig
from repro.tflite import Interpreter, convert
from repro.edgetpu import compile_model


def _blobs(num_samples=400, num_features=12, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 3.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(hidden_dim=0),
        dict(learning_rate=0.0),
        dict(batch_size=0),
        dict(epochs=0),
        dict(momentum=1.0),
        dict(momentum=-0.1),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            MlpConfig(**kwargs)


class TestTraining:
    def test_learns_blobs(self):
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=32, epochs=15), seed=0)
        model.fit(x, y)
        assert model.score(x, y) > 0.9

    def test_loss_decreases(self):
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=32, epochs=10), seed=0)
        history = model.fit(x, y)
        assert history.loss[-1] < history.loss[0]

    def test_history_lengths(self):
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=16, epochs=5), seed=0)
        history = model.fit(x, y)
        assert len(history.loss) == 5
        assert len(history.train_accuracy) == 5
        assert history.flops > 0

    def test_deterministic(self):
        x, y = _blobs()
        a = MlpClassifier(MlpConfig(hidden_dim=16, epochs=3), seed=9)
        b = MlpClassifier(MlpConfig(hidden_dim=16, epochs=3), seed=9)
        a.fit(x, y)
        b.fit(x, y)
        np.testing.assert_array_equal(a.w1, b.w1)
        np.testing.assert_array_equal(a.predict(x), b.predict(x))

    def test_explicit_num_classes(self):
        x, y = _blobs(num_classes=3)
        model = MlpClassifier(MlpConfig(hidden_dim=16, epochs=2), seed=0)
        model.fit(x, y, num_classes=5)
        assert model.w2.shape[1] == 5

    def test_validation(self):
        x, y = _blobs()
        model = MlpClassifier(seed=0)
        with pytest.raises(ValueError, match="2-D"):
            model.fit(x[0], y[:1])
        with pytest.raises(ValueError, match="labels"):
            model.fit(x, y[:-1])

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            MlpClassifier().predict(np.zeros((1, 4)))

    def test_score_length_checked(self):
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=8, epochs=1), seed=0)
        model.fit(x, y)
        with pytest.raises(ValueError, match="labels"):
            model.score(x, y[:-1])


class TestCompilation:
    def test_to_network_matches_scores(self):
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=16, epochs=5), seed=0)
        model.fit(x, y)
        net = model.to_network()
        np.testing.assert_allclose(net.forward(x[:10]), model.scores(x[:10]),
                                   rtol=1e-4, atol=1e-4)

    def test_compiles_to_edge_tpu(self):
        # The stack is general: a backprop-trained network rides the same
        # quantize-and-compile path as HDC models.
        x, y = _blobs()
        model = MlpClassifier(MlpConfig(hidden_dim=32, epochs=10), seed=0)
        model.fit(x, y)
        flat = convert(model.to_network(include_argmax=True), x[:128])
        compiled = compile_model(flat)
        assert [op.kind for op in compiled.tpu_ops] == [
            "FULLY_CONNECTED", "TANH", "FULLY_CONNECTED",
        ]
        int8_acc = float(np.mean(Interpreter(flat).predict(x) == y))
        assert int8_acc > model.score(x, y) - 0.05

    def test_untrained_to_network_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            MlpClassifier().to_network()


class TestAgainstHdc:
    def test_hdc_single_pass_competitive(self, small_isolet):
        # The paper's pitch: HDC reaches competitive accuracy with far
        # simpler (single-pass-capable, gradient-free) training.
        from repro.hdc import HDCClassifier
        ds = small_isolet
        hdc = HDCClassifier(dimension=2048, seed=0)
        hdc.partial_fit(ds.train_x, ds.train_y,
                        num_classes=ds.num_classes)  # ONE pass
        mlp = MlpClassifier(MlpConfig(hidden_dim=128, epochs=1), seed=0)
        mlp.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
        # One epoch of SGD should not beat one HDC pass by a wide margin.
        assert hdc.score(ds.test_x, ds.test_y) > \
            mlp.score(ds.test_x, ds.test_y) - 0.15
