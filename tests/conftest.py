"""Shared fixtures: small, fast datasets reused across test modules."""

import numpy as np
import pytest

from repro.data import isolet, pamap2


@pytest.fixture(scope="session")
def small_isolet():
    """A small normalized ISOLET surrogate (26 classes, 617 features)."""
    return isolet(max_samples=1200, seed=7).normalized()


@pytest.fixture(scope="session")
def small_pamap2():
    """A small normalized PAMAP2 surrogate (5 classes, 27 features)."""
    return pamap2(max_samples=1000, seed=7).normalized()


@pytest.fixture()
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)
