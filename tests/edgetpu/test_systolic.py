"""Tests for the systolic-array MXU model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgetpu import SystolicArray, systolic_cycles


class TestSystolicArray:
    def test_computes_exact_matmul(self, rng):
        arr = SystolicArray(8, 8)
        w = rng.integers(-128, 128, (8, 8))
        arr.load_weights(w)
        x = rng.integers(-128, 128, (5, 8))
        y, _ = arr.matmul(x)
        np.testing.assert_array_equal(y, x @ w)

    def test_preallocated_buffers_bit_for_bit(self, rng):
        # The cycle loop reuses preallocated scratch (no per-cycle
        # vstack): outputs and cycle counts must be bit-for-bit what the
        # allocating implementation produced — the int64 product oracle
        # and the closed-form count, including saturated int8 codes.
        for rows, cols, batch in [(4, 4, 1), (8, 3, 6), (3, 9, 11),
                                  (1, 1, 3)]:
            arr = SystolicArray(rows, cols)
            w = rng.integers(-128, 128, (rows, cols)).astype(np.int8)
            arr.load_weights(w)
            x = rng.integers(-128, 128, (batch, rows)).astype(np.int8)
            x[0, :] = 127
            x[-1, :] = -128
            y, cycles = arr.matmul(x)
            assert y.dtype == np.int64
            assert y.tobytes() == (
                x.astype(np.int64) @ w.astype(np.int64)
            ).tobytes()
            assert cycles == batch + rows + cols - 2

    def test_rectangular_arrays(self, rng):
        for rows, cols in [(3, 7), (7, 3), (1, 5), (5, 1)]:
            arr = SystolicArray(rows, cols)
            w = rng.integers(-10, 10, (rows, cols))
            arr.load_weights(w)
            x = rng.integers(-10, 10, (4, rows))
            y, _ = arr.matmul(x)
            np.testing.assert_array_equal(y, x @ w)

    def test_cycle_count_matches_closed_form(self, rng):
        # batch + rows + cols - 2 for a single preloaded tile.
        for rows, cols, batch in [(1, 1, 1), (4, 4, 7), (8, 3, 5), (16, 16, 16)]:
            arr = SystolicArray(rows, cols)
            arr.load_weights(rng.integers(-5, 5, (rows, cols)))
            _, cycles = arr.matmul(rng.integers(-5, 5, (batch, rows)))
            assert cycles == batch + rows + cols - 2
            expected = systolic_cycles(rows, cols, batch, rows=rows,
                                       cols=cols) - rows
            assert cycles == expected

    def test_weight_load_cycles(self, rng):
        arr = SystolicArray(6, 4)
        assert arr.load_weights(rng.integers(-5, 5, (6, 4))) == 6

    def test_empty_batch(self, rng):
        arr = SystolicArray(4, 4)
        arr.load_weights(rng.integers(-5, 5, (4, 4)))
        y, cycles = arr.matmul(np.zeros((0, 4), dtype=np.int64))
        assert y.shape == (0, 4)
        assert cycles == 0

    def test_matmul_without_weights_raises(self):
        with pytest.raises(RuntimeError, match="load_weights"):
            SystolicArray(4, 4).matmul(np.zeros((1, 4), dtype=np.int64))

    def test_rejects_bad_tile_shape(self, rng):
        arr = SystolicArray(4, 4)
        with pytest.raises(ValueError, match="weight tile"):
            arr.load_weights(rng.integers(-5, 5, (4, 5)))

    def test_rejects_bad_input_shape(self, rng):
        arr = SystolicArray(4, 4)
        arr.load_weights(rng.integers(-5, 5, (4, 4)))
        with pytest.raises(ValueError, match="input"):
            arr.matmul(np.zeros((2, 5), dtype=np.int64))

    def test_rejects_degenerate_dims(self):
        with pytest.raises(ValueError, match="dimensions"):
            SystolicArray(0, 4)

    def test_utilization_increases_with_batch(self, rng):
        # Pipeline fill amortizes over longer batches.
        def run(batch):
            arr = SystolicArray(8, 8)
            arr.load_weights(rng.integers(-5, 5, (8, 8)))
            arr.matmul(rng.integers(-5, 5, (batch, 8)))
            return arr.utilization

        assert run(64) > run(2)

    def test_utilization_bounded(self, rng):
        arr = SystolicArray(4, 4)
        assert arr.utilization == 0.0
        arr.load_weights(rng.integers(-5, 5, (4, 4)))
        arr.matmul(rng.integers(-5, 5, (32, 4)))
        assert 0.0 < arr.utilization <= 1.0

    def test_int8_range_exact(self, rng):
        # Extreme int8 values: accumulation must stay exact in int64.
        arr = SystolicArray(16, 4)
        w = np.full((16, 4), 127, dtype=np.int64)
        arr.load_weights(w)
        x = np.full((2, 16), -128, dtype=np.int64)
        y, _ = arr.matmul(x)
        np.testing.assert_array_equal(y, x @ w)

    @given(
        rows=st.integers(1, 10),
        cols=st.integers(1, 10),
        batch=st.integers(1, 12),
        seed=st.integers(0, 999),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_correct_and_cycle_exact(self, rows, cols, batch, seed):
        rng = np.random.default_rng(seed)
        arr = SystolicArray(rows, cols)
        w = rng.integers(-128, 128, (rows, cols))
        arr.load_weights(w)
        x = rng.integers(-128, 128, (batch, rows))
        y, cycles = arr.matmul(x)
        np.testing.assert_array_equal(y, x @ w)
        assert cycles == batch + rows + cols - 2


class TestSystolicCycles:
    def test_single_tile(self):
        assert systolic_cycles(64, 64, 1, rows=64, cols=64) == \
            64 + (64 + 64 - 2) + 1

    def test_tiling_rounds_up(self):
        # 65 input features on a 64-row array needs 2 row tiles.
        one = systolic_cycles(64, 64, 10, include_fill=False)
        two = systolic_cycles(65, 64, 10, include_fill=False)
        assert two == 2 * one

    def test_batch_scaling_is_linear_steady_state(self):
        a = systolic_cycles(640, 640, 1, include_fill=False)
        b = systolic_cycles(640, 640, 100, include_fill=False)
        assert b == 100 * a

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            systolic_cycles(0, 4, 1)
        with pytest.raises(ValueError):
            systolic_cycles(4, 4, 0)

    def test_wide_hdc_layer_cycles(self):
        # The paper's encoder layer on MNIST: 784 x 10000 at batch 1.
        cycles = systolic_cycles(784, 10_000, 1)
        # 13 row tiles x 157 col tiles = 2041 tiles -> about 2.2k cycles.
        assert 2000 < cycles < 2500
