"""Tests for the Edge TPU compiler."""

import numpy as np
import pytest

from repro.edgetpu import (
    CompileError,
    EdgeTpuArch,
    compile_model,
    is_op_supported,
)
from repro.tflite import FlatModel, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric


def _hdc_like_model(rng, n=100, d=512, k=10, argmax=True):
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-40.0, 40.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    fc1 = FullyConnectedOp.from_float(
        rng.standard_normal((n, d)).astype(np.float32), in_qp, hid_qp,
        name="encode")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(
        rng.standard_normal((d, k)).astype(np.float32) * 0.05,
        tanh.output_qparams, out_qp, name="classify")
    ops = [fc1, tanh, fc2]
    if argmax:
        ops.append(ArgmaxOp(out_qp, name="argmax"))
    return FlatModel("hdc", TensorSpec("input", (n,), in_qp), ops)


class TestOpSupport:
    def test_fc_supported(self, rng):
        model = _hdc_like_model(rng)
        assert is_op_supported(model.ops[0])

    def test_tanh_supported(self, rng):
        model = _hdc_like_model(rng)
        assert is_op_supported(model.ops[1])

    def test_argmax_unsupported(self, rng):
        model = _hdc_like_model(rng)
        assert not is_op_supported(model.ops[3])


class TestPartition:
    def test_argmax_falls_back_to_cpu(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        assert [op.kind for op in compiled.tpu_ops] == [
            "FULLY_CONNECTED", "TANH", "FULLY_CONNECTED",
        ]
        assert [op.kind for op in compiled.cpu_ops] == ["ARGMAX"]
        assert not compiled.fully_mapped

    def test_scores_model_fully_mapped(self, rng):
        compiled = compile_model(_hdc_like_model(rng, argmax=False))
        assert compiled.fully_mapped

    def test_unmappable_model_raises(self, rng):
        qp = qparams_asymmetric(-1.0, 1.0)
        model = FlatModel("bad", TensorSpec("input", (4,), qp),
                          [ArgmaxOp(qp)])
        with pytest.raises(CompileError, match="unsupported"):
            compile_model(model)


class TestBufferAccounting:
    def test_small_model_fits(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        assert compiled.fits_on_chip
        assert compiled.streamed_bytes_per_invoke == 0

    def test_oversized_model_streams(self, rng):
        tiny_arch = EdgeTpuArch(parameter_buffer_bytes=1024)
        compiled = compile_model(_hdc_like_model(rng), tiny_arch)
        assert not compiled.fits_on_chip
        assert compiled.streamed_bytes_per_invoke == \
            compiled.weight_bytes - 1024

    def test_paper_scale_models_fit(self, rng):
        # All five Table-I inference models (n*d + d*k int8) fit in 8 MiB
        # at d = 10000 — the reason the paper's single fused model avoids
        # model-switch overheads.
        from repro.data import TABLE_I
        for spec in TABLE_I.values():
            weight_bytes = (spec.num_features * 10_000
                            + 10_000 * spec.num_classes)
            assert weight_bytes <= EdgeTpuArch().parameter_buffer_bytes

    def test_weight_bytes_counts_tpu_ops_only(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        expected = sum(op.weight_bytes for op in compiled.tpu_ops)
        assert compiled.weight_bytes == expected


class TestLatencyPlan:
    def test_invoke_seconds_positive_and_monotone_in_batch(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        t1 = compiled.invoke_seconds(1)
        t64 = compiled.invoke_seconds(64)
        assert 0 < t1 < t64

    def test_batch_amortizes_overhead(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        per_sample_b1 = compiled.invoke_seconds(1)
        per_sample_b256 = compiled.invoke_seconds(256) / 256
        assert per_sample_b256 < per_sample_b1

    def test_invoke_floor_is_dispatch_overhead(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        assert compiled.invoke_seconds(1) > compiled.arch.invoke_overhead_s

    def test_streaming_penalty_visible(self, rng):
        model = _hdc_like_model(rng)
        fits = compile_model(model)
        streams = compile_model(model, EdgeTpuArch(parameter_buffer_bytes=0))
        assert streams.invoke_seconds(1) > fits.invoke_seconds(1)

    def test_load_seconds_scale_with_model_size(self, rng):
        small = compile_model(_hdc_like_model(rng, d=128))
        large = compile_model(_hdc_like_model(rng, d=4096))
        assert large.load_seconds() > small.load_seconds()

    def test_compute_cycles_scale_with_dims(self, rng):
        small = compile_model(_hdc_like_model(rng, d=128))
        large = compile_model(_hdc_like_model(rng, d=4096))
        assert large.compute_cycles(1) > small.compute_cycles(1)

    def test_rejects_zero_batch(self, rng):
        compiled = compile_model(_hdc_like_model(rng))
        with pytest.raises(ValueError, match="batch"):
            compiled.invoke_seconds(0)

    def test_tpu_io_bytes(self, rng):
        compiled = compile_model(_hdc_like_model(rng, n=100, d=512, k=10))
        assert compiled.tpu_input_bytes == 100
        assert compiled.tpu_output_bytes == 10  # scores, pre-argmax

    def test_summary_mentions_partition(self, rng):
        text = compile_model(_hdc_like_model(rng)).summary()
        assert "ARGMAX" in text and "TPU" in text


class TestArch:
    def test_peak_tops_near_4(self):
        assert 3.5 < EdgeTpuArch().peak_tops < 4.5

    def test_transfer_time(self):
        arch = EdgeTpuArch(usb_bytes_per_s=100.0)
        assert arch.transfer_time(200) == pytest.approx(2.0)

    def test_cycles_to_seconds(self):
        arch = EdgeTpuArch(clock_hz=1000.0)
        assert arch.cycles_to_seconds(500) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeTpuArch(mxu_rows=0)
        with pytest.raises(ValueError):
            EdgeTpuArch(clock_hz=0)
        with pytest.raises(ValueError):
            EdgeTpuArch().transfer_time(-1)
        with pytest.raises(ValueError):
            EdgeTpuArch().cycles_to_seconds(-1)
