"""Tests for the pluggable backend framework.

Covers the registry, cross-backend bit-identity of the int8 kernels,
trace-exactness of every backend's lowering, systolic-geometry
properties (hypothesis), and end-to-end serve determinism on a
non-default geometry.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.edgetpu import (
    AcceleratorArch,
    EdgeTpuArch,
    EdgeTpuDevice,
    HostCpuArch,
    NeuromorphicArch,
    backend_names,
    compile_model,
    lower,
    make_arch,
    register_backend,
)
from repro.edgetpu.systolic import SystolicArray
from repro.tflite import FlatModel, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric

BACKENDS = ("edgetpu", "edgetpu-small", "neuromorphic", "pi-cpu")


def _model(rng, n=40, d=256, k=5):
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-40.0, 40.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    fc1 = FullyConnectedOp.from_float(
        rng.standard_normal((n, d)).astype(np.float32), in_qp, hid_qp,
        name="encode")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(
        rng.standard_normal((d, k)).astype(np.float32) * 0.05,
        tanh.output_qparams, out_qp, name="classify")
    return FlatModel("hdc", TensorSpec("input", (n,), in_qp),
                     [fc1, tanh, fc2, ArgmaxOp(out_qp)])


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        for name in BACKENDS:
            assert name in names

    def test_make_arch_types(self):
        assert isinstance(make_arch("edgetpu"), EdgeTpuArch)
        assert isinstance(make_arch("neuromorphic"), NeuromorphicArch)
        assert isinstance(make_arch("pi-cpu"), HostCpuArch)

    def test_make_arch_defaults_are_stock(self):
        assert make_arch("edgetpu") == EdgeTpuArch()

    def test_make_arch_overrides(self):
        arch = make_arch("edgetpu", mxu_rows=32, mxu_cols=32)
        assert (arch.mxu_rows, arch.mxu_cols) == (32, 32)

    def test_small_preset(self):
        arch = make_arch("edgetpu-small")
        assert isinstance(arch, EdgeTpuArch)
        assert (arch.mxu_rows, arch.mxu_cols) == (32, 32)

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            make_arch("not-a-backend")

    def test_reregister_requires_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("edgetpu", EdgeTpuArch)

    def test_describe_has_backend_key(self):
        for name in BACKENDS:
            payload = make_arch(name).describe()
            assert payload["backend"] == (
                "edgetpu" if name == "edgetpu-small" else name
            )
            json.dumps(payload)  # JSON-ready

    def test_all_archs_are_accelerator_archs(self):
        for name in BACKENDS:
            assert isinstance(make_arch(name), AcceleratorArch)


class TestCrossBackendBitIdentity:
    """The int8 kernels are shared; only the cost model differs."""

    @pytest.fixture()
    def flat(self, rng):
        return _model(rng)

    @pytest.fixture()
    def batch(self, rng):
        return rng.standard_normal((8, 40)).astype(np.float32)

    def test_outputs_identical_across_backends(self, flat, batch):
        outputs = {}
        for name in BACKENDS:
            compiled = compile_model(flat, make_arch(name))
            device = EdgeTpuDevice(compiled.arch)
            device.load_model(compiled)
            quantized = flat.input_spec.qparams.quantize(batch)
            outputs[name] = device.invoke(quantized).outputs
        reference = outputs["edgetpu"]
        for name in BACKENDS[1:]:
            np.testing.assert_array_equal(outputs[name], reference)

    def test_latency_models_differ(self, flat):
        seconds = {
            name: compile_model(flat, make_arch(name)).invoke_seconds(8)
            for name in BACKENDS
        }
        assert len(set(seconds.values())) == len(BACKENDS)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_lowering_is_trace_exact(self, flat, name):
        compiled = compile_model(flat, make_arch(name))
        for batch in (1, 7, 64):
            program = lower(compiled, batch=batch)
            assert program.total_cycles == pytest.approx(
                compiled.compute_cycles(batch)
            )
            assert program.seconds() == pytest.approx(
                compiled.invoke_seconds(batch)
            )


def _tiled_matmul(x, weights, rows, cols):
    """Drive a full matmul through (rows x cols) systolic tiles."""
    k, n = weights.shape
    out = np.zeros((x.shape[0], n), dtype=np.int64)
    for r0 in range(0, k, rows):
        for c0 in range(0, n, cols):
            tile = np.zeros((rows, cols), dtype=np.int64)
            block = weights[r0:r0 + rows, c0:c0 + cols]
            tile[:block.shape[0], :block.shape[1]] = block
            xin = np.zeros((x.shape[0], rows), dtype=np.int64)
            xin[:, :min(rows, k - r0)] = x[:, r0:r0 + rows]
            array = SystolicArray(rows, cols)
            array.load_weights(tile)
            y, _ = array.matmul(xin)
            out[:, c0:c0 + cols] += y[:, :block.shape[1]]
    return out


class TestSystolicGeometryProperties:
    @given(
        rows=st.integers(min_value=1, max_value=24),
        cols=st.integers(min_value=1, max_value=24),
        batch=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_geometry_matches_reference(self, rows, cols, batch,
                                            seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-128, 128, (rows, cols), dtype=np.int64)
        x = rng.integers(-128, 128, (batch, rows), dtype=np.int64)
        array = SystolicArray(rows, cols)
        array.load_weights(weights)
        y, cycles = array.matmul(x)
        np.testing.assert_array_equal(y, x @ weights)
        assert cycles == (batch + rows + cols - 2 if batch else 0)

    @given(
        k=st.integers(min_value=1, max_value=96),
        n=st.integers(min_value=1, max_value=96),
        batch=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_tiling_is_geometry_invariant(self, k, n, batch, seed):
        rng = np.random.default_rng(seed)
        weights = rng.integers(-128, 128, (k, n), dtype=np.int64)
        x = rng.integers(-128, 128, (batch, k), dtype=np.int64)
        reference = x @ weights
        for rows, cols in ((64, 64), (32, 32), (16, 48)):
            np.testing.assert_array_equal(
                _tiled_matmul(x, weights, rows, cols), reference
            )


class TestSmallGeometryEndToEnd:
    def test_32x32_serve_is_bit_deterministic(self, rng):
        from repro.serving import (
            ArrivalProcess,
            InferenceServer,
            RequestStream,
            ServeConfig,
        )
        from repro.data.streams import DriftingStream, StreamConfig
        from repro.edgetpu.multidevice import DevicePool

        flat = _model(rng, n=16, d=128, k=3)
        compiled = compile_model(flat, make_arch("edgetpu-small"))
        stream = DriftingStream(
            StreamConfig(num_features=16, num_classes=3,
                         drift_rate=0.0),
            seed=5,
        )
        trace = list(RequestStream(
            stream, ArrivalProcess(500.0, "poisson", seed=9),
            deadline_s=0.05,
        ).generate(200))

        def run():
            pool = DevicePool(2, compiled.arch)
            pool.load_replicated(compiled)
            server = InferenceServer(
                pool, config=ServeConfig(max_batch=8)
            )
            return server.serve(trace)

        first, second = run(), run()
        np.testing.assert_array_equal(first.predictions,
                                      second.predictions)
        assert json.dumps(first.summary(), sort_keys=True) == \
            json.dumps(second.summary(), sort_keys=True)
        assert sum(first.device_energy_j) > 0
