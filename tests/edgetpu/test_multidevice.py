"""Tests for the multi-accelerator device pool."""

import numpy as np
import pytest

from repro.data import isolet
from repro.edgetpu import DevicePool, compile_model
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_classifier
from repro.tflite import convert


@pytest.fixture(scope="module")
def ensemble():
    ds = isolet(max_samples=800, seed=7).normalized()
    config = BaggingConfig(num_models=3, dimension=768, iterations=2,
                           dataset_ratio=0.6)
    trainer = BaggingHDCTrainer(config, seed=0)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    compiled = [
        compile_model(convert(from_classifier(model), ds.train_x[:128]))
        for model in trainer.sub_models
    ]
    return ds, trainer, compiled


class TestDevicePool:
    def test_construction(self):
        pool = DevicePool(4)
        assert pool.num_devices == 4
        with pytest.raises(ValueError):
            DevicePool(0)

    def test_load_models(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(3)
        slowest = pool.load_models(compiled)
        assert slowest > 0
        assert slowest == max(pool.load_seconds)

    def test_too_many_models_rejected(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(2)
        with pytest.raises(ValueError, match="devices"):
            pool.load_models(compiled)

    def test_empty_load_rejected(self):
        with pytest.raises(ValueError, match="no models"):
            DevicePool(2).load_models([])

    def test_invoke_before_load(self):
        pool = DevicePool(2)
        with pytest.raises(RuntimeError, match="load_models"):
            pool.invoke_ensemble(np.zeros((1, 4), dtype=np.float32))

    def test_parallel_scores_match_serial_ensemble(self, ensemble):
        ds, trainer, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        x = ds.test_x[:32]
        result = pool.invoke_ensemble(x)
        # Predictions should agree with the float ensemble consensus on
        # the vast majority of samples (int8 grids differ slightly).
        float_pred = trainer.predict(x)
        pool_pred = np.argmax(result.scores, axis=1)
        assert np.mean(pool_pred == float_pred) > 0.85

    def test_makespan_is_slowest_device(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        result = pool.invoke_ensemble(ds.test_x[:8])
        assert result.makespan_s == max(result.device_seconds)
        assert len(result.device_seconds) == 3

    def test_host_aggregation_cost_hook(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        calls = []

        def cost(elements):
            calls.append(elements)
            return 0.5

        result = pool.invoke_ensemble(ds.test_x[:4], cost)
        assert result.host_seconds == 0.5
        assert calls == [2 * 4 * 26]  # (M-1) * batch * classes
        assert result.total_seconds == pytest.approx(
            result.makespan_s + 0.5
        )

    def test_load_replicated(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        slowest = pool.load_replicated(compiled[0])
        assert slowest > 0
        assert slowest == max(pool.load_seconds)
        assert len(pool.models) == 3
        assert all(model is compiled[0] for model in pool.models)
        # Every device answers with the same outputs as a lone device.
        quantized = compiled[0].model.input_spec.qparams.quantize(
            ds.test_x[:4]
        )
        outputs = [d.invoke(quantized).outputs for d in pool.devices]
        for out in outputs[1:]:
            np.testing.assert_array_equal(out, outputs[0])

    def test_rejects_1d_batch(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        with pytest.raises(ValueError, match="2-D"):
            pool.invoke_ensemble(np.zeros(617, dtype=np.float32))
