"""Tests for the multi-accelerator device pool."""

import numpy as np
import pytest

from repro.data import isolet
from repro.edgetpu import DevicePool, compile_model
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_classifier
from repro.tflite import convert


@pytest.fixture(scope="module")
def ensemble():
    ds = isolet(max_samples=800, seed=7).normalized()
    config = BaggingConfig(num_models=3, dimension=768, iterations=2,
                           dataset_ratio=0.6)
    trainer = BaggingHDCTrainer(config, seed=0)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    compiled = [
        compile_model(convert(from_classifier(model), ds.train_x[:128]))
        for model in trainer.sub_models
    ]
    return ds, trainer, compiled


class TestDevicePool:
    def test_construction(self):
        pool = DevicePool(4)
        assert pool.num_devices == 4
        with pytest.raises(ValueError):
            DevicePool(0)

    def test_load_models(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(3)
        slowest = pool.load_models(compiled)
        assert slowest > 0
        assert slowest == max(pool.load_seconds)

    def test_too_many_models_rejected(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(2)
        with pytest.raises(ValueError, match="devices"):
            pool.load_models(compiled)

    def test_empty_load_rejected(self):
        with pytest.raises(ValueError, match="no models"):
            DevicePool(2).load_models([])

    def test_invoke_before_load(self):
        pool = DevicePool(2)
        with pytest.raises(RuntimeError, match="load_models"):
            pool.invoke_ensemble(np.zeros((1, 4), dtype=np.float32))

    def test_parallel_scores_match_serial_ensemble(self, ensemble):
        ds, trainer, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        x = ds.test_x[:32]
        result = pool.invoke_ensemble(x)
        # Predictions should agree with the float ensemble consensus on
        # the vast majority of samples (int8 grids differ slightly).
        float_pred = trainer.predict(x)
        pool_pred = np.argmax(result.scores, axis=1)
        assert np.mean(pool_pred == float_pred) > 0.85

    def test_makespan_is_slowest_device(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        result = pool.invoke_ensemble(ds.test_x[:8])
        assert result.makespan_s == max(result.device_seconds)
        assert len(result.device_seconds) == 3

    def test_host_aggregation_cost_hook(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        calls = []

        def cost(elements):
            calls.append(elements)
            return 0.5

        result = pool.invoke_ensemble(ds.test_x[:4], cost)
        assert result.host_seconds == 0.5
        assert calls == [2 * 4 * 26]  # (M-1) * batch * classes
        assert result.total_seconds == pytest.approx(
            result.makespan_s + 0.5
        )

    def test_load_replicated(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(3)
        slowest = pool.load_replicated(compiled[0])
        assert slowest > 0
        assert slowest == max(pool.load_seconds)
        assert len(pool.models) == 3
        assert all(model is compiled[0] for model in pool.models)
        # Every device answers with the same outputs as a lone device.
        quantized = compiled[0].model.input_spec.qparams.quantize(
            ds.test_x[:4]
        )
        outputs = [d.invoke(quantized).outputs for d in pool.devices]
        for out in outputs[1:]:
            np.testing.assert_array_equal(out, outputs[0])

    def test_rejects_1d_batch(self, ensemble):
        _, _, compiled = ensemble
        pool = DevicePool(3)
        pool.load_models(compiled)
        with pytest.raises(ValueError, match="2-D"):
            pool.invoke_ensemble(np.zeros(617, dtype=np.float32))


class TestFailureInjection:
    def _quantized(self, ds, compiled, n=4):
        return compiled.model.input_spec.qparams.quantize(ds.test_x[:n])

    def test_failure_plan_validation(self):
        from repro.edgetpu import FailurePlan
        with pytest.raises(ValueError, match="device_index"):
            FailurePlan(device_index=-1, at_s=1.0)
        with pytest.raises(ValueError, match="at_s"):
            FailurePlan(device_index=0, at_s=-0.5)
        with pytest.raises(ValueError, match="mode"):
            FailurePlan(device_index=0, at_s=1.0, mode="meteor_strike")
        with pytest.raises(ValueError, match="detect_seconds"):
            FailurePlan(device_index=0, at_s=1.0, detect_seconds=-1.0)

    def test_healthy_invoke_passes_through(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(2)
        pool.load_replicated(compiled[0])
        quantized = self._quantized(ds, compiled[0])
        result = pool.try_invoke(0, quantized, at_s=0.0)
        np.testing.assert_array_equal(
            result.outputs, pool.devices[1].invoke(quantized).outputs
        )
        assert pool.healthy_indices() == [0, 1]

    def test_armed_plan_trips_at_time(self, ensemble):
        from repro.edgetpu import DeviceFailedError, FailurePlan
        ds, _, compiled = ensemble
        pool = DevicePool(2)
        pool.load_replicated(compiled[0])
        pool.schedule_failure(FailurePlan(0, at_s=1.0, mode="usb_stall"))
        quantized = self._quantized(ds, compiled[0])
        # Before the trip time the device still answers.
        pool.try_invoke(0, quantized, at_s=0.5)
        with pytest.raises(DeviceFailedError) as info:
            pool.try_invoke(0, quantized, at_s=1.2)
        assert info.value.device_index == 0
        assert info.value.mode == "usb_stall"
        assert info.value.detect_seconds == pytest.approx(0.05)
        assert pool.failed == {0}
        assert pool.healthy_indices() == [1]
        assert pool.models[0] is None  # tripped device is unloaded

    def test_already_failed_raises_without_detect_cost(self, ensemble):
        from repro.edgetpu import DeviceFailedError, FailurePlan
        ds, _, compiled = ensemble
        pool = DevicePool(1)
        pool.load_replicated(compiled[0])
        pool.schedule_failure(FailurePlan(0, at_s=0.0, mode="device_loss"))
        quantized = self._quantized(ds, compiled[0])
        with pytest.raises(DeviceFailedError) as first:
            pool.try_invoke(0, quantized, at_s=0.1)
        assert first.value.detect_seconds == 0.0
        with pytest.raises(DeviceFailedError) as again:
            pool.try_invoke(0, quantized, at_s=0.2)
        assert again.value.detect_seconds == 0.0

    def test_custom_detect_seconds(self, ensemble):
        from repro.edgetpu import DeviceFailedError, FailurePlan
        ds, _, compiled = ensemble
        pool = DevicePool(1)
        pool.load_replicated(compiled[0])
        pool.schedule_failure(
            FailurePlan(0, at_s=0.0, mode="usb_stall", detect_seconds=0.2)
        )
        with pytest.raises(DeviceFailedError) as info:
            pool.try_invoke(0, self._quantized(ds, compiled[0]), at_s=0.0)
        assert info.value.detect_seconds == pytest.approx(0.2)

    def test_unload_and_reload(self, ensemble):
        ds, _, compiled = ensemble
        pool = DevicePool(2)
        pool.load_replicated(compiled[0])
        pool.unload(0)
        assert pool.models[0] is None
        load_s = pool.reload(0, compiled[1])
        assert load_s > 0
        assert pool.models[0] is compiled[1]

    def test_reload_refuses_failed_device(self, ensemble):
        from repro.edgetpu import DeviceFailedError, FailurePlan
        ds, _, compiled = ensemble
        pool = DevicePool(2)
        pool.load_replicated(compiled[0])
        pool.schedule_failure(FailurePlan(1, at_s=0.0, mode="device_loss"))
        with pytest.raises(DeviceFailedError):
            pool.try_invoke(1, self._quantized(ds, compiled[0]), at_s=0.0)
        with pytest.raises(RuntimeError, match="failed"):
            pool.reload(1, compiled[0])

    def test_load_replicated_skips_failed(self, ensemble):
        from repro.edgetpu import DeviceFailedError, FailurePlan
        ds, _, compiled = ensemble
        pool = DevicePool(2)
        pool.load_replicated(compiled[0])
        pool.schedule_failure(FailurePlan(0, at_s=0.0, mode="device_loss"))
        with pytest.raises(DeviceFailedError):
            pool.try_invoke(0, self._quantized(ds, compiled[0]), at_s=0.0)
        pool.load_replicated(compiled[1])
        assert pool.models[0] is None
        assert pool.models[1] is compiled[1]
