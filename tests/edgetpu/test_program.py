"""Tests for instruction-level lowering (device disassembly)."""

import numpy as np
import pytest

from repro.edgetpu import EdgeTpuArch, compile_model, lower
from repro.tflite import FlatModel, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric


def _model(rng, n=100, d=512, k=10):
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-40.0, 40.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    fc1 = FullyConnectedOp.from_float(
        rng.standard_normal((n, d)).astype(np.float32), in_qp, hid_qp,
        name="encode")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(
        rng.standard_normal((d, k)).astype(np.float32) * 0.05,
        tanh.output_qparams, out_qp, name="classify")
    return FlatModel("hdc", TensorSpec("input", (n,), in_qp),
                     [fc1, tanh, fc2, ArgmaxOp(out_qp)])


class TestLower:
    @pytest.fixture()
    def compiled(self, rng):
        return compile_model(_model(rng))

    def test_cycle_totals_match_plan_exactly(self, compiled):
        for batch in (1, 7, 64):
            program = lower(compiled, batch=batch)
            assert program.total_cycles == pytest.approx(
                compiled.compute_cycles(batch)
            )

    def test_seconds_match_invoke_seconds(self, compiled):
        for batch in (1, 16):
            program = lower(compiled, batch=batch)
            assert program.seconds() == pytest.approx(
                compiled.invoke_seconds(batch)
            )

    def test_transfer_bytes(self, compiled):
        program = lower(compiled, batch=4)
        assert program.total_transfer_bytes == \
            4 * compiled.tpu_input_bytes + 4 * compiled.tpu_output_bytes

    def test_instruction_mix(self, compiled, rng):
        program = lower(compiled, batch=1)
        arch = compiled.arch
        # 100 x 512 -> 2 x 8 tiles, 512 x 10 -> 8 x 1 tiles.
        row1 = -(-100 // arch.mxu_rows)
        col1 = -(-512 // arch.mxu_cols)
        row2 = -(-512 // arch.mxu_rows)
        assert program.count("MATMUL") == row1 * col1 + row2 * 1
        assert program.count("ACTIVATE") == 1
        assert program.count("DMA_IN") == 1
        assert program.count("DMA_OUT") == 1
        assert program.count("PIPE_FILL") == 2  # one per dense layer

    def test_streaming_instruction_when_oversized(self, rng):
        compiled = compile_model(_model(rng),
                                 EdgeTpuArch(parameter_buffer_bytes=1024))
        program = lower(compiled, batch=1)
        assert program.count("STREAM_WEIGHTS") == 1

    def test_no_streaming_when_fits(self, compiled):
        assert lower(compiled, batch=1).count("STREAM_WEIGHTS") == 0

    def test_disassembly_readable(self, compiled):
        text = lower(compiled, batch=2).disassembly()
        assert "MATMUL" in text
        assert "encode" in text and "classify" in text
        assert "batch=2" in text

    def test_rejects_bad_batch(self, compiled):
        with pytest.raises(ValueError, match="batch"):
            lower(compiled, batch=0)

    def test_hidden_tile_loads_cost_nothing(self, compiled):
        program = lower(compiled, batch=1)
        hidden = [inst for inst in program.instructions
                  if inst.opcode == "LOAD_TILE" and "hidden" in inst.operand]
        assert hidden and all(inst.cycles == 0 for inst in hidden)
        exposed = [inst for inst in program.instructions
                   if inst.opcode == "LOAD_TILE" and "hidden" not in inst.operand]
        assert all(inst.cycles == compiled.arch.mxu_rows for inst in exposed)

    def test_instructions_are_typed(self, compiled):
        from repro.edgetpu.program import Instruction, Program
        assert Program.__annotations__["instructions"] == "list[Instruction]"
        program = lower(compiled, batch=3)
        assert all(isinstance(inst, Instruction)
                   for inst in program.instructions)


class TestLowerMemoization:
    @pytest.fixture()
    def compiled(self, rng):
        # Multi-tile: 100 x 512 spans 2 x 8 MXU tiles, 512 x 10 spans 8.
        return compile_model(_model(rng))

    def test_lower_is_memoized_per_batch(self, compiled):
        assert lower(compiled, batch=4) is lower(compiled, batch=4)
        assert lower(compiled, batch=4) is not lower(compiled, batch=5)

    def test_distinct_compilations_do_not_share(self, rng):
        a = compile_model(_model(rng))
        b = compile_model(_model(rng))
        assert lower(a, batch=2) is not lower(b, batch=2)

    def test_seconds_match_memoized_invoke_seconds(self, compiled):
        # invoke_seconds is itself memoized per batch; the cached
        # Program's seconds() must agree exactly with both the first
        # (computing) and second (cache-hit) calls, for a multi-tile
        # model.
        for batch in (1, 7, 32):
            first = compiled.invoke_seconds(batch)
            again = compiled.invoke_seconds(batch)
            assert first == again
            program = lower(compiled, batch=batch)
            assert program.seconds() == pytest.approx(first)
            assert lower(compiled, batch=batch).seconds() == \
                pytest.approx(first)
