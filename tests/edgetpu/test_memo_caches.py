"""Bounded memo caches on compiled models: reuse, eviction, exactness."""

import numpy as np
import pytest

from repro.edgetpu import EdgeTpuDevice, compile_model
from repro.edgetpu.compiler import _MEMO_CACHE_SIZE
from repro.edgetpu.program import _PROGRAM_CACHE_SIZE, lower
from tests.edgetpu.test_compiler import _hdc_like_model


@pytest.fixture()
def compiled(rng):
    return compile_model(_hdc_like_model(rng))


class TestStageReuse:
    """Satellite: fused stages are built once per compiled model."""

    def test_same_object_across_calls(self, compiled):
        assert compiled.stages() is compiled.stages()

    def test_shared_across_pool_devices(self, compiled):
        a = EdgeTpuDevice(arch=compiled.arch)
        b = EdgeTpuDevice(arch=compiled.arch)
        a.load_model(compiled)
        b.load_model(compiled)
        x = np.zeros((4, compiled.model.input_spec.size), dtype=np.int8)
        out_a = a.invoke(x)
        out_b = b.invoke(x)
        np.testing.assert_array_equal(out_a.outputs, out_b.outputs)
        assert compiled.stages() is compiled.stages()

    def test_rebuilds_when_op_chain_replaced(self, compiled):
        first = compiled.stages()
        # Replacing the list object (same ops) changes identity, so the
        # cache must rebuild rather than serve a stale chain.
        compiled.tpu_ops = list(compiled.tpu_ops)
        again = compiled.stages()
        assert again is compiled.stages()
        assert len(again) == len(first)


class TestMemoEviction:
    """Satellite: LRU-bounded memos recompute bit-identically."""

    def test_invoke_seconds_survive_eviction(self, compiled):
        batches = range(1, _MEMO_CACHE_SIZE + 20)
        first = {b: compiled.invoke_seconds(b) for b in batches}
        # The sweep evicted the oldest entries; recomputing them must
        # give the exact same floats (the plan is pure).
        for b in batches:
            assert compiled.invoke_seconds(b) == first[b]

    def test_breakdown_survives_eviction(self, compiled):
        batches = range(1, _MEMO_CACHE_SIZE + 20)
        first = {b: dict(compiled.invoke_breakdown(b)) for b in batches}
        for b in batches:
            assert compiled.invoke_breakdown(b) == first[b]

    def test_breakdown_cache_is_bounded(self, compiled):
        for b in range(1, _MEMO_CACHE_SIZE * 3):
            compiled.invoke_breakdown(b)
        assert len(compiled.__dict__["_breakdown_cache"]) \
            == _MEMO_CACHE_SIZE

    def test_seconds_equal_breakdown_sum(self, compiled):
        for b in (1, 7, 64, 200):
            assert compiled.invoke_seconds(b) == \
                sum(compiled.invoke_breakdown(b).values())

    def test_lower_survives_eviction(self, compiled):
        batches = range(1, _PROGRAM_CACHE_SIZE + 8)
        first = {b: lower(compiled, b) for b in batches}
        for b in batches:
            again = lower(compiled, b)
            assert [str(i) for i in again.instructions] \
                == [str(i) for i in first[b].instructions]
        assert len(compiled.__dict__["_program_cache"]) \
            == _PROGRAM_CACHE_SIZE

    def test_lower_hit_returns_same_object(self, compiled):
        assert lower(compiled, 4) is lower(compiled, 4)
