"""Tests for the Edge TPU device simulator and delegate."""

import numpy as np
import pytest

from repro.edgetpu import (
    DelegatedExecutor,
    EdgeTpuArch,
    EdgeTpuDevice,
    compile_model,
    partition,
)
from repro.tflite import FlatModel, Interpreter, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric


@pytest.fixture()
def hdc_model(rng):
    n, d, k = 40, 256, 5
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-25.0, 25.0)
    out_qp = qparams_asymmetric(-20.0, 20.0)
    fc1 = FullyConnectedOp.from_float(
        rng.standard_normal((n, d)).astype(np.float32), in_qp, hid_qp,
        name="encode")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(
        rng.standard_normal((d, k)).astype(np.float32) * 0.05,
        tanh.output_qparams, out_qp, name="classify")
    return FlatModel("hdc", TensorSpec("input", (n,), in_qp),
                     [fc1, tanh, fc2, ArgmaxOp(out_qp, name="argmax")])


class TestDevice:
    def test_invoke_without_model_raises(self):
        with pytest.raises(RuntimeError, match="load_model"):
            EdgeTpuDevice().invoke(np.zeros((1, 4), dtype=np.int8))

    def test_load_returns_positive_time(self, hdc_model):
        device = EdgeTpuDevice()
        seconds = device.load_model(compile_model(hdc_model))
        assert seconds > 0
        assert device.stats.models_loaded == 1

    def test_arch_mismatch_rejected(self, hdc_model):
        compiled = compile_model(hdc_model, EdgeTpuArch(mxu_rows=32, mxu_cols=32))
        with pytest.raises(ValueError, match="different EdgeTpuArch"):
            EdgeTpuDevice().load_model(compiled)

    def test_outputs_match_reference_interpreter(self, hdc_model, rng):
        # Bit-identical execution: the device runs the TPU prefix ops;
        # compare to the reference interpreter's intermediate result.
        compiled = compile_model(hdc_model)
        device = EdgeTpuDevice()
        device.load_model(compiled)
        x = rng.uniform(-3, 3, (16, 40)).astype(np.float32)
        xq = hdc_model.input_spec.qparams.quantize(x)
        result = device.invoke(xq)
        expected = xq
        for op in compiled.tpu_ops:
            expected = op.run(expected)
        np.testing.assert_array_equal(result.outputs, expected)

    def test_invoke_timing_breakdown_sums(self, hdc_model, rng):
        device = EdgeTpuDevice()
        device.load_model(compile_model(hdc_model))
        xq = np.zeros((4, 40), dtype=np.int8)
        result = device.invoke(xq)
        assert result.elapsed_s == pytest.approx(sum(result.breakdown.values()))
        assert set(result.breakdown) == {
            "overhead", "input_transfer", "weight_streaming", "compute",
            "output_transfer",
        }

    def test_stats_accumulate(self, hdc_model):
        device = EdgeTpuDevice()
        device.load_model(compile_model(hdc_model))
        device.invoke(np.zeros((4, 40), dtype=np.int8))
        device.invoke(np.zeros((2, 40), dtype=np.int8))
        assert device.stats.invocations == 2
        assert device.stats.samples == 6
        assert device.stats.busy_seconds > 0
        assert device.stats.bytes_out == 6 * 5

    def test_input_validation(self, hdc_model):
        device = EdgeTpuDevice()
        device.load_model(compile_model(hdc_model))
        with pytest.raises(TypeError, match="int8"):
            device.invoke(np.zeros((1, 40), dtype=np.float32))
        with pytest.raises(ValueError, match="2-D"):
            device.invoke(np.zeros(40, dtype=np.int8))
        with pytest.raises(ValueError, match="width"):
            device.invoke(np.zeros((1, 41), dtype=np.int8))
        with pytest.raises(ValueError, match="empty"):
            device.invoke(np.zeros((0, 40), dtype=np.int8))

    def test_energy_scales_with_busy_time(self, hdc_model):
        device = EdgeTpuDevice()
        device.load_model(compile_model(hdc_model))
        e0 = device.energy_joules()
        device.invoke(np.zeros((64, 40), dtype=np.int8))
        assert device.energy_joules() > e0


class TestDelegatedExecutor:
    def test_predictions_bit_identical_to_interpreter(self, hdc_model, rng):
        executor = DelegatedExecutor(compile_model(hdc_model))
        x = rng.uniform(-3, 3, (32, 40)).astype(np.float32)
        np.testing.assert_array_equal(
            executor.predict(x), Interpreter(hdc_model).predict(x)
        )

    def test_cpu_and_tpu_time_accounted(self, hdc_model, rng):
        executor = DelegatedExecutor(compile_model(hdc_model))
        executor.predict(rng.uniform(-3, 3, (8, 40)).astype(np.float32))
        assert executor.tpu_seconds > 0
        assert executor.cpu_seconds > 0  # the argmax fallback
        assert executor.total_seconds == pytest.approx(
            executor.tpu_seconds + executor.cpu_seconds
        )

    def test_custom_cpu_cost_hook(self, hdc_model, rng):
        calls = []

        def cost(op, batch, width):
            calls.append((op.kind, batch, width))
            return 1.0

        executor = DelegatedExecutor(compile_model(hdc_model),
                                     cpu_op_seconds=cost)
        executor.predict(rng.uniform(-3, 3, (8, 40)).astype(np.float32))
        assert calls == [("ARGMAX", 8, 5)]
        assert executor.cpu_seconds == 1.0

    def test_model_load_recorded(self, hdc_model):
        executor = DelegatedExecutor(compile_model(hdc_model))
        assert executor.model_load_seconds > 0

    def test_single_sample_roundtrip(self, hdc_model, rng):
        executor = DelegatedExecutor(compile_model(hdc_model))
        x = rng.uniform(-3, 3, 40).astype(np.float32)
        out = executor.run(x)
        assert np.isscalar(out) or out.shape == ()

    def test_scores_model_returns_float(self, hdc_model, rng):
        scores_model = FlatModel("scores", hdc_model.input_spec,
                                 hdc_model.ops[:-1])
        executor = DelegatedExecutor(compile_model(scores_model))
        out = executor.run(rng.uniform(-3, 3, (4, 40)).astype(np.float32))
        assert out.shape == (4, 5)
        assert out.dtype == np.float32


class TestPartitionHelper:
    def test_partition_shapes(self, hdc_model):
        tpu_ops, cpu_ops = partition(hdc_model)
        assert len(tpu_ops) == 3
        assert len(cpu_ops) == 1
