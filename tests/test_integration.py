"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import isolet, load
from repro.edgetpu import DelegatedExecutor, compile_model, lower
from repro.hdc import BaggingConfig, HDCClassifier
from repro.nn import from_classifier
from repro.runtime import InferencePipeline, TrainingPipeline
from repro.tflite import FlatModel, Interpreter, convert


class TestFullStack:
    """The complete paper workflow, end to end, on one dataset."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        ds = isolet(max_samples=1200, seed=21).normalized()
        pipeline = TrainingPipeline(
            dimension=1024,
            bagging=BaggingConfig(num_models=4, dimension=1024,
                                  iterations=3, dataset_ratio=0.6),
            seed=21,
        )
        result = pipeline.run(ds.train_x, ds.train_y,
                              num_classes=ds.num_classes)
        path = tmp_path_factory.mktemp("integration") / "model.rtfl"
        result.inference_model.save(path)
        return ds, result, path

    def test_trained_accuracy(self, artifacts):
        ds, result, _ = artifacts
        assert result.fused.score(ds.test_x, ds.test_y) > 0.75

    def test_saved_model_deploys_identically(self, artifacts):
        ds, result, path = artifacts
        restored = FlatModel.load(path)
        original = Interpreter(result.inference_model).predict(ds.test_x)
        reloaded = Interpreter(restored).predict(ds.test_x)
        np.testing.assert_array_equal(original, reloaded)

    def test_three_execution_paths_bit_identical(self, artifacts):
        # Reference interpreter, delegated executor, inference pipeline —
        # all must produce the same predictions.
        ds, result, _ = artifacts
        reference = Interpreter(result.inference_model).predict(ds.test_x)
        delegated = DelegatedExecutor(result.compiled).predict(ds.test_x)
        piped = InferencePipeline(result.compiled, batch=16).run(
            ds.test_x
        ).predictions
        np.testing.assert_array_equal(reference, delegated)
        np.testing.assert_array_equal(reference, piped)

    def test_quantized_close_to_float(self, artifacts):
        ds, result, _ = artifacts
        float_acc = result.fused.score(ds.test_x, ds.test_y)
        quant_acc = float(np.mean(
            Interpreter(result.inference_model).predict(ds.test_x)
            == ds.test_y
        ))
        assert quant_acc > float_acc - 0.06

    def test_disassembly_consistent_with_timing(self, artifacts):
        _, result, _ = artifacts
        program = lower(result.compiled, batch=4)
        assert program.seconds() == pytest.approx(
            result.compiled.invoke_seconds(4)
        )


class TestEveryDatasetEndToEnd:
    @pytest.mark.parametrize("name", ["face", "ucihar", "mnist", "pamap2"])
    def test_train_quantize_deploy(self, name):
        ds = load(name, max_samples=700, seed=5).normalized()
        model = HDCClassifier(dimension=512, seed=5)
        model.fit(ds.train_x, ds.train_y, iterations=4,
                  num_classes=ds.num_classes)
        flat = convert(from_classifier(model, include_argmax=True),
                       ds.train_x[:128])
        compiled = compile_model(flat)
        predictions = DelegatedExecutor(compiled).predict(ds.test_x)
        accuracy = float(np.mean(predictions == ds.test_y))
        assert accuracy > model.score(ds.test_x, ds.test_y) - 0.1
        assert accuracy > 1.5 / ds.num_classes  # far better than chance


class TestDeterminismAcrossTheStack:
    def test_identical_seeds_identical_artifacts(self):
        ds = isolet(max_samples=600, seed=2).normalized()

        def build():
            pipeline = TrainingPipeline(dimension=512, iterations=2, seed=99)
            result = pipeline.run(ds.train_x, ds.train_y,
                                  num_classes=ds.num_classes)
            return result.inference_model.to_bytes()

        assert build() == build()

    def test_modeled_times_machine_independent(self):
        # Virtual-clock determinism: repeated runs charge identical time.
        ds = isolet(max_samples=600, seed=2).normalized()

        def run_seconds():
            pipeline = TrainingPipeline(dimension=512, iterations=2, seed=7)
            result = pipeline.run(ds.train_x, ds.train_y,
                                  num_classes=ds.num_classes)
            return result.profiler.total

        assert run_seconds() == run_seconds()


@given(
    n=st.integers(2, 24),
    d=st.integers(8, 96),
    k=st.integers(2, 5),
    seed=st.integers(0, 100),
)
@settings(max_examples=10, deadline=None)
def test_property_random_models_roundtrip_and_execute(n, d, k, seed):
    """Any trained model survives convert → serialize → compile → run."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, n)) * 3.0
    y = np.arange(60) % k
    x = (centers[y] + rng.standard_normal((60, n))).astype(np.float32)
    model = HDCClassifier(dimension=d, seed=seed)
    model.fit(x, y, iterations=2, num_classes=k)
    flat = convert(from_classifier(model, include_argmax=True), x)
    restored = FlatModel.from_bytes(flat.to_bytes())
    compiled = compile_model(restored)
    predictions = DelegatedExecutor(compiled).predict(x)
    assert predictions.shape == (60,)
    assert predictions.min() >= 0 and predictions.max() < k
