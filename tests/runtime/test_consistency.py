"""Cross-validation: the analytic cost model vs the functional pipeline.

The runtime figures (5/6/10) come from the analytic ``CostModel``; the
functional ``TrainingPipeline``/``InferencePipeline`` charge time from
the same platform primitives while actually executing the simulated
device.  If the two ever disagree structurally, one of them is lying —
these tests pin their agreement at a reduced (fast) shape.
"""

import numpy as np
import pytest

from repro.data import isolet
from repro.runtime import (
    CostModel,
    HdcTrainingConfig,
    InferencePipeline,
    TrainingPipeline,
    Workload,
)


@pytest.fixture(scope="module")
def setup():
    ds = isolet(max_samples=1200, seed=13).normalized()
    dimension = 1024
    pipeline = TrainingPipeline(dimension=dimension, iterations=5, seed=13)
    result = pipeline.run(ds.train_x, ds.train_y,
                          num_classes=ds.num_classes)
    workload = Workload("isolet-small", ds.num_train, ds.num_test,
                        ds.num_features, ds.num_classes)
    config = HdcTrainingConfig(dimension=dimension, iterations=5)
    return ds, result, workload, config


class TestTrainingConsistency:
    def test_encode_phase_agrees(self, setup):
        ds, result, workload, config = setup
        cm = CostModel()
        analytic = cm.tpu_encode_seconds(
            workload.num_train, workload.num_features, config.dimension,
        )
        functional = result.profiler.seconds("encode")
        # The functional path adds host dequantization; allow 2x band.
        assert analytic < functional < 2.5 * analytic

    def test_update_phase_agrees(self, setup):
        ds, result, workload, config = setup
        cm = CostModel()
        # The analytic model assumes mistake_fraction=0.2; the functional
        # pipeline charges the *actual* per-pass update counts.  They
        # should land within a small factor of each other.
        analytic = cm.update_seconds(
            workload.num_train, config.dimension, workload.num_classes,
            iterations=config.iterations, mistake_fraction=0.2,
            chunk_size=64,
        )
        functional = result.profiler.seconds("update")
        assert 0.2 * analytic < functional < 5 * analytic

    def test_modelgen_phase_agrees(self, setup):
        ds, result, workload, config = setup
        cm = CostModel()
        params = (
            2 * workload.num_features * config.dimension
            + config.dimension * workload.num_classes
        )
        analytic = cm.modelgen_seconds(params)
        functional = result.profiler.seconds("modelgen")
        assert 0.3 * analytic < functional < 3 * analytic


class TestInferenceConsistency:
    def test_per_sample_latency_agrees(self, setup):
        ds, result, workload, config = setup
        cm = CostModel()
        analytic = cm.tpu_inference(workload, config)
        inference = InferencePipeline(result.compiled, batch=1)
        functional = inference.run(ds.test_x).seconds
        # Same shapes, same arch: the two estimates must track closely.
        assert functional == pytest.approx(analytic, rel=0.25)

    def test_device_breakdown_dominated_by_overhead_at_batch1(self, setup):
        ds, result, _, _ = setup
        inference = InferencePipeline(result.compiled, batch=1)
        outcome = inference.run(ds.test_x[:64])
        breakdown = outcome.breakdown
        assert breakdown["overhead"] > breakdown["compute"]
        assert breakdown["overhead"] > breakdown["input_transfer"]

    def test_fig10_shape_holds_functionally(self, setup):
        # The analytic Fig. 10 ordering must also hold when measured on
        # the functional device: wider inputs -> better encode speedup.
        import numpy as np
        from repro.edgetpu import EdgeTpuDevice, compile_model
        from repro.hdc import NonlinearEncoder
        from repro.nn import encoder_network
        from repro.tflite import convert

        cm = CostModel()
        rng = np.random.default_rng(0)

        def functional_speedup(n):
            encoder = NonlinearEncoder(n, 1024, seed=0)
            data = rng.standard_normal((512, n)).astype(np.float32)
            flat = convert(encoder_network(encoder), data[:64])
            compiled = compile_model(flat)
            device = EdgeTpuDevice()
            device.load_model(compiled)
            quantized = flat.input_spec.qparams.quantize(data)
            seconds = 0.0
            for start in range(0, 512, 256):
                seconds += device.invoke(
                    quantized[start:start + 256]
                ).elapsed_s
            return cm.cpu_encode_seconds(512, n, 1024) / seconds

        assert functional_speedup(700) > functional_speedup(30)
