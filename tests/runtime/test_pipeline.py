"""Tests for the functional co-design pipelines (Fig. 1 / Fig. 3 flows)."""

import numpy as np
import pytest

from repro.hdc import BaggingConfig, HDCClassifier
from repro.runtime import InferencePipeline, TrainingPipeline
from repro.runtime.executor import ExecutorConfig
from repro.runtime.pipeline import CompileCache


@pytest.fixture(scope="module")
def ds(request):
    from repro.data import isolet
    return isolet(max_samples=900, seed=11).normalized()


class TestTrainingPipeline:
    def test_single_model_flow(self, ds):
        pipeline = TrainingPipeline(dimension=1024, iterations=4, seed=0)
        result = pipeline.run(ds.train_x, ds.train_y)
        assert len(result.classifiers) == 1
        assert result.fused.dimension == 1024
        assert result.inference_model.output_is_index
        assert result.compiled.fully_mapped is False  # argmax on CPU

    def test_phase_accounting(self, ds):
        pipeline = TrainingPipeline(dimension=1024, iterations=3, seed=0)
        result = pipeline.run(ds.train_x, ds.train_y)
        profiler = result.profiler
        assert profiler.seconds("encode") > 0
        assert profiler.seconds("update") > 0
        assert profiler.seconds("modelgen") > 0
        assert profiler.total == pytest.approx(
            sum(profiler.breakdown().values())
        )

    def test_bagged_flow(self, ds):
        config = BaggingConfig(num_models=4, dimension=1024, iterations=2)
        pipeline = TrainingPipeline(dimension=1024, bagging=config, seed=0)
        result = pipeline.run(ds.train_x, ds.train_y)
        assert len(result.classifiers) == 4
        assert all(c.dimension == 256 for c in result.classifiers)
        assert result.fused.dimension == 1024

    def test_bagged_update_cheaper_than_full(self, ds):
        full = TrainingPipeline(dimension=1024, iterations=10, seed=0)
        full_result = full.run(ds.train_x, ds.train_y)
        config = BaggingConfig(num_models=4, dimension=1024, iterations=3,
                               dataset_ratio=0.6)
        bagged = TrainingPipeline(dimension=1024, bagging=config, seed=0)
        bagged_result = bagged.run(ds.train_x, ds.train_y)
        assert bagged_result.profiler.seconds("update") < \
            full_result.profiler.seconds("update")

    def test_trained_model_accuracy(self, ds):
        pipeline = TrainingPipeline(dimension=2048, iterations=6, seed=0)
        result = pipeline.run(ds.train_x, ds.train_y)
        accuracy = result.fused.score(ds.test_x, ds.test_y)
        assert accuracy > 0.75

    def test_parallel_bagged_training_bit_identical(self, ds):
        # The executor determinism contract, through the whole pipeline:
        # same fused weights AND same phase accounting for any workers.
        config = BaggingConfig(num_models=4, dimension=512, iterations=2)
        serial = TrainingPipeline(
            dimension=512, bagging=config, seed=0,
        ).run(ds.train_x, ds.train_y)
        parallel = TrainingPipeline(
            dimension=512, bagging=config, seed=0,
            executor=ExecutorConfig(workers=4),
        ).run(ds.train_x, ds.train_y)
        np.testing.assert_array_equal(serial.fused.base_matrix,
                                      parallel.fused.base_matrix)
        np.testing.assert_array_equal(serial.fused.class_matrix,
                                      parallel.fused.class_matrix)
        assert serial.profiler.breakdown() == parallel.profiler.breakdown()
        assert parallel.parallel is not None
        assert parallel.parallel.workers == 4
        assert len(parallel.parallel.task_seconds) == 4
        assert serial.parallel.workers == 1

    def test_single_model_run_has_no_parallel_report(self, ds):
        result = TrainingPipeline(dimension=256, iterations=1, seed=0).run(
            ds.train_x[:100], ds.train_y[:100], num_classes=ds.num_classes,
        )
        assert result.parallel is None

    def test_histories_returned(self, ds):
        pipeline = TrainingPipeline(dimension=512, iterations=3, seed=0)
        result = pipeline.run(ds.train_x, ds.train_y)
        assert result.histories[0].iterations == 3

    def test_validation(self, ds):
        with pytest.raises(ValueError):
            TrainingPipeline(dimension=0)
        pipeline = TrainingPipeline(dimension=256, iterations=1, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            pipeline.run(ds.train_x[0], ds.train_y[:1])
        with pytest.raises(ValueError, match="labels"):
            pipeline.run(ds.train_x, ds.train_y[:-1])

    def test_deterministic_given_seed(self, ds):
        a = TrainingPipeline(dimension=512, iterations=2, seed=42)
        b = TrainingPipeline(dimension=512, iterations=2, seed=42)
        ra = a.run(ds.train_x, ds.train_y)
        rb = b.run(ds.train_x, ds.train_y)
        np.testing.assert_array_equal(
            ra.fused.base_matrix, rb.fused.base_matrix
        )
        np.testing.assert_array_equal(
            ra.fused.class_matrix, rb.fused.class_matrix
        )


class TestInferencePipeline:
    @pytest.fixture(scope="class")
    def trained(self, ds):
        pipeline = TrainingPipeline(dimension=2048, iterations=6, seed=0)
        return pipeline.run(ds.train_x, ds.train_y)

    def test_accuracy_close_to_float(self, ds, trained):
        inference = InferencePipeline(trained.compiled, batch=16)
        result = inference.run(ds.test_x, ds.test_y)
        float_acc = trained.fused.score(ds.test_x, ds.test_y)
        assert result.accuracy > float_acc - 0.06

    def test_predictions_match_quantized_reference(self, ds, trained):
        from repro.tflite import Interpreter
        inference = InferencePipeline(trained.compiled, batch=8)
        result = inference.run(ds.test_x)
        expected = Interpreter(trained.inference_model).predict(ds.test_x)
        np.testing.assert_array_equal(result.predictions, expected)

    def test_batch1_slower_than_batched(self, ds, trained):
        single = InferencePipeline(trained.compiled, batch=1)
        batched = InferencePipeline(trained.compiled, batch=64)
        t_single = single.run(ds.test_x[:64]).seconds
        t_batched = batched.run(ds.test_x[:64]).seconds
        assert t_single > t_batched

    def test_timing_positive_and_linear_ish(self, ds, trained):
        inference = InferencePipeline(trained.compiled, batch=1)
        t10 = inference.run(ds.test_x[:10]).seconds
        t20 = InferencePipeline(trained.compiled, batch=1).run(
            ds.test_x[:20]
        ).seconds
        assert 0 < t10 < t20

    def test_accuracy_none_without_labels(self, ds, trained):
        inference = InferencePipeline(trained.compiled, batch=16)
        assert inference.run(ds.test_x[:8]).accuracy is None

    def test_label_length_checked(self, ds, trained):
        inference = InferencePipeline(trained.compiled, batch=16)
        with pytest.raises(ValueError, match="labels"):
            inference.run(ds.test_x[:8], ds.test_y[:7])

    def test_model_load_recorded(self, trained):
        inference = InferencePipeline(trained.compiled)
        assert inference.model_load_seconds > 0

    def test_bagged_inference_same_cost_model(self, ds):
        # Paper claim: the fused bagged model adds no inference overhead
        # versus a non-bagged model of the same width.
        full = TrainingPipeline(dimension=1024, iterations=3, seed=0).run(
            ds.train_x, ds.train_y
        )
        bagged = TrainingPipeline(
            dimension=1024,
            bagging=BaggingConfig(num_models=4, dimension=1024, iterations=2),
            seed=0,
        ).run(ds.train_x, ds.train_y)
        t_full = InferencePipeline(full.compiled, batch=1).run(
            ds.test_x[:32]
        ).seconds
        t_bagged = InferencePipeline(bagged.compiled, batch=1).run(
            ds.test_x[:32]
        ).seconds
        assert t_bagged == pytest.approx(t_full, rel=0.01)


class TestAgainstCpuBaseline:
    def test_pipeline_vs_pure_cpu_accuracy(self, ds):
        # The framework's model should be about as accurate as plain
        # host-only float HDC (paper Fig. 7).
        cpu_model = HDCClassifier(dimension=1024, seed=5)
        cpu_model.fit(ds.train_x, ds.train_y, iterations=6)
        cpu_acc = cpu_model.score(ds.test_x, ds.test_y)
        result = TrainingPipeline(dimension=1024, iterations=6, seed=5).run(
            ds.train_x, ds.train_y
        )
        tpu_acc = InferencePipeline(result.compiled, batch=32).run(
            ds.test_x, ds.test_y
        ).accuracy
        assert tpu_acc > cpu_acc - 0.08


class TestBaggedFeatureSampling:
    def test_feature_sampling_path(self, ds):
        config = BaggingConfig(num_models=2, dimension=512, iterations=2,
                               feature_ratio=0.5)
        pipeline = TrainingPipeline(dimension=512, bagging=config, seed=3)
        result = pipeline.run(ds.train_x, ds.train_y)
        # Each sub-encoder must have zeroed rows for unsampled features.
        for classifier in result.classifiers:
            base = classifier.encoder.base_hypervectors
            zero_rows = int(np.sum(~base.any(axis=1)))
            assert zero_rows == ds.num_features - round(0.5 * ds.num_features)
        # The fused model still predicts sensibly.
        assert result.fused.score(ds.test_x, ds.test_y) > 0.5


class TestCompileCache:
    def test_second_run_with_identical_weights_hits_cache(self, ds):
        cache = CompileCache()
        first = TrainingPipeline(dimension=512, iterations=2, seed=42,
                                 compile_cache=cache)
        result_a = first.run(ds.train_x, ds.train_y)
        # One encoder + one inference compilation, nothing to reuse yet.
        assert cache.hits == 0
        assert cache.misses == 2
        # A fresh same-seed pipeline produces identical encoder weights
        # and (deterministically) identical inference weights -- both
        # compilations must be served from the cache.
        second = TrainingPipeline(dimension=512, iterations=2, seed=42,
                                  compile_cache=cache)
        result_b = second.run(ds.train_x, ds.train_y)
        assert cache.hits == 2
        assert cache.misses == 2
        np.testing.assert_array_equal(
            result_a.fused.class_matrix, result_b.fused.class_matrix
        )
        # The cached run skips generation cost but still pays the device
        # model load, so modelgen stays positive and strictly cheaper.
        assert 0 < result_b.profiler.seconds("modelgen") < \
            result_a.profiler.seconds("modelgen")

    def test_different_weights_miss(self, ds):
        cache = CompileCache()
        TrainingPipeline(dimension=512, iterations=1, seed=1,
                         compile_cache=cache).run(ds.train_x, ds.train_y)
        TrainingPipeline(dimension=512, iterations=1, seed=2,
                         compile_cache=cache).run(ds.train_x, ds.train_y)
        assert cache.hits == 0
        assert cache.misses == 4

    def test_key_sensitive_to_content(self, ds):
        from repro.edgetpu import EdgeTpuArch
        from repro.nn import Network
        from repro.nn.layers import Dense
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((8, 16)).astype(np.float32)
        calibration = rng.standard_normal((4, 8)).astype(np.float32)
        arch = EdgeTpuArch()
        base = CompileCache.key(
            Network(8, [Dense(weights)]), calibration, arch, "m",
        )
        bumped = weights.copy()
        bumped[0, 0] += 1.0
        assert CompileCache.key(
            Network(8, [Dense(bumped)]), calibration, arch, "m",
        ) != base
        assert CompileCache.key(
            Network(8, [Dense(weights)]), calibration * 2.0, arch, "m",
        ) != base
        assert CompileCache.key(
            Network(8, [Dense(weights)]), calibration,
            EdgeTpuArch(clock_hz=240e6), "m",
        ) != base
        assert CompileCache.key(
            Network(8, [Dense(weights)]), calibration, arch, "m",
        ) == base


class TestCostAccountingFixes:
    def test_modelgen_charge_clamped_at_zero(self):
        # Regression: a cost model whose device-load estimate exceeds its
        # full generation estimate must charge 0.0, never go negative
        # (VirtualClock.charge rejects negative seconds).
        import types
        pipeline = TrainingPipeline(dimension=64, seed=0)
        pipeline._costs = types.SimpleNamespace(
            modelgen_seconds=lambda weight_bytes: 0.01,
            tpu=types.SimpleNamespace(
                model_load_seconds=lambda weight_bytes: 0.05,
            ),
        )
        compiled = types.SimpleNamespace(weight_bytes=128)
        assert pipeline._modelgen_seconds(None, compiled) == 0.0

    def test_cpu_ops_charged_by_kind(self, ds, trained_small):
        from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
        from repro.tflite.quantization import QuantParams
        inference = InferencePipeline(trained_small.compiled, batch=8)
        host = inference.host
        qp = QuantParams(scale=0.05, zero_point=0, dtype="int8")
        argmax = ArgmaxOp(qp)
        tanh = TanhOp(qp)
        rng = np.random.default_rng(0)
        fc = FullyConnectedOp.from_float(
            rng.standard_normal((12, 5)).astype(np.float32), qp, qp,
        )
        assert inference._cpu_op_seconds(argmax, 8, 12) == \
            host.argmax_seconds(8, 12)
        assert inference._cpu_op_seconds(tanh, 8, 12) == \
            host.tanh_seconds(8 * 12)
        assert inference._cpu_op_seconds(fc, 8, 12) == \
            host.matmul_seconds(8, 12, 5)
        # An op kind without a dedicated model falls back to elementwise
        # traffic -- not to argmax, which was the original bug.
        class DequantizeOp:
            kind = "DEQUANTIZE"
        assert inference._cpu_op_seconds(DequantizeOp(), 8, 12) == \
            host.elementwise_seconds(8 * 12)
        assert inference._cpu_op_seconds(DequantizeOp(), 8, 12) != \
            host.argmax_seconds(8, 12)

    def test_argmax_tail_charge_unchanged(self, ds, trained_small):
        # The standard inference model's only CPU op *is* the argmax, so
        # the per-kind dispatch must reproduce the original charge.
        compiled = trained_small.compiled
        assert [op.kind for op in compiled.cpu_ops] == ["ARGMAX"]
        inference = InferencePipeline(compiled, batch=4)
        samples = ds.test_x[:12]
        seconds = inference.run(samples).seconds
        expected_tail = 0.0
        width = compiled.plans[-1].output_dim
        for start in range(0, len(samples), 4):
            rows = len(samples[start:start + 4])
            expected_tail += inference.host.argmax_seconds(rows, width)
        assert seconds > expected_tail


@pytest.fixture(scope="module")
def trained_small(ds):
    pipeline = TrainingPipeline(dimension=512, iterations=2, seed=9)
    return pipeline.run(ds.train_x, ds.train_y)


class TestScoresOnlyInference:
    def test_pipeline_handles_model_without_argmax(self, ds):
        from repro.edgetpu import compile_model
        from repro.nn import from_classifier
        from repro.tflite import convert
        model = HDCClassifier(dimension=512, seed=4)
        model.fit(ds.train_x, ds.train_y, iterations=3,
                  num_classes=ds.num_classes)
        flat = convert(from_classifier(model, include_argmax=False),
                       ds.train_x[:128])
        compiled = compile_model(flat)
        assert compiled.fully_mapped
        inference = InferencePipeline(compiled, batch=8)
        result = inference.run(ds.test_x, ds.test_y)
        assert result.accuracy > model.score(ds.test_x, ds.test_y) - 0.1
