"""LruCache semantics and SharedArray shared-memory handles."""

import pickle

import numpy as np
import pytest

from repro.runtime.cache import LruCache
from repro.runtime.executor import SharedArray, resolve_shared


class TestLruCache:
    def test_get_put_roundtrip(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", -1) == -1
        assert "a" in cache and len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_put_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # overwrite refreshes; b is oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_bounded(self):
        cache = LruCache(3)
        for i in range(50):
            cache.put(i, i)
        assert len(cache) == 3
        assert list(cache) == [47, 48, 49]

    def test_get_or_build(self):
        cache = LruCache(2)
        calls = []

        def build():
            calls.append(1)
            return "built"

        assert cache.get_or_build("k", build) == "built"
        assert cache.get_or_build("k", build) == "built"
        assert len(calls) == 1

    def test_caches_none_values(self):
        cache = LruCache(2)
        cache.put("k", None)
        assert "k" in cache
        assert cache.get_or_build("k", lambda: "rebuilt") is None

    def test_clear(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_validates_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            LruCache(0)


class TestSharedArray:
    def test_roundtrip_same_process(self):
        data = np.arange(24, dtype=np.float32).reshape(4, 6)
        handle = SharedArray.create(data)
        try:
            np.testing.assert_array_equal(handle.array(), data)
            assert handle.array() is handle.array()
        finally:
            handle.unlink()

    def test_pickles_by_name_not_by_buffer(self):
        data = np.zeros((256, 256), dtype=np.float64)
        handle = SharedArray.create(data)
        try:
            payload = pickle.dumps(handle)
            # The payload carries (name, shape, dtype), not the 512 KiB
            # buffer — that is the whole point of the handle.
            assert len(payload) < 1024
            attached = pickle.loads(payload)
            np.testing.assert_array_equal(attached.array(), data)
        finally:
            handle.unlink()

    def test_empty_array(self):
        handle = SharedArray.create(np.empty((0, 3), dtype=np.int8))
        try:
            assert handle.array().shape == (0, 3)
        finally:
            handle.unlink()

    def test_unlink_idempotent(self):
        handle = SharedArray.create(np.ones(3))
        handle.unlink()
        handle.unlink()  # second call is a no-op, not an error

    def test_resolve_shared(self):
        plain = np.arange(4)
        assert resolve_shared(plain) is plain
        handle = SharedArray.create(plain)
        try:
            np.testing.assert_array_equal(resolve_shared(handle), plain)
        finally:
            handle.unlink()


class TestSharedBagging:
    def test_process_backend_bit_identical(self):
        from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
        from repro.runtime.executor import ExecutorConfig

        rng = np.random.default_rng(3)
        x = rng.normal(size=(80, 10)).astype(np.float32)
        y = rng.integers(0, 3, size=80)
        config = BaggingConfig(num_models=2, sub_dimension=64,
                               iterations=2)
        seq = BaggingHDCTrainer(config, seed=11).fit(x, y)
        par = BaggingHDCTrainer(
            config, seed=11,
            executor=ExecutorConfig(workers=2, backend="process"),
        ).fit(x, y)
        for a, b in zip(seq.sub_models, par.sub_models):
            np.testing.assert_array_equal(a.class_hypervectors,
                                          b.class_hypervectors)
