"""Tests for the placement advisor (the operationalized Fig. 10)."""

import pytest

from repro.data import TABLE_I
from repro.runtime import (
    CostModel,
    HdcTrainingConfig,
    PlacementAdvisor,
    Workload,
    tpu_feature_crossover,
)


def _workload(name):
    return Workload.from_spec(TABLE_I[name])


class TestAdvisor:
    def test_pamap2_stays_on_cpu(self):
        decision = PlacementAdvisor().advise(_workload("pamap2"))
        assert decision.encode_device == "cpu"
        assert decision.inference_device == "cpu"

    def test_mnist_goes_to_tpu(self):
        decision = PlacementAdvisor().advise(_workload("mnist"))
        assert decision.encode_device == "tpu"
        assert decision.inference_device == "tpu"

    def test_all_wide_datasets_go_to_tpu(self):
        advisor = PlacementAdvisor()
        for name in ("face", "isolet", "ucihar"):
            decision = advisor.advise(_workload(name))
            assert decision.encode_device == "tpu", name
            assert decision.inference_device == "tpu", name

    def test_margin_keeps_marginal_work_on_cpu(self):
        # With a huge required margin everything stays on the CPU.
        advisor = PlacementAdvisor(margin=100.0)
        decision = advisor.advise(_workload("mnist"))
        assert decision.encode_device == "cpu"
        assert decision.inference_device == "cpu"

    def test_rejects_sub_one_margin(self):
        with pytest.raises(ValueError, match="margin"):
            PlacementAdvisor(margin=0.5)

    def test_summary_mentions_devices(self):
        text = PlacementAdvisor().advise(_workload("pamap2")).summary()
        assert "CPU" in text and "pamap2" in text


class TestBatchSelection:
    def test_unbounded_budget_picks_largest(self):
        advisor = PlacementAdvisor()
        batch = advisor.best_inference_batch(_workload("mnist"))
        assert batch == 64

    def test_tight_budget_picks_small_batch(self):
        advisor = PlacementAdvisor()
        # A ~105 us budget only fits the smallest batches (batch 1 costs
        # ~93 us, batch 2 ~101 us, batch 4 ~115 us on MNIST shapes).
        batch = advisor.best_inference_batch(
            _workload("mnist"), latency_budget_s=105e-6,
        )
        assert batch <= 2

    def test_impossible_budget_falls_back_to_min(self):
        advisor = PlacementAdvisor()
        batch = advisor.best_inference_batch(
            _workload("mnist"), latency_budget_s=1e-9,
        )
        assert batch == 1

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError, match="candidates"):
            PlacementAdvisor().best_inference_batch(
                _workload("mnist"), candidates=(),
            )


class TestCrossover:
    def test_crossover_near_paper_value(self):
        # Paper Fig. 10 shows near-breakeven around 20 features.
        crossover = tpu_feature_crossover()
        assert 5 <= crossover <= 120

    def test_pamap2_sits_at_the_crossover_mnist_far_above(self):
        # The paper measures PAMAP2 (27 features) at 1.06x — essentially
        # breakeven — so its feature count should sit *near* the
        # crossover (the advisor's margin still keeps it on the CPU),
        # while MNIST is far above it.
        crossover = tpu_feature_crossover()
        assert crossover / 3 < TABLE_I["pamap2"].num_features < 3 * crossover
        assert TABLE_I["mnist"].num_features > 5 * crossover

    def test_consistent_with_speedup(self):
        cm = CostModel()
        crossover = tpu_feature_crossover(cost_model=cm)
        assert cm.encoding_speedup(10_000, crossover) >= 1.0
        if crossover > 1:
            assert cm.encoding_speedup(10_000, crossover - 1) < 1.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="low"):
            tpu_feature_crossover(low=10, high=5)

    def test_faster_usb_lowers_crossover(self):
        from repro.edgetpu import EdgeTpuArch
        from repro.platforms import EdgeTpuPlatform
        slow = CostModel(tpu=EdgeTpuPlatform(EdgeTpuArch(usb_bytes_per_s=100e6)))
        fast = CostModel(tpu=EdgeTpuPlatform(EdgeTpuArch(usb_bytes_per_s=2e9)))
        assert tpu_feature_crossover(cost_model=fast) < \
            tpu_feature_crossover(cost_model=slow)
