"""Tests for the placement advisor (the operationalized Fig. 10)."""

import pytest

from repro.data import TABLE_I
from repro.runtime import (
    CostModel,
    HdcTrainingConfig,
    PlacementAdvisor,
    Workload,
    tpu_feature_crossover,
)


def _workload(name):
    return Workload.from_spec(TABLE_I[name])


class TestAdvisor:
    def test_pamap2_stays_on_cpu(self):
        decision = PlacementAdvisor().advise(_workload("pamap2"))
        assert decision.encode_device == "cpu"
        assert decision.inference_device == "cpu"

    def test_mnist_goes_to_tpu(self):
        decision = PlacementAdvisor().advise(_workload("mnist"))
        assert decision.encode_device == "tpu"
        assert decision.inference_device == "tpu"

    def test_all_wide_datasets_go_to_tpu(self):
        advisor = PlacementAdvisor()
        for name in ("face", "isolet", "ucihar"):
            decision = advisor.advise(_workload(name))
            assert decision.encode_device == "tpu", name
            assert decision.inference_device == "tpu", name

    def test_margin_keeps_marginal_work_on_cpu(self):
        # With a huge required margin everything stays on the CPU.
        advisor = PlacementAdvisor(margin=100.0)
        decision = advisor.advise(_workload("mnist"))
        assert decision.encode_device == "cpu"
        assert decision.inference_device == "cpu"

    def test_rejects_sub_one_margin(self):
        with pytest.raises(ValueError, match="margin"):
            PlacementAdvisor(margin=0.5)

    def test_summary_mentions_devices(self):
        text = PlacementAdvisor().advise(_workload("pamap2")).summary()
        assert "CPU" in text and "pamap2" in text


class TestBatchSelection:
    def test_unbounded_budget_picks_largest(self):
        advisor = PlacementAdvisor()
        batch = advisor.best_inference_batch(_workload("mnist"))
        assert batch == 64

    def test_tight_budget_picks_small_batch(self):
        advisor = PlacementAdvisor()
        # A ~105 us budget only fits the smallest batches (batch 1 costs
        # ~93 us, batch 2 ~101 us, batch 4 ~115 us on MNIST shapes).
        batch = advisor.best_inference_batch(
            _workload("mnist"), latency_budget_s=105e-6,
        )
        assert batch <= 2

    def test_impossible_budget_falls_back_to_min(self):
        advisor = PlacementAdvisor()
        batch = advisor.best_inference_batch(
            _workload("mnist"), latency_budget_s=1e-9,
        )
        assert batch == 1

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError, match="candidates"):
            PlacementAdvisor().best_inference_batch(
                _workload("mnist"), candidates=(),
            )


class TestCrossover:
    def test_crossover_near_paper_value(self):
        # Paper Fig. 10 shows near-breakeven around 20 features.
        crossover = tpu_feature_crossover()
        assert 5 <= crossover <= 120

    def test_pamap2_sits_at_the_crossover_mnist_far_above(self):
        # The paper measures PAMAP2 (27 features) at 1.06x — essentially
        # breakeven — so its feature count should sit *near* the
        # crossover (the advisor's margin still keeps it on the CPU),
        # while MNIST is far above it.
        crossover = tpu_feature_crossover()
        assert crossover / 3 < TABLE_I["pamap2"].num_features < 3 * crossover
        assert TABLE_I["mnist"].num_features > 5 * crossover

    def test_consistent_with_speedup(self):
        cm = CostModel()
        crossover = tpu_feature_crossover(cost_model=cm)
        assert cm.encoding_speedup(10_000, crossover) >= 1.0
        if crossover > 1:
            assert cm.encoding_speedup(10_000, crossover - 1) < 1.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="low"):
            tpu_feature_crossover(low=10, high=5)

    def test_faster_usb_lowers_crossover(self):
        from repro.edgetpu import EdgeTpuArch
        from repro.platforms import EdgeTpuPlatform
        slow = CostModel(tpu=EdgeTpuPlatform(EdgeTpuArch(usb_bytes_per_s=100e6)))
        fast = CostModel(tpu=EdgeTpuPlatform(EdgeTpuArch(usb_bytes_per_s=2e9)))
        assert tpu_feature_crossover(cost_model=fast) < \
            tpu_feature_crossover(cost_model=slow)


# ---------------------------------------------------------------------
# Fleet placement optimizer
# ---------------------------------------------------------------------

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.traffic import TenantSpec
from repro.config import BackendSpec, FleetSpec
from repro.edgetpu import compile_model
from repro.runtime.placement import PlacementOptimizer
from repro.tflite import FlatModel, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric


@pytest.fixture(scope="module")
def fleet_compiled():
    rng = np.random.default_rng(42)
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-40.0, 40.0)
    out_qp = qparams_asymmetric(-30.0, 30.0)
    fc1 = FullyConnectedOp.from_float(
        rng.standard_normal((24, 512)).astype(np.float32), in_qp,
        hid_qp, name="encode")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(
        rng.standard_normal((512, 4)).astype(np.float32) * 0.05,
        tanh.output_qparams, out_qp, name="classify")
    return compile_model(
        FlatModel("hdc", TensorSpec("input", (24,), in_qp),
                  [fc1, tanh, fc2, ArgmaxOp(out_qp)])
    )


_GROUPS = (
    BackendSpec(backend="edgetpu", count=4, unit_cost=4.0),
    BackendSpec(backend="edgetpu-small", count=4, unit_cost=1.5),
    BackendSpec(backend="pi-cpu", count=4, unit_cost=0.5),
    BackendSpec(backend="neuromorphic", count=4, unit_cost=1.0),
)

_TENANTS = (
    TenantSpec("interactive", rate_hz=900.0, deadline_s=0.02),
    TenantSpec("bursty", rate_hz=400.0, deadline_s=0.1),
    TenantSpec("background", rate_hz=100.0, deadline_s=1.0),
)


class TestPlacementOptimizer:
    def test_covers_every_tenant_sorted(self, fleet_compiled):
        placement = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, _TENANTS)
        names = [d.tenant for d in placement.decisions]
        assert names == sorted(spec.name for spec in _TENANTS)
        assert placement.feasible
        assert placement.total_devices >= len(_TENANTS)

    def test_respects_group_capacity(self, fleet_compiled):
        placement = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, _TENANTS)
        used = {}
        for decision in placement.decisions:
            used[decision.group] = (used.get(decision.group, 0)
                                    + decision.devices)
        counts = {spec.name: spec.count for spec in _GROUPS}
        for group, devices in used.items():
            assert devices <= counts[group]

    def test_capacity_exhaustion_raises(self, fleet_compiled):
        tiny = FleetSpec.single("edgetpu", count=1)
        many = tuple(
            TenantSpec(f"t{i}", rate_hz=50_000.0, deadline_s=0.005)
            for i in range(4)
        )
        with pytest.raises(ValueError, match="capacity exhausted"):
            PlacementOptimizer(tiny).place(fleet_compiled, many)

    def test_impossible_sla_marks_infeasible(self, fleet_compiled):
        placement = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, (
            TenantSpec("strict", rate_hz=100.0, deadline_s=1e-9),
        ))
        decision = placement.decisions[0]
        assert not decision.feasible
        assert not placement.feasible

    def test_describe_is_json_ready(self, fleet_compiled):
        import json
        placement = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, _TENANTS)
        json.dumps(placement.describe())
        assert "fleet placement" in placement.summary()

    @given(order=st.permutations(range(len(_GROUPS))))
    @settings(max_examples=12, deadline=None)
    def test_fleet_order_invariant(self, fleet_compiled, order):
        canonical = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, _TENANTS)
        shuffled = PlacementOptimizer(
            FleetSpec(backends=tuple(_GROUPS[i] for i in order))
        ).place(fleet_compiled, _TENANTS)
        assert shuffled.decisions == canonical.decisions

    @given(order=st.permutations(range(len(_TENANTS))))
    @settings(max_examples=6, deadline=None)
    def test_tenant_order_invariant(self, fleet_compiled, order):
        canonical = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled, _TENANTS)
        shuffled = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(fleet_compiled,
                tuple(_TENANTS[i] for i in order))
        assert shuffled.decisions == canonical.decisions

    def test_per_tenant_models(self, fleet_compiled):
        placement = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(
            fleet_compiled,
            _TENANTS[:2],
        )
        by_dict = PlacementOptimizer(
            FleetSpec(backends=_GROUPS)
        ).place(
            {spec.name: fleet_compiled for spec in _TENANTS[:2]},
            _TENANTS[:2],
        )
        assert by_dict.decisions == placement.decisions
