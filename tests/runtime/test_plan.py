"""Ahead-of-time serving plans: arenas, bucketing, zero allocations."""

import tracemalloc

import numpy as np
import pytest

from repro import native
from repro.compression.tiers import TierSpec, build_tiers, compiled_predict
from repro.config import PlanConfig
from repro.edgetpu import EdgeTpuDevice, compile_model
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.runtime.plan import ModelPlan, ServingPlan, bucket_ladder
from repro.tflite import convert
from repro.tflite.interpreter import Interpreter


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    x = rng.normal(size=(240, 16)).astype(np.float32)
    y = rng.integers(0, 4, size=240)
    return x, y


@pytest.fixture(scope="module")
def tier_set(data):
    x, y = data
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=2, dimension=512, iterations=3), seed=7,
    )
    trainer.fit(x, y)
    specs = (TierSpec("full"),
             TierSpec("compressed", "dpq", dimension=128))
    return build_tiers(trainer.fuse(), x[:96], specs=specs)


@pytest.fixture(scope="module")
def compiled(tier_set):
    return tier_set[0].compiled


def fresh_compiled(x, y, seed=9):
    clf = HDCClassifier(dimension=512, seed=seed)
    clf.fit(x, y, iterations=3)
    return compile_model(
        convert(from_classifier(clf, include_argmax=True), x[:96])
    )


def reference_predictions(compiled, x):
    """The frozen oracle path: reference ops, op by op."""
    out = compiled.model.input_spec.qparams.quantize(np.asarray(x, np.float32))
    for op in compiled.model.ops:
        out = op.run_reference(out) if hasattr(op, "run_reference") \
            else op.run(out)
    if compiled.model.output_is_index:
        return out[:, 0].astype(np.int64)
    return np.argmax(out, axis=-1).astype(np.int64)


class TestBucketLadder:
    def test_powers_of_two_plus_max(self):
        assert bucket_ladder(64) == (1, 2, 4, 8, 16, 32, 64)
        assert bucket_ladder(48) == (1, 2, 4, 8, 16, 32, 48)
        assert bucket_ladder(1) == (1,)

    def test_validates(self):
        with pytest.raises(ValueError, match="max_batch"):
            bucket_ladder(0)

    def test_no_batch_pads_more_than_2x(self):
        ladder = bucket_ladder(100)
        for n in range(1, 101):
            rows = next(r for r in ladder if r >= n)
            assert rows < 2 * n or rows == 1


class TestModelPlan:
    @pytest.mark.parametrize("allow_native", [True, False])
    def test_bit_identical_to_reference(self, compiled, data, allow_native):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(32),
                         allow_native=allow_native)
        for n in (1, 3, 17, 32):
            np.testing.assert_array_equal(
                np.array(plan.predict(x[:n])),
                reference_predictions(compiled, x[:n]),
            )

    def test_native_flag_matches_module(self, compiled):
        plan = ModelPlan(compiled, (8,))
        assert plan.native == native.available()
        assert ModelPlan(compiled, (8,), allow_native=False).native is False

    def test_padding_rows_are_invisible(self, compiled, data):
        # A 3-row batch runs in the 4-row bucket; the padded row's
        # output never leaks into the sliced predictions.
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(8))
        q = plan.stage(x[:3])
        assert q.shape[0] == 4
        out = plan.predict(x[:3])
        assert out.shape == (3,)
        np.testing.assert_array_equal(
            np.array(out), reference_predictions(compiled, x[:3])
        )

    def test_executor_through_device_invoke(self, compiled, data):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(16))
        device = EdgeTpuDevice(arch=compiled.arch)
        device.load_model(compiled)
        q = plan.stage(x[:16])
        plain = device.invoke(q.copy())
        arena = device.invoke(q, executor=plan.executor_for(16))
        np.testing.assert_array_equal(plain.outputs, arena.outputs)
        assert arena.elapsed_s == plain.elapsed_s

    def test_predict_returns_view(self, compiled, data):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(8))
        first = plan.predict(x[:4])
        kept = np.array(first)
        second = plan.predict(x[4:8])
        # Same buffer, new contents: callers must copy to persist.
        assert first.base is second.base
        np.testing.assert_array_equal(
            np.array(second), reference_predictions(compiled, x[4:8])
        )
        assert not np.array_equal(kept, np.array(second))

    def test_oversized_batch_rejected(self, compiled, data):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(8))
        with pytest.raises(ValueError, match="exceeds"):
            plan.predict(x[:9])

    def test_for_model_matches_interpreter(self, compiled, data):
        x, _ = data
        interp = Interpreter(compiled.model)
        plan = interp.plan(16)
        for n in (1, 5, 16):
            np.testing.assert_array_equal(
                np.array(plan.predict(x[:n])), interp.predict(x[:n])
            )


class TestZeroAllocation:
    """Satellite: steady-state invokes allocate nothing (tracemalloc)."""

    def _steady_state_peak(self, plan, x, repeats=20):
        plan.predict(x)  # warm every lazy path (gemm operands, views)
        plan.predict(x)
        tracemalloc.start()
        try:
            plan.predict(x)
            baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(repeats):
                out = plan.predict(x)
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert out is not None
        return max(peak - baseline, current - baseline)

    @pytest.mark.parametrize("allow_native", [True, False])
    def test_full_width_plan_is_allocation_free(self, compiled, data,
                                                allow_native):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(32),
                         allow_native=allow_native)
        # Any real regression re-allocates a per-stage array: the f64
        # codes buffer alone is 32 * 512 * 8 = 128 KiB per invoke.
        # Transient Python objects (slice views, closures) stay well
        # under this.
        assert self._steady_state_peak(plan, x[:32]) < 8 * 1024

    def test_compressed_tier_plan_is_allocation_free(self, tier_set, data):
        x, _ = data
        degraded = tier_set[1].compiled
        plan = ModelPlan(degraded, bucket_ladder(32))
        assert self._steady_state_peak(plan, x[:32]) < 8 * 1024
        np.testing.assert_array_equal(
            np.array(plan.predict(x[:32])),
            reference_predictions(degraded, x[:32]),
        )

    def test_mixed_bucket_steady_state(self, compiled, data):
        # Alternating bucket sizes stays allocation-free too: every
        # bucket's views were bound at build time.
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(32))
        for n in (32, 7, 1, 16):
            plan.predict(x[:n])
        tracemalloc.start()
        try:
            for n in (32, 7, 1, 16):
                plan.predict(x[:n])
            baseline = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
            for _ in range(10):
                for n in (32, 7, 1, 16):
                    plan.predict(x[:n])
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert max(peak - baseline, current - baseline) < 8 * 1024


class TestServingPlan:
    def test_prewarm_fills_latency_memos(self, compiled):
        plan = ServingPlan([compiled], max_bucket=16)
        # Every bucket's invoke_seconds was computed at build time and
        # comes back as the exact same float (LRU hit, no recompute).
        for rows in plan.buckets:
            first = compiled.invoke_seconds(rows)
            assert compiled.invoke_seconds(rows) == first

    def test_plan_for_identity(self, compiled, tier_set):
        degraded = tier_set[1].compiled
        plan = ServingPlan([compiled, degraded], max_bucket=8)
        assert plan.plan_for(compiled) is plan.plans[0]
        assert plan.plan_for(degraded) is plan.plans[1]
        assert plan.plan_for(object()) is None

    def test_replace_primary_rebuilds_tier0_only(self, compiled, tier_set,
                                                 data):
        x, _ = data
        degraded = tier_set[1].compiled
        plan = ServingPlan([compiled, degraded], max_bucket=8)
        old_degraded_plan = plan.plans[1]
        swapped = fresh_compiled(x, data[1])
        new_plan = plan.replace_primary(swapped)
        assert plan.plans[0] is new_plan
        assert plan.plans[1] is old_degraded_plan
        assert plan.plan_for(compiled) is None
        np.testing.assert_array_equal(
            np.array(new_plan.predict(x[:8])),
            reference_predictions(swapped, x[:8]),
        )

    def test_empty_tiers_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ServingPlan([], max_bucket=8)


class TestCompiledPredictPlanRouting:
    def test_model_plan_route(self, compiled, data):
        x, _ = data
        plan = ModelPlan(compiled, bucket_ladder(16))
        np.testing.assert_array_equal(
            compiled_predict(compiled, x, plan=plan),
            compiled_predict(compiled, x),
        )

    def test_serving_plan_route_and_fallback(self, compiled, tier_set,
                                             data):
        x, _ = data
        plan = ServingPlan([compiled], max_bucket=16)
        np.testing.assert_array_equal(
            compiled_predict(compiled, x, plan=plan),
            compiled_predict(compiled, x),
        )
        # A model the plan does not serve falls back to the classic path.
        foreign = tier_set[1].compiled
        np.testing.assert_array_equal(
            compiled_predict(foreign, x, plan=plan),
            compiled_predict(foreign, x),
        )


class TestPlanConfig:
    def test_defaults(self):
        config = PlanConfig()
        assert config.max_bucket is None
        assert config.native is True
        assert config.prewarm is True

    def test_validates(self):
        with pytest.raises(ValueError, match="max_bucket"):
            PlanConfig(max_bucket=0)
