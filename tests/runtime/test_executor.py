"""Tests for the parallel execution layer (worker pool + dispatcher)."""

import numpy as np
import pytest

from repro.data import isolet
from repro.edgetpu import DevicePool, EdgeTpuDevice, compile_model
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.nn import from_classifier, from_fused
from repro.platforms import MobileCpu
from repro.runtime import PhaseProfiler
from repro.runtime.executor import (
    ExecutorConfig,
    MicroBatchDispatcher,
    ParallelReport,
    WorkerPool,
    simulate_makespan,
    spawn_rngs,
)
from repro.tflite import convert


def _square(value):
    return value * value


class TestExecutorConfig:
    def test_defaults_are_sequential_single_device(self):
        config = ExecutorConfig()
        assert config.workers == 1
        assert config.backend == "thread"
        assert config.micro_batch is None
        assert config.num_devices == 1
        assert config.placement == "replicate"

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0),
        dict(backend="fiber"),
        dict(micro_batch=0),
        dict(num_devices=0),
        dict(placement="mirror"),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValueError):
            ExecutorConfig(**kwargs)

    def test_coerce(self):
        assert ExecutorConfig.coerce(None) == ExecutorConfig()
        assert ExecutorConfig.coerce(4).workers == 4
        config = ExecutorConfig(workers=2)
        assert ExecutorConfig.coerce(config) is config
        with pytest.raises(TypeError):
            ExecutorConfig.coerce("four")


class TestSpawnRngs:
    def test_children_are_deterministic(self):
        a = [rng.standard_normal(4) for rng in spawn_rngs(7, 3)]
        b = [rng.standard_normal(4) for rng in spawn_rngs(7, 3)]
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 2)
        assert not np.array_equal(children[0].standard_normal(8),
                                  children[1].standard_normal(8))

    def test_generator_root_advances(self):
        root = np.random.default_rng(3)
        first = [rng.standard_normal(2) for rng in spawn_rngs(root, 2)]
        second = [rng.standard_normal(2) for rng in spawn_rngs(root, 2)]
        assert not np.array_equal(first[0], second[0])

    def test_seed_sequence_root(self):
        seq = np.random.SeedSequence(5)
        a = [rng.standard_normal(2) for rng in spawn_rngs(seq, 2)]
        b = [rng.standard_normal(2) for rng in spawn_rngs(np.random.SeedSequence(5), 2)]
        np.testing.assert_array_equal(a[0], b[0])

    def test_rejects_zero_children(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)


class TestSimulateMakespan:
    def test_one_worker_is_serial_sum(self):
        assert simulate_makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_equal_tasks_split_evenly(self):
        assert simulate_makespan([1.0] * 4, 4) == 1.0
        assert simulate_makespan([1.0] * 4, 2) == 2.0

    def test_greedy_assignment(self):
        # Tasks [3, 1, 1, 1] on 2 lanes: 3 | 1+1+1 -> makespan 3.
        assert simulate_makespan([3.0, 1.0, 1.0, 1.0], 2) == 3.0

    def test_empty(self):
        assert simulate_makespan([], 4) == 0.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            simulate_makespan([1.0], 0)
        with pytest.raises(ValueError):
            simulate_makespan([-1.0], 2)


class TestWorkerPool:
    @pytest.mark.parametrize("workers,backend", [
        (1, "thread"), (3, "thread"), (3, "process"),
    ])
    def test_ordered_results(self, workers, backend):
        pool = WorkerPool(workers, backend)
        assert pool.map(_square, range(10)) == [v * v for v in range(10)]

    def test_report_accounting(self):
        pool = WorkerPool(2, "thread")
        pool.map(_square, range(4))
        report = pool.last_report
        assert isinstance(report, ParallelReport)
        assert len(report.task_seconds) == 4
        assert report.serial_seconds >= report.makespan_seconds
        assert report.speedup >= 1.0
        assert report.wall_seconds > 0

    def test_serial_backend_label(self):
        pool = WorkerPool(1, "process")
        pool.map(_square, [2])
        assert pool.last_report.backend == "serial"

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, "greenlet")


@pytest.fixture(scope="module")
def fused_setup():
    """A trained fused model + its compiled forms, on a small ISOLET."""
    ds = isolet(max_samples=600, seed=7).normalized()
    config = BaggingConfig(num_models=3, dimension=768, iterations=2)
    trainer = BaggingHDCTrainer(config, seed=0)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    fused = trainer.fuse()
    calibration = ds.train_x[:128]
    fused_compiled = compile_model(convert(from_fused(fused), calibration))
    shard_compiled = [
        compile_model(convert(from_classifier(model), calibration))
        for model in trainer.sub_models
    ]
    return ds, fused, fused_compiled, shard_compiled


class TestMicroBatchDispatcherReplicated:
    def test_predictions_match_single_device(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        x = ds.test_x[:64]
        device = EdgeTpuDevice()
        device.load_model(fused_compiled)
        quantized = fused_compiled.model.input_spec.qparams.quantize(x)
        out = device.invoke(quantized).outputs
        for op in fused_compiled.cpu_ops:
            out = op.run(out)
        expected = out[:, 0] if fused_compiled.model.output_is_index \
            else np.argmax(out, axis=-1)

        pool = DevicePool(3)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=16)
        result = dispatcher.dispatch(x)
        np.testing.assert_array_equal(result.predictions, expected)
        assert result.num_batches == 4
        assert result.samples == 64

    def test_overlap_beats_serial(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(3)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
        result = dispatcher.dispatch(ds.test_x[:64])
        assert result.makespan_seconds < result.serial_seconds
        assert result.speedup > 1.0
        assert result.throughput > 0

    def test_more_devices_more_throughput(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup

        def throughput(num_devices):
            pool = DevicePool(num_devices)
            pool.load_replicated(fused_compiled)
            dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
            return dispatcher.dispatch(ds.test_x[:96]).throughput

        assert throughput(4) > throughput(1)

    def test_accuracy_and_profiler(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        profiler = PhaseProfiler()
        pool = DevicePool(2)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=16,
                                          profiler=profiler)
        result = dispatcher.dispatch(ds.test_x[:64], ds.test_y[:64])
        assert 0.0 <= result.accuracy <= 1.0
        assert profiler.seconds("inference") == result.makespan_seconds

    def test_rejects_mixed_models(self, fused_setup):
        ds, _, fused_compiled, shard_compiled = fused_setup
        pool = DevicePool(2)
        pool.load_models(shard_compiled[:2])
        dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
        with pytest.raises(ValueError, match="replicated"):
            dispatcher.dispatch(ds.test_x[:8])

    def test_input_validation(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(2)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
        with pytest.raises(ValueError, match="2-D"):
            dispatcher.dispatch(np.zeros(5))
        with pytest.raises(ValueError, match="labels"):
            dispatcher.dispatch(ds.test_x[:8], ds.test_y[:5])

    def test_empty_stream_returns_zero_result(self, fused_setup):
        # An idle tick in a streaming pipeline: no samples is a valid
        # dispatch, not an error.
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(2)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
        result = dispatcher.dispatch(
            np.zeros((0, ds.test_x.shape[1]), dtype=ds.test_x.dtype)
        )
        assert result.samples == 0
        assert result.num_batches == 0
        assert result.predictions.shape == (0,)
        assert result.predictions.dtype == np.int64
        assert result.makespan_seconds == 0.0
        assert result.device_seconds == [0.0, 0.0]
        assert result.utilization == 0.0
        assert result.accuracy is None

    def test_remainder_batch(self, fused_setup):
        # 50 samples at micro_batch=16 -> 3 full batches + one of 2.
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(2)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=16)
        result = dispatcher.dispatch(ds.test_x[:50])
        assert result.num_batches == 4
        assert result.samples == 50
        assert result.predictions.shape == (50,)

    def test_micro_batch_larger_than_stream(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(3)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=256)
        result = dispatcher.dispatch(ds.test_x[:24])
        assert result.num_batches == 1
        assert result.samples == 24

    def test_micro_batch_one_matches_full_batch(self, fused_setup):
        # Bit-exactness under the finest slicing: per-sample dispatch
        # must agree with a single full-batch dispatch.
        ds, _, fused_compiled, _ = fused_setup
        x = ds.test_x[:32]
        pool = DevicePool(2)
        pool.load_replicated(fused_compiled)
        fine = MicroBatchDispatcher(pool, micro_batch=1).dispatch(x)
        full = MicroBatchDispatcher(pool, micro_batch=len(x)).dispatch(x)
        assert fine.num_batches == 32
        assert full.num_batches == 1
        np.testing.assert_array_equal(fine.predictions, full.predictions)

    def test_utilization_accounting(self, fused_setup):
        ds, _, fused_compiled, _ = fused_setup
        pool = DevicePool(3)
        pool.load_replicated(fused_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=8)
        result = dispatcher.dispatch(ds.test_x[:64])
        assert isinstance(result.device_seconds, list)
        assert len(result.device_idle_seconds) == 3
        assert all(idle >= 0.0 for idle in result.device_idle_seconds)
        assert 0.0 < result.utilization <= 1.0

    def test_unloaded_pool_rejected(self, fused_setup):
        ds, *_ = fused_setup
        dispatcher = MicroBatchDispatcher(DevicePool(2), micro_batch=8)
        with pytest.raises(RuntimeError, match="load"):
            dispatcher.dispatch(ds.test_x[:8])

    def test_bad_construction(self, fused_setup):
        with pytest.raises(ValueError, match="micro_batch"):
            MicroBatchDispatcher(DevicePool(1), micro_batch=0)
        with pytest.raises(ValueError, match="placement"):
            MicroBatchDispatcher(DevicePool(1), placement="mirror")


class TestMicroBatchDispatcherSharded:
    def test_sharded_scores_match_fused(self, fused_setup):
        # The determinism satellite: sharded device-pool scores must
        # agree with the single-device fused model within quantization
        # tolerance (both are int8 views of the same float ensemble).
        ds, fused, _, shard_compiled = fused_setup
        x = ds.test_x[:48]
        pool = DevicePool(3)
        pool.load_models(shard_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=16,
                                          placement="shard")
        result = dispatcher.dispatch(x)
        float_scores = fused.scores(x)
        # Quantization tolerance: per-shard int8 score grids.
        steps = [c.tpu_ops[-1].output_qparams.scale for c in shard_compiled]
        tolerance = sum(steps) + 0.05 * np.abs(float_scores).max()
        assert np.max(np.abs(result.scores - float_scores)) < tolerance

    def test_sharded_predictions_mostly_match_fused(self, fused_setup):
        ds, fused, _, shard_compiled = fused_setup
        x = ds.test_x[:64]
        pool = DevicePool(3)
        pool.load_models(shard_compiled)
        dispatcher = MicroBatchDispatcher(pool, micro_batch=16,
                                          placement="shard")
        result = dispatcher.dispatch(x)
        agreement = np.mean(result.predictions == fused.predict(x))
        assert agreement > 0.9

    def test_sharded_timing_accounting(self, fused_setup):
        ds, _, _, shard_compiled = fused_setup
        pool = DevicePool(3)
        pool.load_models(shard_compiled)
        dispatcher = MicroBatchDispatcher(pool, host=MobileCpu(),
                                          micro_batch=16, placement="shard")
        result = dispatcher.dispatch(ds.test_x[:48])
        assert len(result.device_seconds) == 3
        assert result.host_seconds > 0
        assert result.makespan_seconds <= result.serial_seconds
        assert result.breakdown["host_tail"] == pytest.approx(
            result.host_seconds
        )
