"""Tests for the phase-level profiler."""

import pytest

from repro.runtime.profiler import PHASES, PhaseProfiler


class TestPhaseProfiler:
    def test_breakdown_is_read_only(self):
        # Regression: breakdown() must not consume phase state, no
        # matter what the underlying clock hands back.
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.5)
        profiler.charge("update", 0.5)
        profiler.charge("custom-phase", 0.25)
        first = profiler.breakdown()
        second = profiler.breakdown()
        assert first == second
        assert profiler.seconds("encode") == 1.5
        assert profiler.seconds("custom-phase") == 0.25
        assert profiler.total == pytest.approx(2.25)

    def test_breakdown_orders_canonical_phases_first(self):
        profiler = PhaseProfiler()
        profiler.charge("custom-phase", 1.0)
        profiler.charge("inference", 2.0)
        assert list(profiler.breakdown()) == list(PHASES) + ["custom-phase"]

    def test_breakdown_includes_zero_canonical_phases(self):
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.0)
        breakdown = profiler.breakdown()
        assert breakdown["modelgen"] == 0.0
        assert breakdown["inference"] == 0.0

    def test_report_stable_across_calls(self):
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.0)
        profiler.charge("update", 3.0)
        assert profiler.report() == profiler.report()
        assert "update" in profiler.report()
