"""Tests for the phase-level profiler."""

import pytest

from repro.observability.trace import Tracer
from repro.runtime.profiler import PHASES, LatencyTracker, PhaseProfiler


class TestPhaseProfiler:
    def test_breakdown_is_read_only(self):
        # Regression: breakdown() must not consume phase state, no
        # matter what the underlying clock hands back.
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.5)
        profiler.charge("update", 0.5)
        profiler.charge("custom-phase", 0.25)
        first = profiler.breakdown()
        second = profiler.breakdown()
        assert first == second
        assert profiler.seconds("encode") == 1.5
        assert profiler.seconds("custom-phase") == 0.25
        assert profiler.total == pytest.approx(2.25)

    def test_breakdown_orders_canonical_phases_first(self):
        profiler = PhaseProfiler()
        profiler.charge("custom-phase", 1.0)
        profiler.charge("inference", 2.0)
        assert list(profiler.breakdown()) == list(PHASES) + ["custom-phase"]

    def test_breakdown_includes_zero_canonical_phases(self):
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.0)
        breakdown = profiler.breakdown()
        assert breakdown["modelgen"] == 0.0
        assert breakdown["inference"] == 0.0

    def test_report_stable_across_calls(self):
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.0)
        profiler.charge("update", 3.0)
        assert profiler.report() == profiler.report()
        assert "update" in profiler.report()


class TestTracerView:
    def test_default_tracer_is_disabled(self):
        profiler = PhaseProfiler()
        profiler.charge("encode", 1.0)
        assert not profiler.tracer
        assert len(profiler.tracer) == 0
        assert profiler.seconds("encode") == 1.0

    def test_enabled_tracer_records_span_per_charge(self):
        profiler = PhaseProfiler(Tracer())
        profiler.charge("encode", 1.0, name="device.invoke", device=0)
        profiler.charge("update", 0.5)
        assert [s.name for s in profiler.tracer.spans] == \
            ["device.invoke", "update"]
        assert profiler.breakdown()["encode"] == 1.0

    def test_absorb_replays_totals_and_splices_spans(self):
        child = PhaseProfiler(Tracer())
        child.charge("encode", 1.0)
        child.charge("update", 0.5)
        parent = PhaseProfiler(Tracer())
        parent.charge("modelgen", 2.0)
        parent.absorb(child, "submodel[0]", sub_dimension=64)
        assert parent.seconds("encode") == 1.0
        assert parent.seconds("update") == 0.5
        assert parent.total == 3.5
        wrapper = next(s for s in parent.tracer.spans
                       if s.name == "submodel[0]")
        assert wrapper.attrs == {"sub_dimension": 64}

    def test_absorb_totals_match_direct_charging_when_disabled(self):
        # The pre-tracer merge path: absorb on disabled tracers must be
        # the exact two-level summation the pipelines always used.
        child = PhaseProfiler()
        child.charge("encode", 0.1)
        child.charge("encode", 0.2)
        parent = PhaseProfiler()
        parent.absorb(child, "sub")
        assert parent.seconds("encode") == 0.1 + 0.2
        assert len(parent.tracer) == 0


class TestLatencyTracker:
    def test_empty_tracker(self):
        tracker = LatencyTracker()
        assert len(tracker) == 0
        assert tracker.summary() == {"count": 0}
        with pytest.raises(ValueError):
            tracker.p50
        with pytest.raises(ValueError):
            tracker.mean

    def test_single_sample(self):
        tracker = LatencyTracker()
        tracker.record(0.125)
        assert tracker.p50 == tracker.p95 == tracker.p99 == 0.125
        assert tracker.mean == 0.125

    def test_nearest_rank_percentiles(self):
        # 100 samples 0.01..1.00: nearest-rank p50 is the 50th value.
        tracker = LatencyTracker()
        for i in range(100, 0, -1):  # insertion order must not matter
            tracker.record(i / 100.0)
        assert tracker.p50 == pytest.approx(0.50)
        assert tracker.p95 == pytest.approx(0.95)
        assert tracker.p99 == pytest.approx(0.99)
        assert tracker.max == pytest.approx(1.00)
        assert tracker.percentile(100.0) == pytest.approx(1.00)

    def test_percentiles_are_observed_values(self):
        # Nearest-rank reports a value that actually occurred, so the
        # summary is exactly reproducible -- no interpolation.
        tracker = LatencyTracker()
        for value in [0.010, 0.020, 0.400]:
            tracker.record(value)
        assert tracker.p50 in (0.010, 0.020, 0.400)
        assert tracker.p99 == 0.400

    def test_summary_keys(self):
        tracker = LatencyTracker()
        tracker.record(0.01)
        tracker.record(0.03)
        summary = tracker.summary()
        assert summary["count"] == 2
        assert summary["mean_s"] == pytest.approx(0.02)
        assert set(summary) == {
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "max_s",
        }

    def test_rejects_bad_input(self):
        tracker = LatencyTracker()
        with pytest.raises(ValueError):
            tracker.record(-0.1)
        tracker.record(0.5)
        with pytest.raises(ValueError):
            tracker.percentile(-1.0)
        with pytest.raises(ValueError):
            tracker.percentile(101.0)

    def test_percentile_report_line(self):
        profiler = PhaseProfiler()
        tracker = LatencyTracker()
        assert "no samples" in profiler.percentile_report(tracker)
        tracker.record(0.002)
        line = profiler.percentile_report(tracker, title="serve")
        assert line.startswith("serve:")
        assert "p99=2.000 ms" in line

    def test_percentile_report_microsecond_units(self):
        # Regression: sub-millisecond device latencies used to print as
        # "0.000 ms"; units now adapt to the magnitude.
        profiler = PhaseProfiler()
        tracker = LatencyTracker()
        tracker.record(2.5e-6)
        line = profiler.percentile_report(tracker)
        assert "p99=2.500 µs" in line
        assert "0.000" not in line

    def test_percentile_report_second_units(self):
        profiler = PhaseProfiler()
        tracker = LatencyTracker()
        tracker.record(1.5)
        assert "p99=1.500 s" in profiler.percentile_report(tracker)
