"""Tests for the analytic phase-cost models — the paper's runtime shapes."""

import pytest

from repro.data import TABLE_I
from repro.hdc import BaggingConfig
from repro.platforms import RaspberryPi3
from repro.runtime import CostModel, HdcTrainingConfig, PhaseBreakdown, Workload


@pytest.fixture(scope="module")
def cm():
    return CostModel()


@pytest.fixture(scope="module")
def cfg():
    return HdcTrainingConfig()


def _workload(name):
    return Workload.from_spec(TABLE_I[name])


class TestWorkload:
    def test_from_spec(self):
        w = _workload("mnist")
        assert w.num_features == 784
        assert w.num_classes == 10
        assert w.num_train + w.num_test == 60000

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("x", 0, 1, 1, 1)


class TestConfigs:
    def test_training_config_validation(self):
        with pytest.raises(ValueError):
            HdcTrainingConfig(dimension=0)
        with pytest.raises(ValueError):
            HdcTrainingConfig(mistake_fraction=1.5)

    def test_phase_breakdown_total(self):
        pb = PhaseBreakdown(encode=1.0, update=2.0, modelgen=0.5)
        assert pb.total == 3.5

    def test_speedup_over(self):
        fast = PhaseBreakdown(encode=1.0, update=1.0)
        slow = PhaseBreakdown(encode=4.0, update=4.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            CostModel(train_batch=0)


class TestEncodingSpeedup:
    """The paper's Fig. 10: speedup grows with the feature count."""

    def test_monotone_in_features(self, cm):
        speedups = [cm.encoding_speedup(10_000, n)
                    for n in (20, 100, 300, 500, 700)]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_small_feature_count_near_one(self, cm):
        # Paper: 1.06x at 20 features.
        assert 0.7 < cm.encoding_speedup(10_000, 20) < 1.5

    def test_large_feature_count_high(self, cm):
        # Paper: 8.25x at 700 features.
        assert 6.0 < cm.encoding_speedup(10_000, 700) < 12.0

    def test_mnist_encoding_speedup_matches_paper(self, cm):
        # Paper: 9.37x maximum, on MNIST (784 features).
        w = _workload("mnist")
        speedup = cm.encoding_speedup(w.num_train, w.num_features)
        assert 8.0 < speedup < 11.5

    def test_pamap2_encoding_flat(self, cm):
        # Paper: PAMAP2 (27 features) sees no encoding acceleration.
        w = _workload("pamap2")
        speedup = cm.encoding_speedup(w.num_train, w.num_features)
        assert speedup < 1.5


class TestTrainingShapes:
    """The paper's Fig. 5 structure."""

    def test_tpu_b_mnist_speedup_matches_paper(self, cm, cfg):
        # Paper: 4.49x overall on MNIST with bagging.
        w = _workload("mnist")
        speedup = cm.tpu_bagged_training(w, cfg).speedup_over(
            cm.cpu_training(w, cfg)
        )
        assert 3.5 < speedup < 6.0

    def test_tpu_b_wins_on_all_large_datasets(self, cm, cfg):
        for name in ("face", "isolet", "ucihar", "mnist"):
            w = _workload(name)
            speedup = cm.tpu_bagged_training(w, cfg).speedup_over(
                cm.cpu_training(w, cfg)
            )
            assert speedup > 1.0, name

    def test_tpu_without_bagging_loses_on_pamap2(self, cm, cfg):
        # Paper Sec. IV-E: PAMAP2 "does not perform well" without the
        # update-side savings — the TPU-only setting is no faster.
        w = _workload("pamap2")
        speedup = cm.tpu_training(w, cfg).speedup_over(cm.cpu_training(w, cfg))
        assert speedup < 1.1

    def test_tpu_no_bag_face_speedup(self, cm, cfg):
        # Paper: 2.95x overall on FACE from encoding acceleration alone.
        w = _workload("face")
        speedup = cm.tpu_training(w, cfg).speedup_over(cm.cpu_training(w, cfg))
        assert 1.8 < speedup < 4.0

    def test_bagging_beats_no_bagging(self, cm, cfg):
        for name in TABLE_I:
            w = _workload(name)
            assert cm.tpu_bagged_training(w, cfg).total < \
                cm.tpu_training(w, cfg).total, name

    def test_update_speedup_near_paper_ratio(self, cm, cfg):
        # Analytic C'/C = 0.18 -> 5.56x; paper measures up to 4.74x; the
        # modeled ratio should land in that neighbourhood.
        for name in TABLE_I:
            ratio = cm.update_cost_ratio_measured(_workload(name), cfg)
            assert 3.5 < ratio < 6.5, name

    def test_paper_cost_formula(self, cfg):
        assert CostModel.update_cost_ratio_paper(
            cfg, BaggingConfig()
        ) == pytest.approx(0.18)

    def test_cpu_baseline_has_no_modelgen(self, cm, cfg):
        assert cm.cpu_training(_workload("mnist"), cfg).modelgen == 0.0

    def test_tpu_training_includes_modelgen(self, cm, cfg):
        assert cm.tpu_training(_workload("mnist"), cfg).modelgen > 0.0

    def test_encode_dominates_face_cpu_baseline(self, cm, cfg):
        # Paper: "For datasets such as FACE, the encoding runtime takes
        # up a large portion of the total training time."
        breakdown = cm.cpu_training(_workload("face"), cfg)
        assert breakdown.encode > 0.5 * breakdown.total


class TestInferenceShapes:
    """The paper's Fig. 6 structure."""

    def test_mnist_inference_speedup(self, cm, cfg):
        # Paper: 4.19x on MNIST.
        w = _workload("mnist")
        speedup = cm.cpu_inference(w, cfg) / cm.tpu_inference(w, cfg)
        assert 3.0 < speedup < 5.5

    def test_inference_speedups_where_paper_reports_wins(self, cm, cfg):
        # Paper: FACE 3.16x, ISOLET 2.13x, UCIHAR 3.08x.
        for name in ("face", "isolet", "ucihar"):
            w = _workload(name)
            speedup = cm.cpu_inference(w, cfg) / cm.tpu_inference(w, cfg)
            assert 1.5 < speedup < 5.5, name

    def test_pamap2_inference_counterexample(self, cm, cfg):
        # Paper: the TPU is *slower* for PAMAP2 inference.
        w = _workload("pamap2")
        assert cm.tpu_inference(w, cfg) > cm.cpu_inference(w, cfg)

    def test_batching_would_help_inference(self, cfg):
        batched = CostModel(inference_batch=64)
        single = CostModel(inference_batch=1)
        w = _workload("mnist")
        assert batched.tpu_inference(w, cfg) < single.tpu_inference(w, cfg)


class TestRaspberryPiComparison:
    """The paper's Table II structure."""

    def test_training_ratios_in_paper_range(self, cm, cfg):
        # Paper: 15.6x - 23.6x per dataset, 19.4x average.
        pi = RaspberryPi3()
        ratios = []
        for name in TABLE_I:
            w = _workload(name)
            pi_time = cm.cpu_training(w, cfg, platform=pi).total
            tpu_time = cm.tpu_bagged_training(w, cfg).total
            ratios.append(pi_time / tpu_time)
            assert pi_time / tpu_time > 4.0, name
        mean = sum(ratios) / len(ratios)
        assert 10.0 < mean < 30.0

    def test_inference_ratios_in_paper_range(self, cm, cfg):
        # Paper: 6.8x - 11.4x per dataset, 8.9x average.
        pi = RaspberryPi3()
        ratios = []
        for name in TABLE_I:
            w = _workload(name)
            ratios.append(
                cm.cpu_inference(w, cfg, platform=pi) / cm.tpu_inference(w, cfg)
            )
        mean = sum(ratios) / len(ratios)
        assert 5.0 < mean < 25.0
        # Every dataset must still favour the TPU framework.
        assert min(ratios) > 1.5

    def test_pi_slower_than_host_everywhere(self, cm, cfg):
        pi = RaspberryPi3()
        for name in TABLE_I:
            w = _workload(name)
            assert cm.cpu_training(w, cfg, platform=pi).total > \
                cm.cpu_training(w, cfg).total


class TestPrimitivesValidation:
    def test_tpu_encode_rejects_zero_samples(self, cm):
        with pytest.raises(ValueError):
            cm.tpu_encode_seconds(0, 10, 100)

    def test_modelgen_rejects_negative(self, cm):
        with pytest.raises(ValueError):
            cm.modelgen_seconds(-1)

    def test_tpu_encode_batch_boundary(self, cm):
        # Exactly one full batch vs one sample more.
        a = cm.tpu_encode_seconds(256, 100, 1000)
        b = cm.tpu_encode_seconds(257, 100, 1000)
        assert b > a
