"""Tests for continual on-edge learning under drift."""

import pytest

from repro.data import DriftingStream, StreamConfig
from repro.runtime import ContinualLearner


def _run(train, drift_rate=0.1, num_batches=40, refresh_interval=20, seed=4):
    cfg = StreamConfig(drift_rate=drift_rate)
    stream = DriftingStream(cfg, seed=seed)
    learner = ContinualLearner(cfg.num_features, cfg.num_classes,
                               dimension=1024,
                               refresh_interval=refresh_interval, seed=seed)
    warm_x, warm_y = stream.test_set(400, seed=1)
    learner.warmup(warm_x, warm_y, iterations=5)
    return learner.run(stream, num_batches=num_batches, train=train)


class TestContinualLearner:
    def test_continual_beats_static_under_drift(self):
        static = _run(train=False)
        continual = _run(train=True)
        assert continual.mean_prequential_accuracy > \
            static.mean_prequential_accuracy

    def test_static_pays_no_update_cost(self):
        static = _run(train=False)
        assert static.update_seconds == 0.0
        assert static.modelgen_seconds == 0.0
        assert static.model_refreshes == 0

    def test_continual_costs_accounted(self):
        continual = _run(train=True, num_batches=40, refresh_interval=20)
        assert continual.update_seconds > 0
        assert continual.model_refreshes == 2
        assert continual.modelgen_seconds > 0

    def test_no_refresh_interval(self):
        continual = _run(train=True, refresh_interval=None)
        assert continual.model_refreshes == 0
        assert continual.modelgen_seconds == 0.0

    def test_eval_curve_recorded(self):
        result = _run(train=True, num_batches=30)
        assert len(result.prequential_accuracy) == 30
        assert len(result.eval_accuracy) == 3  # every 10 batches

    def test_stationary_stream_static_holds_up(self):
        # Without drift the static model should not decay; continual
        # training must not hurt either.
        static = _run(train=False, drift_rate=0.0)
        continual = _run(train=True, drift_rate=0.0)
        assert static.mean_prequential_accuracy > 0.85
        assert continual.mean_prequential_accuracy > \
            static.mean_prequential_accuracy - 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="refresh_interval"):
            ContinualLearner(8, 3, refresh_interval=0)
        learner = ContinualLearner(8, 3, dimension=64, seed=0)
        learner.warmup(*DriftingStream(
            StreamConfig(num_features=8, num_classes=3), seed=0
        ).test_set(60))
        with pytest.raises(ValueError, match="num_batches"):
            learner.run(DriftingStream(
                StreamConfig(num_features=8, num_classes=3), seed=0
            ), num_batches=0)

    def test_empty_result_guard(self):
        from repro.runtime import ContinualResult
        with pytest.raises(ValueError, match="batches"):
            ContinualResult().mean_prequential_accuracy
