"""Tests for the synthetic data generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticConfig, make_classification


class TestSyntheticConfig:
    def test_defaults_validate(self):
        cfg = SyntheticConfig(num_samples=100, num_features=10, num_classes=3)
        assert cfg.effective_latent_dim == 10

    def test_latent_dim_default_capped(self):
        cfg = SyntheticConfig(num_samples=100, num_features=100, num_classes=3)
        assert cfg.effective_latent_dim == 24

    def test_explicit_latent_dim(self):
        cfg = SyntheticConfig(num_samples=100, num_features=100, num_classes=3,
                              latent_dim=8)
        assert cfg.effective_latent_dim == 8

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError, match="one sample per class"):
            SyntheticConfig(num_samples=2, num_features=4, num_classes=3)

    def test_rejects_one_class(self):
        with pytest.raises(ValueError, match="num_classes"):
            SyntheticConfig(num_samples=10, num_features=4, num_classes=1)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError, match="sparsity"):
            SyntheticConfig(num_samples=10, num_features=4, num_classes=2,
                            sparsity=1.0)

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError, match="clusters_per_class"):
            SyntheticConfig(num_samples=10, num_features=4, num_classes=2,
                            clusters_per_class=0)


class TestMakeClassification:
    def test_shapes_and_dtypes(self):
        cfg = SyntheticConfig(num_samples=50, num_features=7, num_classes=4)
        x, y = make_classification(cfg, seed=0)
        assert x.shape == (50, 7)
        assert y.shape == (50,)
        assert x.dtype == np.float32
        assert y.dtype == np.int64

    def test_labels_cover_all_classes(self):
        cfg = SyntheticConfig(num_samples=40, num_features=5, num_classes=4)
        _, y = make_classification(cfg, seed=0)
        assert set(np.unique(y)) == {0, 1, 2, 3}

    def test_balanced_classes(self):
        cfg = SyntheticConfig(num_samples=400, num_features=5, num_classes=4)
        _, y = make_classification(cfg, seed=0)
        counts = np.bincount(y)
        assert counts.max() - counts.min() <= 1

    def test_deterministic_per_seed(self):
        cfg = SyntheticConfig(num_samples=30, num_features=6, num_classes=3)
        x1, y1 = make_classification(cfg, seed=5)
        x2, y2 = make_classification(cfg, seed=5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self):
        cfg = SyntheticConfig(num_samples=30, num_features=6, num_classes=3)
        x1, _ = make_classification(cfg, seed=5)
        x2, _ = make_classification(cfg, seed=6)
        assert not np.array_equal(x1, x2)

    def test_nonnegative_flag(self):
        cfg = SyntheticConfig(num_samples=60, num_features=8, num_classes=3,
                              nonnegative=True)
        x, _ = make_classification(cfg, seed=1)
        assert (x >= 0).all()

    def test_sparsity_zeroes_entries(self):
        cfg = SyntheticConfig(num_samples=200, num_features=50, num_classes=2,
                              sparsity=0.5, noise_std=0.0)
        x, _ = make_classification(cfg, seed=1)
        zero_fraction = np.mean(x == 0.0)
        assert 0.4 < zero_fraction < 0.6

    def test_classes_are_separable(self):
        # A simple centroid classifier should beat chance by a wide margin
        # on well-separated synthetic data.
        cfg = SyntheticConfig(num_samples=600, num_features=20, num_classes=3,
                              class_separation=6.0, warp_strength=0.0,
                              noise_std=0.1)
        x, y = make_classification(cfg, seed=2)
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        distances = ((x[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        predictions = distances.argmin(axis=1)
        assert np.mean(predictions == y) > 0.9

    def test_warp_makes_data_nonlinear(self):
        # With a strong warp and no noise, feature values deviate from the
        # best linear reconstruction of the latent lift.
        cfg = SyntheticConfig(num_samples=300, num_features=10, num_classes=2,
                              warp_strength=2.0, noise_std=0.0)
        x_warp, _ = make_classification(cfg, seed=3)
        cfg_lin = SyntheticConfig(num_samples=300, num_features=10,
                                  num_classes=2, warp_strength=0.0,
                                  noise_std=0.0)
        x_lin, _ = make_classification(cfg_lin, seed=3)
        assert not np.allclose(x_warp, x_lin)

    @given(
        num_samples=st.integers(min_value=10, max_value=200),
        num_features=st.integers(min_value=1, max_value=40),
        num_classes=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_shapes_and_label_range(self, num_samples, num_features,
                                             num_classes, seed):
        if num_samples < num_classes:
            num_samples = num_classes
        cfg = SyntheticConfig(num_samples=num_samples,
                              num_features=num_features,
                              num_classes=num_classes)
        x, y = make_classification(cfg, seed=seed)
        assert x.shape == (num_samples, num_features)
        assert y.min() >= 0 and y.max() < num_classes
        assert np.isfinite(x).all()
