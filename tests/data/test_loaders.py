"""Tests for the Dataset container, splitting, normalization, batching."""

import numpy as np
import pytest

from repro.data import Dataset, batches, normalize_features, train_test_split


def _tiny_dataset(num_train=20, num_test=8, num_features=5, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        name="tiny",
        train_x=rng.standard_normal((num_train, num_features)).astype(np.float32),
        train_y=rng.integers(0, num_classes, num_train),
        test_x=rng.standard_normal((num_test, num_features)).astype(np.float32),
        test_y=rng.integers(0, num_classes, num_test),
        num_classes=num_classes,
    )


class TestDataset:
    def test_properties(self):
        ds = _tiny_dataset()
        assert ds.num_features == 5
        assert ds.num_train == 20
        assert ds.num_test == 8

    def test_rejects_1d_train_x(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError, match="2-D"):
            Dataset("bad", ds.train_x[0], ds.train_y[:1], ds.test_x, ds.test_y, 3)

    def test_rejects_feature_mismatch(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError, match="feature counts differ"):
            Dataset("bad", ds.train_x[:, :3], ds.train_y, ds.test_x, ds.test_y, 3)

    def test_rejects_label_length_mismatch(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError, match="labels"):
            Dataset("bad", ds.train_x, ds.train_y[:-1], ds.test_x, ds.test_y, 3)

    def test_rejects_out_of_range_labels(self):
        ds = _tiny_dataset()
        bad_y = ds.train_y.copy()
        bad_y[0] = 99
        with pytest.raises(ValueError, match="out of range"):
            Dataset("bad", ds.train_x, bad_y, ds.test_x, ds.test_y, 3)

    def test_rejects_single_class(self):
        ds = _tiny_dataset()
        with pytest.raises(ValueError, match="num_classes"):
            Dataset("bad", ds.train_x, np.zeros(20, dtype=int),
                    ds.test_x, np.zeros(8, dtype=int), 1)

    def test_subsample_caps_sizes(self):
        ds = _tiny_dataset()
        sub = ds.subsample(max_train=10, max_test=4)
        assert sub.num_train == 10
        assert sub.num_test == 4
        assert sub.num_features == ds.num_features

    def test_subsample_is_deterministic(self):
        ds = _tiny_dataset()
        a = ds.subsample(max_train=10, seed=5)
        b = ds.subsample(max_train=10, seed=5)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_subsample_noop_when_smaller(self):
        ds = _tiny_dataset()
        sub = ds.subsample(max_train=1000, max_test=1000)
        assert sub.num_train == ds.num_train
        assert sub.num_test == ds.num_test

    def test_normalized_uses_train_statistics(self):
        ds = _tiny_dataset(num_train=200)
        norm = ds.normalized()
        np.testing.assert_allclose(norm.train_x.mean(axis=0), 0.0, atol=1e-5)
        np.testing.assert_allclose(norm.train_x.std(axis=0), 1.0, atol=1e-4)
        # Test split is transformed with *train* statistics, so its mean is
        # near but not exactly zero.
        assert not np.allclose(norm.test_x.mean(axis=0), 0.0, atol=1e-8)


class TestNormalizeFeatures:
    def test_standardizes(self, rng):
        x = rng.normal(5.0, 3.0, (500, 4))
        out = normalize_features(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-4)

    def test_constant_feature_maps_to_zero(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        out = normalize_features(x)
        np.testing.assert_array_equal(out[:, 0], 0.0)

    def test_external_statistics(self, rng):
        x = rng.standard_normal((50, 3))
        out = normalize_features(x, mean=np.zeros(3), std=np.ones(3))
        np.testing.assert_allclose(out, x, atol=1e-6)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            normalize_features(np.arange(5.0))


class TestTrainTestSplit:
    def test_sizes(self, rng):
        x = rng.standard_normal((100, 3))
        y = rng.integers(0, 2, 100)
        tx, ty, vx, vy = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert len(vx) == 25
        assert len(tx) == 75
        assert len(tx) == len(ty) and len(vx) == len(vy)

    def test_partition_is_exact(self, rng):
        x = np.arange(40, dtype=float)[:, None]
        y = np.zeros(40, dtype=int)
        tx, _, vx, _ = train_test_split(x, y, test_fraction=0.2, seed=1)
        combined = np.sort(np.concatenate([tx, vx]).ravel())
        np.testing.assert_array_equal(combined, np.arange(40.0))

    def test_deterministic(self, rng):
        x = rng.standard_normal((30, 2))
        y = rng.integers(0, 2, 30)
        a = train_test_split(x, y, seed=9)
        b = train_test_split(x, y, seed=9)
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_rejects_bad_fraction(self, rng):
        x = rng.standard_normal((10, 2))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValueError, match="test_fraction"):
            train_test_split(x, y, test_fraction=1.0)

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="labels"):
            train_test_split(np.zeros((5, 2)), np.zeros(4, dtype=int))


class TestBatches:
    def test_covers_all_rows(self, rng):
        x = rng.standard_normal((23, 4))
        seen = np.vstack([b[0] for b in batches(x, 5)])
        np.testing.assert_array_equal(seen, x)

    def test_last_batch_short(self, rng):
        x = rng.standard_normal((23, 4))
        sizes = [len(b[0]) for b in batches(x, 5)]
        assert sizes == [5, 5, 5, 5, 3]

    def test_with_labels(self, rng):
        x = rng.standard_normal((10, 2))
        y = np.arange(10)
        pairs = list(batches(x, 4, y))
        assert all(len(bx) == len(by) for bx, by in pairs)
        np.testing.assert_array_equal(np.concatenate([by for _, by in pairs]), y)

    def test_rejects_zero_batch(self, rng):
        with pytest.raises(ValueError, match="batch_size"):
            list(batches(np.zeros((4, 2)), 0))
