"""Tests for the raw-sensor pipeline (traces, windows, features)."""

import numpy as np
import pytest

from repro.data import (
    ImuConfig,
    SyntheticImuGenerator,
    extract_features,
    feature_count,
    make_activity_dataset,
    sliding_windows,
)


class TestImuConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(num_channels=0),
        dict(num_activities=1),
        dict(sample_rate_hz=0),
        dict(jitter=1.5),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ImuConfig(**kwargs)


class TestGenerator:
    def test_trace_shape(self):
        gen = SyntheticImuGenerator(ImuConfig(num_channels=3), seed=0)
        trace = gen.trace(0, 200)
        assert trace.shape == (200, 3)
        assert trace.dtype == np.float32

    def test_activities_have_distinct_signatures(self):
        # Different activities should produce visibly different spectra;
        # check via windowed std per channel.
        gen = SyntheticImuGenerator(ImuConfig(noise_std=0.0, jitter=0.0),
                                    seed=0)
        a = gen.trace(0, 500)
        b = gen.trace(1, 500)
        assert not np.allclose(a.std(axis=0), b.std(axis=0), rtol=0.05)

    def test_rejects_bad_activity(self):
        gen = SyntheticImuGenerator(seed=0)
        with pytest.raises(ValueError, match="activity"):
            gen.trace(99, 100)

    def test_rejects_bad_length(self):
        gen = SyntheticImuGenerator(seed=0)
        with pytest.raises(ValueError, match="num_samples"):
            gen.trace(0, 0)


class TestSlidingWindows:
    def test_shapes_with_default_stride(self, rng):
        trace = rng.standard_normal((256, 4))
        windows = sliding_windows(trace, window=64)
        assert windows.shape == (7, 64, 4)  # stride 32

    def test_explicit_stride(self, rng):
        trace = rng.standard_normal((100, 2))
        windows = sliding_windows(trace, window=50, stride=25)
        assert windows.shape == (3, 50, 2)

    def test_windows_are_views_of_signal(self, rng):
        trace = rng.standard_normal((64, 1))
        windows = sliding_windows(trace, window=32, stride=32)
        np.testing.assert_array_equal(windows[0], trace[:32])
        np.testing.assert_array_equal(windows[1], trace[32:])

    def test_validation(self, rng):
        trace = rng.standard_normal((64, 2))
        with pytest.raises(ValueError, match="window"):
            sliding_windows(trace, window=1)
        with pytest.raises(ValueError, match="stride"):
            sliding_windows(trace, window=8, stride=0)
        with pytest.raises(ValueError, match="shorter"):
            sliding_windows(trace, window=100)
        with pytest.raises(ValueError, match="channels"):
            sliding_windows(rng.standard_normal(64), window=8)


class TestExtractFeatures:
    def test_feature_count_formula(self):
        assert feature_count(1) == 9
        assert feature_count(6) == 6 * 9 + 15
        with pytest.raises(ValueError):
            feature_count(0)

    def test_output_shape(self, rng):
        windows = rng.standard_normal((5, 64, 3))
        features = extract_features(windows)
        assert features.shape == (5, feature_count(3))
        assert features.dtype == np.float32

    def test_known_statistics(self):
        # A constant window: mean = c, std = 0, energy = c^2, etc.
        windows = np.full((1, 16, 1), 2.0)
        features = extract_features(windows)[0]
        mean, std, mn, mx, median, mad, energy, iqr, crossings = features
        assert mean == 2.0 and std == 0.0
        assert mn == 2.0 and mx == 2.0 and median == 2.0
        assert mad == 0.0 and energy == 4.0 and iqr == 0.0
        assert crossings == 0.0

    def test_correlation_of_identical_channels(self, rng):
        signal = rng.standard_normal((1, 64, 1))
        windows = np.concatenate([signal, signal], axis=2)
        features = extract_features(windows)[0]
        correlation = features[-1]  # the single pairwise term
        assert correlation == pytest.approx(1.0, abs=1e-6)

    def test_correlation_of_negated_channel(self, rng):
        signal = rng.standard_normal((1, 64, 1))
        windows = np.concatenate([signal, -signal], axis=2)
        assert extract_features(windows)[0][-1] == pytest.approx(-1.0,
                                                                 abs=1e-6)

    def test_single_channel_has_no_correlations(self, rng):
        windows = rng.standard_normal((3, 32, 1))
        assert extract_features(windows).shape == (3, 9)

    def test_rejects_2d(self, rng):
        with pytest.raises(ValueError, match="windows"):
            extract_features(rng.standard_normal((5, 64)))


class TestActivityDataset:
    def test_pipeline_end_to_end(self):
        ds = make_activity_dataset(num_windows_per_activity=50, seed=2)
        assert ds.num_classes == 5
        assert ds.num_features == feature_count(6)
        assert ds.num_train + ds.num_test == 5 * 50

    def test_hdc_learns_activities(self):
        from repro.hdc import HDCClassifier
        config = ImuConfig(noise_std=0.6, jitter=0.3)
        ds = make_activity_dataset(num_windows_per_activity=80,
                                   config=config, seed=2).normalized()
        model = HDCClassifier(dimension=1024, seed=2)
        model.fit(ds.train_x, ds.train_y, iterations=5)
        assert model.score(ds.test_x, ds.test_y) > 0.8

    def test_deterministic(self):
        a = make_activity_dataset(num_windows_per_activity=20, seed=3)
        b = make_activity_dataset(num_windows_per_activity=20, seed=3)
        np.testing.assert_array_equal(a.train_x, b.train_x)

    def test_validation(self):
        with pytest.raises(ValueError, match="windows per activity"):
            make_activity_dataset(num_windows_per_activity=1)
