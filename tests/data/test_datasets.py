"""Tests for the five Table-I dataset surrogates."""

import numpy as np
import pytest

from repro.data import TABLE_I, DatasetSpec, load, specs
from repro.data import face, isolet, mnist, pamap2, ucihar

# (name, samples, features, classes) straight from the paper's Table I.
TABLE_I_ROWS = [
    ("face", 80854, 608, 2),
    ("isolet", 7797, 617, 26),
    ("ucihar", 7667, 561, 12),
    ("mnist", 60000, 784, 10),
    ("pamap2", 32768, 27, 5),
]


class TestSpecs:
    @pytest.mark.parametrize("name,samples,features,classes", TABLE_I_ROWS)
    def test_table_i_shapes(self, name, samples, features, classes):
        spec = TABLE_I[name]
        assert spec.num_samples == samples
        assert spec.num_features == features
        assert spec.num_classes == classes

    def test_specs_order_matches_paper(self):
        assert [s.name for s in specs()] == [
            "face", "isolet", "ucihar", "mnist", "pamap2",
        ]

    def test_train_test_partition(self):
        for spec in specs():
            assert spec.num_train + spec.num_test == spec.num_samples
            assert spec.num_test >= 1

    def test_spec_is_value_object(self):
        assert TABLE_I["mnist"] == DatasetSpec(
            "mnist", 60000, 784, 10, "Handwritten digits"
        )


class TestFactories:
    @pytest.mark.parametrize("factory,name", [
        (face, "face"), (isolet, "isolet"), (ucihar, "ucihar"),
        (mnist, "mnist"), (pamap2, "pamap2"),
    ])
    def test_materialized_shape_matches_spec(self, factory, name):
        ds = factory(max_samples=600, seed=0)
        spec = TABLE_I[name]
        assert ds.num_features == spec.num_features
        assert ds.num_classes == spec.num_classes
        assert ds.num_train + ds.num_test == 600
        assert ds.name == name

    def test_full_size_recorded_in_metadata(self):
        ds = pamap2(max_samples=500, seed=0)
        assert ds.metadata["table_i_samples"] == 32768
        assert ds.metadata["materialized_samples"] == 500

    def test_deterministic(self):
        a = isolet(max_samples=300, seed=4)
        b = isolet(max_samples=300, seed=4)
        np.testing.assert_array_equal(a.train_x, b.train_x)
        np.testing.assert_array_equal(a.train_y, b.train_y)

    def test_seeds_change_data(self):
        a = isolet(max_samples=300, seed=4)
        b = isolet(max_samples=300, seed=5)
        assert not np.array_equal(a.train_x, b.train_x)

    def test_datasets_use_distinct_streams(self):
        # Same seed, different datasets with equal feature slices must not
        # produce identical arrays.
        a = isolet(max_samples=300, seed=4)
        b = ucihar(max_samples=300, seed=4)
        assert a.train_x.shape[1] != b.train_x.shape[1] or \
            not np.array_equal(a.train_x, b.train_x)

    def test_rejects_tiny_max_samples(self):
        with pytest.raises(ValueError, match="too small"):
            isolet(max_samples=10)

    def test_load_by_name(self):
        ds = load("MNIST", max_samples=400, seed=1)
        assert ds.name == "mnist"
        assert ds.num_features == 784

    def test_load_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("cifar10")

    def test_all_classes_present_in_train(self):
        for name in TABLE_I:
            ds = load(name, max_samples=800, seed=0)
            assert len(np.unique(ds.train_y)) == ds.num_classes

    def test_mnist_is_sparse_and_nonnegative(self):
        ds = mnist(max_samples=500, seed=0)
        assert (ds.train_x >= 0).all()
        assert np.mean(ds.train_x == 0.0) > 0.2
