"""Tests for drifting data streams."""

import numpy as np
import pytest

from repro.data import DriftingStream, StreamConfig


class TestStreamConfig:
    def test_defaults(self):
        cfg = StreamConfig()
        assert cfg.num_classes >= 2

    @pytest.mark.parametrize("kwargs", [
        dict(num_features=0),
        dict(num_classes=1),
        dict(drift_rate=-0.1),
        dict(latent_dim=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StreamConfig(**kwargs)


class TestDriftingStream:
    def test_batch_shapes(self):
        stream = DriftingStream(StreamConfig(num_features=8, num_classes=3),
                                seed=0)
        x, y = stream.next_batch(32)
        assert x.shape == (32, 8)
        assert y.shape == (32,)
        assert set(np.unique(y)).issubset({0, 1, 2})

    def test_balanced_labels(self):
        stream = DriftingStream(StreamConfig(num_classes=4), seed=0)
        _, y = stream.next_batch(100)
        counts = np.bincount(y, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_deterministic_per_seed(self):
        a = DriftingStream(StreamConfig(), seed=3)
        b = DriftingStream(StreamConfig(), seed=3)
        xa, ya = a.next_batch(16)
        xb, yb = b.next_batch(16)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)

    def test_steps_advance(self):
        stream = DriftingStream(seed=0)
        assert stream.steps == 0
        stream.next_batch(8)
        stream.next_batch(8)
        assert stream.steps == 2

    def test_test_set_does_not_advance_drift(self):
        stream = DriftingStream(seed=0)
        stream.next_batch(8)
        before = stream._centroids.copy()
        stream.test_set(64)
        np.testing.assert_array_equal(stream._centroids, before)
        assert stream.steps == 1

    def test_test_set_reflects_current_time(self):
        # After heavy drift, the test set must come from the *moved*
        # distribution: its class means should differ from time zero's.
        cfg = StreamConfig(drift_rate=0.5, noise_std=0.0)
        stream = DriftingStream(cfg, seed=1)
        x0, y0 = stream.test_set(400)
        for _ in range(50):
            stream.next_batch(8)
        x1, y1 = stream.test_set(400)
        mean_shift = np.linalg.norm(
            x0[y0 == 0].mean(axis=0) - x1[y1 == 0].mean(axis=0)
        )
        assert mean_shift > 1.0

    def test_zero_drift_is_stationary(self):
        cfg = StreamConfig(drift_rate=0.0)
        stream = DriftingStream(cfg, seed=1)
        before = stream._centroids.copy()
        for _ in range(10):
            stream.next_batch(8)
        np.testing.assert_array_equal(stream._centroids, before)
        assert stream.drift_distance() == 0.0

    def test_drift_distance_grows(self):
        stream = DriftingStream(StreamConfig(drift_rate=0.1), seed=0)
        stream.next_batch(8)
        d1 = stream.drift_distance()
        for _ in range(8):
            stream.next_batch(8)
        assert stream.drift_distance() > d1

    def test_validation(self):
        stream = DriftingStream(seed=0)
        with pytest.raises(ValueError):
            stream.next_batch(0)
        with pytest.raises(ValueError):
            stream.test_set(0)

    def test_classes_separable_at_time_zero(self):
        cfg = StreamConfig(num_classes=3, class_separation=6.0,
                           noise_std=0.05)
        stream = DriftingStream(cfg, seed=2)
        x, y = stream.test_set(600)
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        distances = ((x[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        assert np.mean(distances.argmin(axis=1) == y) > 0.9


class TestAdvanceAndDraw:
    def test_advance_steps_drift_without_sampling(self):
        stream = DriftingStream(StreamConfig(drift_rate=0.1), seed=0)
        before = stream._centroids.copy()
        stream.advance(5)
        assert stream.steps == 5
        assert not np.array_equal(stream._centroids, before)

    def test_next_batch_equals_advance_plus_sample(self):
        # next_batch is exactly advance(1) followed by a sample draw;
        # the refactor must not have changed the RNG consumption order.
        a = DriftingStream(StreamConfig(), seed=3)
        b = DriftingStream(StreamConfig(), seed=3)
        xa, ya = a.next_batch(16)
        b.advance(1)
        xb, yb = b._sample(16, b._rng)
        np.testing.assert_array_equal(xa, xb)
        np.testing.assert_array_equal(ya, yb)

    def test_draw_samples_current_distribution(self):
        stream = DriftingStream(StreamConfig(num_features=8, num_classes=3),
                                seed=0)
        x, y = stream.draw(10)
        assert x.shape == (10, 8)
        assert y.shape == (10,)
        assert stream.steps == 0  # draw never advances drift

    def test_draw_of_one_covers_all_classes(self):
        # Regression: the balanced sampler always labels a size-1 draw
        # as class 0; draw() must use i.i.d. labels instead.
        stream = DriftingStream(StreamConfig(num_classes=4), seed=1)
        labels = {int(stream.draw(1)[1][0]) for _ in range(100)}
        assert labels == {0, 1, 2, 3}

    def test_draw_validation(self):
        stream = DriftingStream(seed=0)
        with pytest.raises(ValueError):
            stream.draw(0)
        with pytest.raises(ValueError):
            stream.advance(-1)
