"""Smoke tests: every example runs end to end at a reduced scale."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples.{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        module = _load("quickstart")
        module.main(max_samples=800, dimension=1024, iterations=4)
        out = capsys.readouterr().out
        assert "float accuracy" in out
        assert "Edge TPU accuracy" in out

    def test_speech_keyword_deployment(self, capsys):
        module = _load("speech_keyword_deployment")
        module.main(max_samples=800, dimension=1024)
        out = capsys.readouterr().out
        assert "bagging update-phase speedup" in out
        assert "fused model on disk" in out

    def test_activity_recognition(self, capsys):
        module = _load("activity_recognition")
        module.main(max_samples=800, dimension=1024)
        out = capsys.readouterr().out
        assert "streaming" in out
        assert "run inference on the CPU" in out  # the PAMAP2 lesson

    def test_custom_accelerator_study(self, capsys):
        module = _load("custom_accelerator_study")
        module.main()
        out = capsys.readouterr().out
        assert "USB" in out or "MB/s" in out
        assert "MXU" in out

    def test_federated_edge_fleet(self, capsys):
        module = _load("federated_edge_fleet")
        module.main(max_samples=800, dimension=512, rounds=2)
        out = capsys.readouterr().out
        assert "centralized accuracy" in out
        assert "non-IID" in out
        assert "total traffic" in out

    def test_raw_sensor_pipeline(self, capsys):
        module = _load("raw_sensor_pipeline")
        module.main(num_windows=60, dimension=512)
        out = capsys.readouterr().out
        assert "raw pipeline" in out
        assert "device program" in out

    def test_dna_sequence_matching(self, capsys):
        module = _load("dna_sequence_matching")
        module.main(genome_length=1000, dimension=1024,
                    reads_per_genome=60)
        out = capsys.readouterr().out
        assert "classification accuracy" in out
        assert "mutated copy" in out

    def test_sensor_regression(self, capsys):
        module = _load("sensor_regression")
        module.main(num_samples=600, dimension=1024)
        out = capsys.readouterr().out
        assert "R^2" in out
        assert "ridge" in out

    def test_online_serving(self, capsys):
        module = _load("online_serving")
        module.main(num_requests=400, dimension=512)
        out = capsys.readouterr().out
        assert "deadline-aware" in out
        assert "fixed-size" in out
        assert "USB stall" in out
        assert "identical to the healthy run: True" in out
        assert "hot swap" in out

    def test_tracing_demo(self, capsys):
        module = _load("tracing_demo")
        module.main(num_requests=150, dimension=512)
        out = capsys.readouterr().out
        assert "pipeline.train" in out
        assert "device.invoke" in out
        assert "spans recorded" in out
        assert "Chrome trace" in out
        assert "losslessly" in out

    @pytest.mark.parametrize("name", [
        "quickstart", "speech_keyword_deployment", "activity_recognition",
        "custom_accelerator_study", "federated_edge_fleet",
        "raw_sensor_pipeline", "dna_sequence_matching",
        "sensor_regression", "online_serving", "tracing_demo",
    ])
    def test_examples_have_main(self, name):
        module = _load(name)
        assert callable(module.main)
