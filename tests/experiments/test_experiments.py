"""Tests for the experiment drivers (paper tables/figures)."""

import pytest

from repro.experiments import QUICK
from repro.experiments import scale as scale_module
from repro.experiments.report import format_table
from repro.experiments import (
    fig4_convergence,
    fig5_training_runtime,
    fig6_inference_runtime,
    fig7_accuracy,
    fig8_param_search,
    fig9_iterations,
    fig10_feature_scaling,
    table1_datasets,
    table2_raspberry_pi,
)


class TestReport:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", 0.125]])
        assert "a" in text and "2.500" in text and "0.125" in text

    def test_title(self):
        text = format_table(["a"], [[1]], title="hello")
        assert text.startswith("hello")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_rejects_no_columns(self):
        with pytest.raises(ValueError, match="column"):
            format_table([], [])


class TestScale:
    def test_presets_exist(self):
        assert set(scale_module.PRESETS) == {"quick", "default", "paper"}

    def test_paper_scale_matches_paper_settings(self):
        paper = scale_module.PAPER
        assert paper.dimension == 10_000
        assert paper.iterations == 20
        assert paper.bagging_iterations == 6
        assert paper.max_samples is None

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_module.ExperimentScale("bad", 100, 2, 1, 1)


class TestTable1:
    def test_row_order_and_content(self):
        rows = table1_datasets.run()
        text = table1_datasets.format_result(rows)
        assert "FACE" in text and "80854" in text
        assert text.index("FACE") < text.index("PAMAP2")


class TestFig4:
    def test_curves_recorded(self):
        results = fig4_convergence.run(scale=QUICK, datasets=("isolet",))
        assert len(results) == 1
        curve = results[0]
        assert len(curve.train_accuracy) == QUICK.iterations
        assert len(curve.validation_accuracy) == QUICK.iterations

    def test_training_converges(self):
        results = fig4_convergence.run(scale=QUICK, datasets=("isolet",))
        curve = results[0]
        assert curve.train_accuracy[-1] > 0.9
        assert curve.train_accuracy[-1] > curve.train_accuracy[0]

    def test_plateau_before_end(self):
        # The paper's justification for 6-iteration sub-models.
        results = fig4_convergence.run(scale=QUICK, datasets=("isolet",))
        assert results[0].plateau_iteration <= QUICK.iterations

    def test_format(self):
        results = fig4_convergence.run(scale=QUICK, datasets=("isolet",))
        assert "isolet" in fig4_convergence.format_result(results)


class TestFig5:
    @pytest.fixture(scope="class")
    def results(self):
        return fig5_training_runtime.run()

    def test_all_datasets_present(self, results):
        assert [r.dataset for r in results] == [
            "face", "isolet", "ucihar", "mnist", "pamap2",
        ]

    def test_mnist_headline_speedup(self, results):
        mnist = next(r for r in results if r.dataset == "mnist")
        assert 3.5 < mnist.tpu_bagged_speedup < 6.0
        assert 8.0 < mnist.encoding_speedup < 11.5

    def test_bagged_always_fastest_setting(self, results):
        for r in results:
            assert r.tpu_bagged.total < r.tpu.total

    def test_format(self, results):
        text = fig5_training_runtime.format_result(results)
        assert "TPU_B" in text and "mnist" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def results(self):
        return fig6_inference_runtime.run()

    def test_pamap2_counterexample(self, results):
        pamap2 = next(r for r in results if r.dataset == "pamap2")
        assert pamap2.speedup < 1.0

    def test_other_datasets_win(self, results):
        for r in results:
            if r.dataset != "pamap2":
                assert r.speedup > 1.5, r.dataset

    def test_bagged_inference_no_overhead(self, results):
        for r in results:
            assert r.tpu_bagged_seconds == r.tpu_seconds

    def test_format(self, results):
        assert "speedup" in fig6_inference_runtime.format_result(results)


class TestFig7:
    @pytest.fixture(scope="class")
    def results(self):
        return fig7_accuracy.run(scale=QUICK, datasets=("isolet", "pamap2"))

    def test_quantization_preserves_accuracy(self, results):
        # Paper claim: int8 TPU inference accuracy ~ float CPU accuracy.
        for r in results:
            assert abs(r.quantization_drop) < 0.05, r.dataset

    def test_bagging_preserves_accuracy(self, results):
        # Paper claim: the bagged model is similar (sometimes better).
        for r in results:
            assert r.tpu_bagged > r.tpu - 0.07, r.dataset

    def test_accuracies_in_learned_regime(self, results):
        for r in results:
            assert r.cpu > 0.8, r.dataset

    def test_format(self, results):
        assert "quant drop" in fig7_accuracy.format_result(results)


class TestTable2:
    @pytest.fixture(scope="class")
    def results(self):
        return table2_raspberry_pi.run()

    def test_framework_beats_pi_everywhere(self, results):
        for r in results:
            assert r.training_ratio > 1.0, r.dataset
            assert r.inference_ratio > 1.0, r.dataset

    def test_mean_training_ratio_in_paper_neighbourhood(self, results):
        mean = sum(r.training_ratio for r in results) / len(results)
        assert 10.0 < mean < 30.0  # paper: 19.4x

    def test_framework_more_energy_efficient(self, results):
        for r in results:
            assert r.framework_training_energy_j < r.pi_training_energy_j

    def test_format_includes_mean(self, results):
        assert "mean" in table2_raspberry_pi.format_result(results)


class TestFig8:
    @pytest.fixture(scope="class")
    def points(self):
        return fig8_param_search.run(scale=QUICK, ratios=(0.4, 0.6, 1.0))

    def test_alpha_runtime_proportional(self, points):
        alpha = {p.ratio: p for p in points if p.parameter == "alpha"}
        assert alpha[0.6].normalized_runtime < 0.8
        assert alpha[1.0].normalized_runtime == pytest.approx(1.0)

    def test_beta_runtime_barely_improves(self, points):
        # The paper's reason to disable feature sampling.
        beta = {p.ratio: p for p in points if p.parameter == "beta"}
        assert beta[0.6].normalized_runtime > 0.85

    def test_alpha_06_accuracy_holds(self, points):
        alpha = {p.ratio: p for p in points if p.parameter == "alpha"}
        assert alpha[0.6].accuracy > alpha[1.0].accuracy - 0.05

    def test_format(self, points):
        assert "alpha" in fig8_param_search.format_result(points)


class TestFig9:
    @pytest.fixture(scope="class")
    def points(self):
        return fig9_iterations.run(scale=QUICK, iterations=(3, 6, 8))

    def test_runtime_monotone_in_iterations(self, points):
        runtimes = [p.normalized_runtime for p in points]
        assert runtimes == sorted(runtimes)
        assert points[-1].normalized_runtime == pytest.approx(1.0)

    def test_update_seconds_linear(self, points):
        by_iter = {p.iterations: p.update_seconds for p in points}
        assert by_iter[6] == pytest.approx(2 * by_iter[3], rel=0.05)

    def test_six_iterations_accuracy_close_to_eight(self, points):
        by_iter = {p.iterations: p.accuracy for p in points}
        assert by_iter[6] > by_iter[8] - 0.05

    def test_format(self, points):
        assert "iterations" in fig9_iterations.format_result(points)


class TestFig10:
    @pytest.fixture(scope="class")
    def points(self):
        return fig10_feature_scaling.run()

    def test_speedup_monotone_in_features(self, points):
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_endpoints_match_paper(self, points):
        # Paper: 1.06x at 20 features, 8.25x at 700.
        assert 0.7 < points[0].speedup < 1.5
        assert 6.0 < points[-1].speedup < 12.0

    def test_format(self, points):
        assert "features" in fig10_feature_scaling.format_result(points)


class TestCli:
    def test_main_runs_analytic_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out

    def test_main_scaled_experiment(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["table1", "--scale", "quick"]) == 0
        assert "Table I" in capsys.readouterr().out
