"""Tests for the energy-accounting experiment."""

import pytest

from repro.experiments import energy_table


@pytest.fixture(scope="module")
def rows():
    return energy_table.run()


class TestEnergyTable:
    def test_all_datasets(self, rows):
        assert [r.dataset for r in rows] == [
            "face", "isolet", "ucihar", "mnist", "pamap2",
        ]

    def test_pi_less_efficient_than_host_in_energy_per_task(self, rows):
        # The Pi draws less power but runs so much longer that its task
        # energy exceeds the host's.
        for row in rows:
            assert row.pi_training_j > row.host_training_j, row.dataset

    def test_framework_wins_training_energy(self, rows):
        for row in rows:
            assert row.framework_training_j < row.host_training_j
            assert row.training_efficiency_vs_pi > 1.0

    def test_framework_wins_inference_energy_even_on_pamap2(self, rows):
        # PAMAP2 inference is *slower* on the TPU (Fig. 6) but the 2 W
        # device still wins on energy against 15 W / 3.7 W CPUs.
        pamap2 = next(r for r in rows if r.dataset == "pamap2")
        assert pamap2.framework_inference_j < pamap2.host_inference_j

    def test_format(self, rows):
        text = energy_table.format_result(rows)
        assert "Energy" in text and "framework" in text
