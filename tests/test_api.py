"""The repro.api facade, config objects and deprecation shims."""

import dataclasses

import numpy as np
import pytest

import repro
from repro.api import Deployment, Result
from repro.config import PipelineConfig, ServeConfig
from repro.edgetpu.multidevice import DevicePool
from repro.runtime.executor import ExecutorConfig
from repro.runtime.pipeline import InferencePipeline, TrainingPipeline
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(7)
    x = rng.normal(size=(80, 12)).astype(np.float32)
    y = rng.integers(0, 3, size=80)
    return x, y


@pytest.fixture(scope="module")
def trained(data):
    x, y = data
    return repro.train(
        x, y, config=PipelineConfig(dimension=128, iterations=2, seed=3)
    )


def _requests(x, y, n=24):
    return [
        Request(request_id=i, arrival_s=i * 0.004,
                deadline_s=i * 0.004 + 0.05,
                features=x[i % len(x)], label=int(y[i % len(y)]))
        for i in range(n)
    ]


class TestPipelineConfig:
    def test_frozen(self):
        config = PipelineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.dimension = 5

    def test_defaults_match_paper(self):
        config = PipelineConfig()
        assert config.dimension == 10_000
        assert config.iterations == 20
        assert config.learning_rate == 0.035

    def test_validates_like_legacy_constructor(self):
        with pytest.raises(ValueError, match="must be >= 1"):
            PipelineConfig(dimension=0)
        with pytest.raises(ValueError, match="learning_rate"):
            PipelineConfig(learning_rate=0.0)

    def test_coerces_executor_int(self):
        config = PipelineConfig(executor=4)
        assert isinstance(config.executor, ExecutorConfig)
        assert config.executor.workers == 4


class TestServeConfig:
    def test_frozen(self):
        config = ServeConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.max_batch = 5

    def test_validates(self):
        with pytest.raises(ValueError, match="batcher"):
            ServeConfig(batcher="adaptive")
        with pytest.raises(ValueError, match="max_batch"):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError, match="slack_s"):
            ServeConfig(slack_s=-1.0)
        # max_queue=0 is legal (admission-closed server).
        with pytest.raises(ValueError, match="max_queue"):
            ServeConfig(max_queue=-1)

    def test_make_batcher(self):
        from repro.serving.batcher import DynamicBatcher, FixedSizeBatcher
        assert isinstance(ServeConfig().make_batcher(), DynamicBatcher)
        fixed = ServeConfig(batcher="fixed", timeout_s=0.01).make_batcher()
        assert isinstance(fixed, FixedSizeBatcher)

    def test_hashable(self):
        assert hash(ServeConfig()) == hash(ServeConfig())


class TestFacade:
    def test_train_deploy_serve_end_to_end(self, trained, data):
        x, y = data
        deployment = repro.deploy(
            trained, fleet=repro.FleetSpec.single(count=2)
        )
        assert deployment.pool.num_devices == 2
        assert deployment.load_s > 0
        report = repro.serve(deployment, _requests(x, y),
                             config=ServeConfig(max_batch=8, tracing=True))
        assert report.served + report.dropped == 24
        assert report.trace is not None

    def test_results_satisfy_protocol(self, trained, data):
        x, y = data
        deployment = repro.deploy(trained)
        report = repro.serve(deployment, _requests(x, y, n=8))
        infer = InferencePipeline(trained.compiled, batch=8).run(x)
        for result in (trained, deployment, report, infer):
            assert isinstance(result, Result)
            assert result.summary()["schema"].startswith("repro.")

    def test_summary_schemas(self, trained, data):
        x, y = data
        deployment = repro.deploy(trained)
        assert trained.summary()["schema"] == "repro.train/1"
        assert deployment.summary()["schema"] == "repro.deploy/2"
        report = repro.serve(deployment, _requests(x, y, n=8))
        summary = report.summary()
        assert summary["schema"] == "repro.serve/1"
        assert "host_s" in summary and "swap_s" in summary
        infer = InferencePipeline(trained.compiled, batch=8).run(x, y)
        assert infer.summary()["schema"] == "repro.infer/1"
        assert "phases" in trained.summary()

    def test_train_matches_pipeline_class(self, trained, data):
        x, y = data
        config = PipelineConfig(dimension=128, iterations=2, seed=3)
        direct = TrainingPipeline(config).run(x, y)
        np.testing.assert_array_equal(
            direct.fused.class_matrix, trained.fused.class_matrix
        )
        assert direct.profiler.breakdown() == trained.profiler.breakdown()

    def test_lazy_top_level_exports(self):
        assert repro.PipelineConfig is PipelineConfig
        assert repro.ServeConfig is ServeConfig
        assert callable(repro.train)
        assert callable(repro.deploy)
        assert callable(repro.serve)
        assert "Tracer" in dir(repro)


class TestDeprecationShims:
    def test_training_pipeline_legacy_kwargs_warn(self, data):
        x, y = data
        with pytest.deprecated_call(match="PipelineConfig"):
            pipeline = TrainingPipeline(dimension=128, iterations=2, seed=3)
        legacy = pipeline.run(x, y)
        modern = TrainingPipeline(
            PipelineConfig(dimension=128, iterations=2, seed=3)
        ).run(x, y)
        np.testing.assert_array_equal(
            legacy.fused.class_matrix, modern.fused.class_matrix
        )

    def test_training_pipeline_config_plus_legacy_is_error(self):
        with pytest.raises(TypeError):
            TrainingPipeline(PipelineConfig(), dimension=128)

    def test_inference_server_legacy_batcher_warns(self, trained):
        from repro.serving.batcher import DynamicBatcher
        pool = DevicePool(1, trained.compiled.arch)
        pool.load_replicated(trained.compiled)
        with pytest.deprecated_call(match="ServeConfig"):
            InferenceServer(pool, batcher=DynamicBatcher(max_batch=8))

    def test_inference_server_config_plus_legacy_is_error(self, trained):
        from repro.serving.batcher import DynamicBatcher
        pool = DevicePool(1, trained.compiled.arch)
        pool.load_replicated(trained.compiled)
        with pytest.raises(TypeError):
            InferenceServer(pool, ServeConfig(),
                            batcher=DynamicBatcher(max_batch=8))

    def test_bare_server_does_not_warn(self, trained, recwarn):
        pool = DevicePool(1, trained.compiled.arch)
        pool.load_replicated(trained.compiled)
        InferenceServer(pool)
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert deprecations == []


class TestDeployment:
    def test_summary(self, trained):
        deployment = repro.deploy(
            trained, fleet=repro.FleetSpec.single(count=3)
        )
        summary = deployment.summary()
        assert summary["num_devices"] == 3
        assert summary["load_s"] == deployment.load_s
        assert summary["weight_bytes"] == trained.compiled.weight_bytes
        assert len(summary["devices"]) == 3
        assert all(d["backend"] == "edgetpu" for d in summary["devices"])
        assert summary["placement"] is None
        assert deployment.trace is None

    def test_num_devices_shim_warns_and_matches(self, trained):
        with pytest.deprecated_call(match="FleetSpec"):
            legacy = repro.deploy(trained, num_devices=2)
        modern = repro.deploy(trained,
                              fleet=repro.FleetSpec.single(count=2))
        assert legacy.pool.num_devices == modern.pool.num_devices
        assert legacy.load_s == modern.load_s

    def test_heterogeneous_fleet_deploys_variants(self, trained):
        fleet = repro.FleetSpec(backends=(
            repro.BackendSpec(backend="edgetpu"),
            repro.BackendSpec(backend="pi-cpu"),
        ))
        deployment = repro.deploy(trained, fleet=fleet)
        backends = [d["backend"]
                    for d in deployment.summary()["devices"]]
        assert sorted(backends) == ["edgetpu", "pi-cpu"]

    def test_is_dataclass_result(self, trained):
        deployment = repro.deploy(trained)
        assert isinstance(deployment, Deployment)
        assert isinstance(deployment, Result)
