"""Bit-exactness tests for the int8 fast-path compute engine.

Every optimized path in ``repro.tflite.ops`` — the BLAS float64 matmul,
the precomputed zero-point offset, the static overflow bound, the fused
``FC→TANH`` / ``FC→requant→ARGMAX`` stages, and the uint8-view tanh LUT
— must be *byte-identical* to the frozen seed implementation
(``run_reference`` / ``accumulate_reference``).  These tests sweep
random shapes and qparams (per-channel weights, bias, zero-point
extremes, adversarial saturated inputs) and force the integer fallback
via a shrunken float64-exactness limit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.tflite.ops as ops_module
from repro.tflite.interpreter import Interpreter
from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import (
    ArgmaxOp,
    FullyConnectedOp,
    TanhOp,
    fused_stages,
)
from repro.tflite.quantization import qparams_asymmetric
from repro.tflite.tensor import TensorSpec


def _random_fc(rng, in_dim, out_dim, *, zero_point=None, bias=False,
               per_channel=False, out_range=30.0):
    in_qp = qparams_asymmetric(-4.0, 4.0)
    if zero_point is not None:
        in_qp = type(in_qp)(scale=in_qp.scale, zero_point=zero_point,
                            dtype="int8")
    out_qp = qparams_asymmetric(-out_range, out_range)
    w = rng.standard_normal((in_dim, out_dim)).astype(np.float32)
    b = (rng.standard_normal(out_dim) * 5).astype(np.float32) if bias else None
    return FullyConnectedOp.from_float(w, in_qp, out_qp, bias=b,
                                       per_channel=per_channel)


def _adversarial_inputs(rng, batch, in_dim):
    """Random codes plus the saturating corner cases."""
    blocks = [
        rng.integers(-128, 128, (batch, in_dim)).astype(np.int8),
        np.full((1, in_dim), -128, dtype=np.int8),
        np.full((1, in_dim), 127, dtype=np.int8),
        np.zeros((1, in_dim), dtype=np.int8),
    ]
    return np.vstack(blocks)


class TestFastPathEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        in_dim=st.integers(1, 40),
        out_dim=st.integers(1, 12),
        batch=st.integers(1, 9),
        zero_point=st.integers(-128, 127),
        bias=st.booleans(),
        per_channel=st.booleans(),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_run_matches_reference(self, in_dim, out_dim, batch, zero_point,
                                   bias, per_channel, seed):
        rng = np.random.default_rng(seed)
        op = _random_fc(rng, in_dim, out_dim, zero_point=zero_point,
                        bias=bias, per_channel=per_channel)
        x = _adversarial_inputs(rng, batch, in_dim)
        assert op._blas_exact  # real layers are far below the 2^53 bound
        assert op.run(x).tobytes() == op.run_reference(x).tobytes()
        assert op.accumulate(x).tobytes() == \
            op.accumulate_reference(x).tobytes()

    @pytest.mark.parametrize("zero_point", [-128, -1, 0, 127])
    def test_zero_point_extremes(self, rng, zero_point):
        op = _random_fc(rng, 33, 7, zero_point=zero_point, bias=True)
        x = _adversarial_inputs(rng, 6, 33)
        np.testing.assert_array_equal(op.run(x), op.run_reference(x))
        np.testing.assert_array_equal(op.accumulate(x),
                                      op.accumulate_reference(x))

    def test_integer_fallback_forced(self, rng, monkeypatch):
        # A genuine > 2^53 accumulator needs ~5e11 weight rows, far past
        # any constructible array — shrink the limit so an ordinary
        # layer exceeds it and the integer fallback path runs.
        monkeypatch.setattr(ops_module, "_FLOAT64_EXACT_LIMIT", 1)
        op = _random_fc(rng, 24, 5, zero_point=17, bias=True)
        assert not op._blas_exact
        x = _adversarial_inputs(rng, 8, 24)
        np.testing.assert_array_equal(op.run(x), op.run_reference(x))
        np.testing.assert_array_equal(op.accumulate(x),
                                      op.accumulate_reference(x))

    def test_fallback_matches_blas_path(self, rng, monkeypatch):
        op_fast = _random_fc(rng, 19, 6, zero_point=-77, bias=True)
        monkeypatch.setattr(ops_module, "_FLOAT64_EXACT_LIMIT", 1)
        rng2 = np.random.default_rng(1234)
        op_slow = _random_fc(rng2, 19, 6, zero_point=-77, bias=True)
        assert op_fast._blas_exact and not op_slow._blas_exact
        np.testing.assert_array_equal(op_fast.weights, op_slow.weights)
        x = _adversarial_inputs(rng, 5, 19)
        assert op_fast.run(x).tobytes() == op_slow.run(x).tobytes()

    def test_static_bound_skips_scan_only_when_safe(self, rng):
        op = _random_fc(rng, 50, 4)
        # max|x - zp| * |W|.sum(axis=0) (+|bias|) bounds every reachable
        # accumulator; small layers are statically int32-safe.
        assert op._static_int32_safe
        assert op._acc_abs_bound <= 2**31 - 1

    def test_overflow_still_raised_past_static_bound(self):
        # 70k rows of weight 127 with zp = -128 can exceed int32: the
        # static bound is not provable, so the dynamic scan must stay
        # and raise exactly like the seed kernel.
        in_dim = 70_000
        weights = np.full((in_dim, 2), 127, dtype=np.int8)
        in_qp = qparams_asymmetric(-4.0, 4.0)
        in_qp = type(in_qp)(scale=in_qp.scale, zero_point=-128, dtype="int8")
        out_qp = qparams_asymmetric(-30.0, 30.0)
        from repro.tflite.quantization import qparams_symmetric
        op = FullyConnectedOp(weights, in_qp, qparams_symmetric(1.0), out_qp)
        assert not op._static_int32_safe
        assert op._blas_exact  # still exact in float64, just not int32-safe
        hot = np.full((1, in_dim), 127, dtype=np.int8)
        with pytest.raises(OverflowError):
            op.run(hot)
        with pytest.raises(OverflowError):
            op.run_reference(hot)
        cold = np.full((1, in_dim), -96, dtype=np.int8)
        np.testing.assert_array_equal(op.run(cold), op.run_reference(cold))

    def test_weights_and_bias_are_read_only(self, rng):
        op = _random_fc(rng, 8, 3, bias=True)
        with pytest.raises(ValueError):
            op.weights[0, 0] = 0
        with pytest.raises(ValueError):
            op.bias[0] = 0


class TestFusedStages:
    def _chain(self, rng, n=37, d=64, k=9):
        in_qp = qparams_asymmetric(-4.0, 4.0)
        hid_qp = qparams_asymmetric(-40.0, 40.0)
        out_qp = qparams_asymmetric(-20.0, 20.0)
        fc1 = FullyConnectedOp.from_float(
            rng.standard_normal((n, d)).astype(np.float32), in_qp, hid_qp,
            name="encode")
        tanh = TanhOp(hid_qp, name="tanh")
        fc2 = FullyConnectedOp.from_float(
            rng.standard_normal((d, k)).astype(np.float32) * 0.05,
            tanh.output_qparams, out_qp, name="classify")
        argmax = ArgmaxOp(out_qp, name="argmax")
        return [fc1, tanh, fc2, argmax], in_qp

    def test_fc_tanh_fused_bit_identical(self, rng):
        chain, _ = self._chain(rng)
        fc1, tanh = chain[0], chain[1]
        x = _adversarial_inputs(rng, 11, fc1.input_dim)
        fused = fc1.run_tanh_fused(x, tanh)
        unfused = tanh.run(fc1.run(x))
        assert fused.dtype == np.int8
        assert fused.tobytes() == unfused.tobytes()

    def test_fc_argmax_fused_bit_identical(self, rng):
        chain, _ = self._chain(rng)
        fc2, argmax = chain[2], chain[3]
        x = rng.integers(-128, 128, (13, fc2.input_dim)).astype(np.int8)
        fused = fc2.run_argmax_fused(x)
        unfused = argmax.run(fc2.run(x))
        assert fused.dtype == np.int64
        assert fused.shape == unfused.shape
        assert fused.tobytes() == unfused.tobytes()

    def test_argmax_tie_breaks_like_unfused(self):
        # Equal logits must resolve to the first maximum on both paths.
        in_qp = qparams_asymmetric(-4.0, 4.0)
        out_qp = qparams_asymmetric(-4.0, 4.0)
        weights = np.tile(np.array([[5, 5, 5]], dtype=np.int8), (4, 1))
        from repro.tflite.quantization import qparams_symmetric
        fc = FullyConnectedOp(weights, in_qp, qparams_symmetric(1.0), out_qp)
        argmax = ArgmaxOp(out_qp)
        x = np.array([[1, 2, 3, 4], [0, 0, 0, 0]], dtype=np.int8)
        np.testing.assert_array_equal(fc.run_argmax_fused(x),
                                      argmax.run(fc.run(x)))

    def test_stage_plan_shape(self, rng):
        chain, _ = self._chain(rng)
        assert len(fused_stages(chain)) == 2  # FC+TANH, FC+ARGMAX
        assert len(fused_stages(chain[:3])) == 2  # FC+TANH, bare FC
        assert len(fused_stages([chain[1]])) == 1  # bare tanh
        assert len(fused_stages(chain[:1])) == 1  # bare FC

    def test_full_chain_matches_op_by_op(self, rng):
        chain, in_qp = self._chain(rng)
        x = _adversarial_inputs(rng, 17, chain[0].input_dim)
        expected = x
        for op in chain:
            expected = op.run(expected)
        got = x
        for stage in fused_stages(chain):
            got = stage(got)
        assert got.tobytes() == expected.tobytes()

    def test_interpreter_uses_fused_dispatch(self, rng):
        chain, in_qp = self._chain(rng)
        model = FlatModel("hdc", TensorSpec("input", (37,), in_qp), chain)
        interp = Interpreter(model)
        x = _adversarial_inputs(rng, 9, 37)
        expected = x
        for op in chain:
            expected = op.run(expected)
        got = interp.run_quantized(x)
        assert got.tobytes() == expected[..., :].tobytes()
        # Reference semantics end to end: per-op seed kernels.
        ref = chain[1].run(chain[0].run_reference(x))
        ref = chain[3].run(chain[2].run_reference(ref))
        assert got.tobytes() == ref.tobytes()


class TestTanhU8View:
    def test_matches_indexed_lut_on_all_codes(self):
        op = TanhOp(qparams_asymmetric(-3.0, 5.0))
        every = np.arange(-128, 128, dtype=np.int8).reshape(2, 128)
        got = op.run(every)
        expected = op.lut[every.astype(np.int32) + 128]
        assert got.tobytes() == expected.tobytes()

    def test_non_contiguous_input(self, rng):
        op = TanhOp(qparams_asymmetric(-4.0, 4.0))
        wide = rng.integers(-128, 128, (6, 32)).astype(np.int8)
        view = wide[::2, ::4]
        expected = op.lut[view.astype(np.int32) + 128]
        np.testing.assert_array_equal(op.run(view), expected)

    def test_rotated_lut_read_only(self):
        op = TanhOp(qparams_asymmetric(-4.0, 4.0))
        assert not op._lut_u8.flags.writeable
        b = TanhOp(qparams_asymmetric(-4.0, 4.0))
        assert op._lut_u8 is b._lut_u8  # shared like the primary table
