"""Tests for per-channel weight quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Activation, Dense, Network
from repro.tflite import (
    FlatModel,
    FullyConnectedOp,
    Interpreter,
    PerChannelQuantParams,
    convert,
    qparams_asymmetric,
    qparams_per_channel,
)


class TestPerChannelQuantParams:
    def test_from_weights(self, rng):
        w = rng.standard_normal((8, 3)).astype(np.float32)
        qp = qparams_per_channel(w)
        assert qp.num_channels == 3
        assert qp.zero_point == 0

    def test_max_abs_maps_to_qmax_per_channel(self):
        w = np.array([[1.0, 10.0], [-1.0, -10.0]], dtype=np.float32)
        qp = qparams_per_channel(w)
        q = qp.quantize(w)
        assert q[0, 0] == 127 and q[0, 1] == 127

    def test_roundtrip_bounded_per_channel(self, rng):
        w = rng.standard_normal((16, 4)) * np.array([0.01, 0.1, 1.0, 10.0])
        qp = qparams_per_channel(w)
        err = np.abs(qp.dequantize(qp.quantize(w)) - w)
        for channel in range(4):
            assert err[:, channel].max() <= qp.scales[channel] / 2 + 1e-12

    def test_zero_channel_safe(self):
        w = np.zeros((4, 2), dtype=np.float32)
        w[:, 1] = 1.0
        qp = qparams_per_channel(w)
        assert qp.scales[0] == 1.0  # placeholder scale, exact zeros

    def test_validation(self):
        with pytest.raises(ValueError, match="scale"):
            PerChannelQuantParams(scales=(1.0, 0.0))
        with pytest.raises(ValueError, match="channel"):
            PerChannelQuantParams(scales=())
        with pytest.raises(ValueError, match="2-D"):
            qparams_per_channel(np.zeros(4))

    def test_quantize_shape_checked(self):
        qp = PerChannelQuantParams(scales=(1.0, 1.0))
        with pytest.raises(ValueError, match="weights"):
            qp.quantize(np.zeros((4, 3)))


class TestPerChannelFullyConnected:
    def test_more_accurate_than_per_tensor_on_skewed_weights(self, rng):
        # Columns with wildly different ranges are exactly where
        # per-channel wins.
        w = rng.standard_normal((32, 4)).astype(np.float32)
        w *= np.array([0.01, 0.1, 1.0, 10.0], dtype=np.float32)
        in_qp = qparams_asymmetric(-4.0, 4.0)
        out_qp = qparams_asymmetric(-40.0, 40.0)
        per_tensor = FullyConnectedOp.from_float(w, in_qp, out_qp)
        per_channel = FullyConnectedOp.from_float(w, in_qp, out_qp,
                                                  per_channel=True)
        x = rng.uniform(-3, 3, (64, 32)).astype(np.float32)
        xq = in_qp.quantize(x)
        expected = x @ w
        err_tensor = np.abs(
            out_qp.dequantize(per_tensor.run(xq)) - expected
        )
        err_channel = np.abs(
            out_qp.dequantize(per_channel.run(xq)) - expected
        )
        # Small-scale columns benefit enormously.
        assert err_channel[:, 0].max() < err_tensor[:, 0].max()
        assert err_channel.mean() < err_tensor.mean()

    def test_scale_count_validated(self, rng):
        in_qp = qparams_asymmetric(-1, 1)
        wqp = PerChannelQuantParams(scales=(0.1, 0.1, 0.1))
        with pytest.raises(ValueError, match="channels"):
            FullyConnectedOp(np.zeros((4, 2), dtype=np.int8), in_qp, wqp,
                             in_qp)

    def test_bias_per_channel(self, rng):
        w = rng.standard_normal((8, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        in_qp = qparams_asymmetric(-4.0, 4.0)
        out_qp = qparams_asymmetric(-20.0, 20.0)
        op = FullyConnectedOp.from_float(w, in_qp, out_qp, bias=b,
                                         per_channel=True)
        x = rng.uniform(-3, 3, (16, 8)).astype(np.float32)
        got = out_qp.dequantize(op.run(in_qp.quantize(x)))
        assert np.abs(got - (x @ w + b)).max() < 0.6


class TestConverterAndSerialization:
    def _network(self, rng):
        return Network(10, [
            Dense(rng.standard_normal((10, 64)).astype(np.float32),
                  name="encode"),
            Activation("tanh", name="tanh"),
            Dense(rng.standard_normal((64, 4)).astype(np.float32) * 0.1,
                  name="classify"),
        ], name="net")

    def test_convert_per_channel(self, rng):
        net = self._network(rng)
        data = rng.standard_normal((64, 10)).astype(np.float32)
        model = convert(net, data, per_channel=True)
        assert isinstance(model.ops[0].weight_qparams, PerChannelQuantParams)

    def test_per_channel_roundtrip(self, rng):
        net = self._network(rng)
        data = rng.standard_normal((64, 10)).astype(np.float32)
        model = convert(net, data, per_channel=True)
        restored = FlatModel.from_bytes(model.to_bytes())
        x = data[:16]
        np.testing.assert_array_equal(
            Interpreter(model).predict(x), Interpreter(restored).predict(x),
        )
        assert isinstance(restored.ops[0].weight_qparams,
                          PerChannelQuantParams)

    def test_per_channel_at_least_as_accurate(self, rng):
        net = self._network(rng)
        data = rng.standard_normal((256, 10)).astype(np.float32)
        per_tensor = convert(net, data, per_channel=False)
        per_channel = convert(net, data, per_channel=True)
        x = data[:64]
        expected = net.forward(x)
        err_tensor = np.abs(Interpreter(per_tensor).run(x) - expected).mean()
        err_channel = np.abs(Interpreter(per_channel).run(x) - expected).mean()
        assert err_channel <= err_tensor * 1.2

    def test_edge_tpu_accepts_per_channel(self, rng):
        from repro.edgetpu import compile_model
        net = self._network(rng)
        data = rng.standard_normal((64, 10)).astype(np.float32)
        compiled = compile_model(convert(net, data, per_channel=True))
        assert len(compiled.tpu_ops) == 3


@given(seed=st.integers(0, 200), channels=st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_property_per_channel_symmetric_negation(seed, channels):
    """Per-channel quantization is odd: q(-w) == -q(w)."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal((8, channels))
    qp = qparams_per_channel(w)
    np.testing.assert_array_equal(qp.quantize(w), -qp.quantize(-w))
