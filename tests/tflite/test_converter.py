"""Tests for post-training quantization and the reference interpreter."""

import numpy as np
import pytest

from repro.hdc import HDCClassifier
from repro.nn import Activation, Argmax, Dense, Network, from_classifier
from repro.tflite import Interpreter, convert
from repro.tflite.ops import TANH_OUTPUT_QPARAMS


def _blobs(num_samples=400, num_features=10, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_classes, num_features)) * 4.0
    y = np.arange(num_samples) % num_classes
    rng.shuffle(y)
    x = centers[y] + rng.standard_normal((num_samples, num_features))
    return x.astype(np.float32), y.astype(np.int64)


def _float_net(rng, n=10, d=128, k=4, argmax=False):
    layers = [
        Dense(rng.standard_normal((n, d)).astype(np.float32), name="encode"),
        Activation("tanh", name="tanh"),
        Dense(rng.standard_normal((d, k)).astype(np.float32) * 0.1,
              name="classify"),
    ]
    if argmax:
        layers.append(Argmax(name="argmax"))
    return Network(n, layers, name="float-net")


class TestConvert:
    def test_produces_expected_op_chain(self, rng):
        net = _float_net(rng, argmax=True)
        model = convert(net, rng.standard_normal((64, 10)).astype(np.float32))
        assert [op.kind for op in model.ops] == [
            "FULLY_CONNECTED", "TANH", "FULLY_CONNECTED", "ARGMAX",
        ]

    def test_tanh_output_feeds_next_fc(self, rng):
        net = _float_net(rng)
        model = convert(net, rng.standard_normal((64, 10)).astype(np.float32))
        assert model.ops[2].input_qparams == TANH_OUTPUT_QPARAMS

    def test_quantized_scores_close_to_float(self, rng):
        net = _float_net(rng)
        data = rng.standard_normal((256, 10)).astype(np.float32)
        model = convert(net, data)
        interp = Interpreter(model)
        got = interp.run(data[:32])
        expected = net.forward(data[:32])
        # Per-element error bounded by a few output quantization steps.
        assert np.abs(got - expected).max() < \
            4 * model.output_spec.qparams.scale + 0.05 * np.abs(expected).max()

    def test_rejects_empty_calibration(self, rng):
        net = _float_net(rng)
        with pytest.raises(ValueError, match="non-empty"):
            convert(net, np.zeros((0, 10), dtype=np.float32))

    def test_rejects_feature_mismatch(self, rng):
        net = _float_net(rng)
        with pytest.raises(ValueError, match="features"):
            convert(net, np.zeros((8, 7), dtype=np.float32))

    def test_rejects_unsupported_activation(self, rng):
        net = Network(4, [
            Dense(rng.standard_normal((4, 8))),
            Activation("relu"),
        ])
        with pytest.raises(ValueError, match="relu"):
            convert(net, np.zeros((8, 4), dtype=np.float32))

    def test_model_name_defaults_to_network(self, rng):
        net = _float_net(rng)
        model = convert(net, rng.standard_normal((16, 10)).astype(np.float32))
        assert model.name == "float-net"
        named = convert(net, rng.standard_normal((16, 10)).astype(np.float32),
                        name="custom")
        assert named.name == "custom"

    def test_calibration_batching_equivalent(self, rng):
        # Small calibration batches must give the same ranges/model as one
        # big batch.
        net = _float_net(rng)
        data = rng.standard_normal((100, 10)).astype(np.float32)
        a = convert(net, data, calibration_batch=7)
        b = convert(net, data, calibration_batch=100)
        assert a.input_spec.qparams == b.input_spec.qparams
        np.testing.assert_array_equal(a.ops[0].weights, b.ops[0].weights)


class TestInterpreter:
    def test_predict_from_scores_and_argmax_agree(self, rng):
        net_scores = _float_net(rng)
        net_argmax = Network(
            net_scores.input_dim,
            net_scores.layers + [Argmax(name="argmax")],
        )
        data = rng.standard_normal((128, 10)).astype(np.float32)
        model_scores = convert(net_scores, data)
        model_argmax = convert(net_argmax, data)
        x = data[:20]
        np.testing.assert_array_equal(
            Interpreter(model_scores).predict(x),
            Interpreter(model_argmax).predict(x),
        )

    def test_single_sample(self, rng):
        net = _float_net(rng)
        data = rng.standard_normal((64, 10)).astype(np.float32)
        interp = Interpreter(convert(net, data))
        out = interp.run(data[0])
        assert out.shape == (4,)

    def test_rejects_float_for_quantized_entry(self, rng):
        net = _float_net(rng)
        interp = Interpreter(
            convert(net, rng.standard_normal((16, 10)).astype(np.float32))
        )
        with pytest.raises(TypeError, match="int8"):
            interp.run_quantized(np.zeros((1, 10), dtype=np.float32))

    def test_rejects_wrong_width(self, rng):
        net = _float_net(rng)
        interp = Interpreter(
            convert(net, rng.standard_normal((16, 10)).astype(np.float32))
        )
        with pytest.raises(ValueError, match="width"):
            interp.run_quantized(np.zeros((1, 12), dtype=np.int8))


class TestEndToEndAccuracy:
    def test_quantized_hdc_model_accuracy_close_to_float(self):
        # The paper's Fig. 7 claim at unit-test scale: int8 inference
        # accuracy is similar to the float model.
        x, y = _blobs(num_samples=600)
        model = HDCClassifier(dimension=1024, seed=0)
        model.fit(x[:450], y[:450], iterations=5)
        float_acc = model.score(x[450:], y[450:])
        net = from_classifier(model)
        flat = convert(net, x[:256])
        q_pred = Interpreter(flat).predict(x[450:])
        q_acc = float(np.mean(q_pred == y[450:]))
        assert q_acc > float_acc - 0.05

    def test_quantized_isolet_accuracy(self, small_isolet):
        ds = small_isolet
        model = HDCClassifier(dimension=2048, seed=0)
        model.fit(ds.train_x, ds.train_y, iterations=6)
        float_acc = model.score(ds.test_x, ds.test_y)
        flat = convert(from_classifier(model), ds.train_x[:200])
        q_acc = float(np.mean(
            Interpreter(flat).predict(ds.test_x) == ds.test_y
        ))
        assert q_acc > float_acc - 0.06
