"""Tests for FlatModel serialization and structure."""

import numpy as np
import pytest

from repro.tflite import FlatModel, Interpreter, TensorSpec
from repro.tflite.ops import ArgmaxOp, FullyConnectedOp, TanhOp
from repro.tflite.quantization import qparams_asymmetric, qparams_symmetric


def _tiny_model(rng, with_argmax=True, with_bias=False, n=6, d=16, k=3):
    in_qp = qparams_asymmetric(-4.0, 4.0)
    hid_qp = qparams_asymmetric(-12.0, 12.0)
    out_qp = qparams_asymmetric(-8.0, 8.0)
    w1 = rng.standard_normal((n, d)).astype(np.float32)
    w2 = rng.standard_normal((d, k)).astype(np.float32)
    bias = rng.standard_normal(d).astype(np.float32) if with_bias else None
    fc1 = FullyConnectedOp.from_float(w1, in_qp, hid_qp, bias=bias, name="fc1")
    tanh = TanhOp(hid_qp, name="tanh")
    fc2 = FullyConnectedOp.from_float(w2, tanh.output_qparams, out_qp, name="fc2")
    ops = [fc1, tanh, fc2]
    if with_argmax:
        ops.append(ArgmaxOp(out_qp, name="argmax"))
    return FlatModel(
        name="tiny",
        input_spec=TensorSpec("input", (n,), in_qp),
        ops=ops,
    )


class TestStructure:
    def test_output_spec_inferred(self, rng):
        model = _tiny_model(rng, with_argmax=False)
        assert model.output_spec.shape == (3,)
        assert not model.output_is_index

    def test_argmax_output(self, rng):
        model = _tiny_model(rng)
        assert model.output_spec.shape == (1,)
        assert model.output_is_index

    def test_weight_bytes(self, rng):
        model = _tiny_model(rng, with_argmax=False)
        # 6*16 + 16*3 int8 weights plus the 256-byte tanh LUT.
        assert model.weight_bytes() == 6 * 16 + 16 * 3 + 256

    def test_macs(self, rng):
        model = _tiny_model(rng)
        assert model.macs_per_sample() == 6 * 16 + 16 * 3

    def test_rejects_empty_ops(self, rng):
        with pytest.raises(ValueError, match="at least one op"):
            FlatModel("bad", TensorSpec("input", (4,),
                                        qparams_asymmetric(-1, 1)), [])

    def test_rejects_unquantized_input(self, rng):
        model_ops = _tiny_model(rng).ops
        with pytest.raises(ValueError, match="quantized"):
            FlatModel("bad", TensorSpec("input", (6,), None), model_ops)

    def test_rejects_shape_break(self, rng):
        ops = _tiny_model(rng).ops
        with pytest.raises(ValueError, match="input dim"):
            FlatModel("bad", TensorSpec("input", (7,),
                                        qparams_asymmetric(-1, 1)), ops)


class TestSerialization:
    def test_roundtrip_structure(self, rng):
        model = _tiny_model(rng, with_bias=True)
        restored = FlatModel.from_bytes(model.to_bytes())
        assert restored.name == model.name
        assert restored.input_spec == model.input_spec
        assert [op.kind for op in restored.ops] == [op.kind for op in model.ops]

    def test_roundtrip_bit_identical_execution(self, rng):
        model = _tiny_model(rng, with_bias=True)
        restored = FlatModel.from_bytes(model.to_bytes())
        x = rng.uniform(-3, 3, (20, 6)).astype(np.float32)
        np.testing.assert_array_equal(
            Interpreter(model).predict(x), Interpreter(restored).predict(x)
        )

    def test_roundtrip_weights_exact(self, rng):
        model = _tiny_model(rng, with_bias=True)
        restored = FlatModel.from_bytes(model.to_bytes())
        np.testing.assert_array_equal(restored.ops[0].weights,
                                      model.ops[0].weights)
        np.testing.assert_array_equal(restored.ops[0].bias, model.ops[0].bias)

    def test_serialization_deterministic(self, rng):
        model = _tiny_model(rng)
        assert model.to_bytes() == model.to_bytes()

    def test_size_dominated_by_weights(self, rng):
        model = _tiny_model(rng, with_argmax=False)
        weights = 6 * 16 + 16 * 3
        assert model.size_bytes() >= weights
        assert model.size_bytes() < weights + 1024  # small header overhead

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            FlatModel.from_bytes(b"NOPE" + b"\x00" * 100)

    def test_save_load(self, rng, tmp_path):
        model = _tiny_model(rng)
        path = tmp_path / "model.rtfl"
        model.save(path)
        restored = FlatModel.load(path)
        assert restored.name == model.name
        assert path.stat().st_size == model.size_bytes()

    def test_repr(self, rng):
        assert "FULLY_CONNECTED" in repr(_tiny_model(rng))
