"""Tests for the quantized operator kernels."""

import numpy as np
import pytest

from repro.tflite import FullyConnectedOp, TanhOp, ArgmaxOp
from repro.tflite.ops import TANH_OUTPUT_QPARAMS
from repro.tflite.quantization import qparams_asymmetric, qparams_symmetric


def _fc_from_float(rng, in_dim=8, out_dim=4, in_range=4.0, out_range=20.0,
                   bias=False):
    w = rng.standard_normal((in_dim, out_dim)).astype(np.float32)
    in_qp = qparams_asymmetric(-in_range, in_range)
    out_qp = qparams_asymmetric(-out_range, out_range)
    b = rng.standard_normal(out_dim).astype(np.float32) if bias else None
    return FullyConnectedOp.from_float(w, in_qp, out_qp, bias=b), w, b, in_qp, out_qp


class TestFullyConnected:
    def test_approximates_float_matmul(self, rng):
        op, w, _, in_qp, out_qp = _fc_from_float(rng)
        x = rng.uniform(-3, 3, (16, 8)).astype(np.float32)
        expected = x @ w
        got = out_qp.dequantize(op.run(in_qp.quantize(x)))
        # Error bound: quantization steps propagate roughly linearly.
        assert np.abs(got - expected).max() < 0.5

    def test_bias_applied(self, rng):
        op, w, b, in_qp, out_qp = _fc_from_float(rng, bias=True)
        x = rng.uniform(-3, 3, (8, 8)).astype(np.float32)
        got = out_qp.dequantize(op.run(in_qp.quantize(x)))
        assert np.abs(got - (x @ w + b)).max() < 0.5

    def test_zero_input_zero_weights(self):
        in_qp = qparams_asymmetric(-1.0, 1.0)
        out_qp = qparams_asymmetric(-1.0, 1.0)
        op = FullyConnectedOp.from_float(np.zeros((4, 2), dtype=np.float32),
                                         in_qp, out_qp)
        out = op.run(in_qp.quantize(np.zeros((1, 4))))
        np.testing.assert_allclose(out_qp.dequantize(out), 0.0, atol=out_qp.scale)

    def test_accumulator_is_int32(self, rng):
        op, _, _, in_qp, _ = _fc_from_float(rng)
        acc = op.accumulate(in_qp.quantize(rng.uniform(-3, 3, (4, 8))))
        assert acc.dtype == np.int32

    def test_output_clamped_to_int8(self, rng):
        # A tiny output range forces saturation.
        w = np.ones((4, 2), dtype=np.float32)
        in_qp = qparams_asymmetric(-10.0, 10.0)
        out_qp = qparams_asymmetric(-0.1, 0.1)
        op = FullyConnectedOp.from_float(w, in_qp, out_qp)
        out = op.run(in_qp.quantize(np.full((1, 4), 10.0)))
        assert out.max() <= 127 and out.min() >= -128

    def test_weight_bytes(self, rng):
        op, _, _, _, _ = _fc_from_float(rng, in_dim=8, out_dim=4)
        assert op.weight_bytes == 32
        op_b, _, _, _, _ = _fc_from_float(rng, in_dim=8, out_dim=4, bias=True)
        assert op_b.weight_bytes == 32 + 16

    def test_macs(self, rng):
        op, _, _, _, _ = _fc_from_float(rng, in_dim=8, out_dim=4)
        assert op.macs_per_sample() == 32

    def test_output_dim_checked(self, rng):
        op, _, _, _, _ = _fc_from_float(rng)
        with pytest.raises(ValueError, match="input dim"):
            op.output_dim(99)

    def test_rejects_float_input(self, rng):
        op, _, _, _, _ = _fc_from_float(rng)
        with pytest.raises(TypeError, match="int8"):
            op.run(np.zeros((1, 8), dtype=np.float32))

    def test_rejects_float_weights(self, rng):
        in_qp = qparams_asymmetric(-1, 1)
        with pytest.raises(TypeError, match="int8"):
            FullyConnectedOp(np.zeros((2, 2), dtype=np.float32), in_qp,
                             qparams_symmetric(1.0), in_qp)

    def test_rejects_asymmetric_weights(self):
        in_qp = qparams_asymmetric(-1, 1)
        bad_wqp = qparams_asymmetric(0.0, 2.0)
        with pytest.raises(ValueError, match="symmetric"):
            FullyConnectedOp(np.zeros((2, 2), dtype=np.int8), in_qp, bad_wqp,
                             in_qp)


class TestTanh:
    def test_fixed_output_qparams(self):
        op = TanhOp(qparams_asymmetric(-4.0, 4.0))
        assert op.output_qparams == TANH_OUTPUT_QPARAMS
        assert op.output_qparams.scale == 1.0 / 128.0
        assert op.output_qparams.zero_point == 0

    def test_matches_float_tanh(self, rng):
        in_qp = qparams_asymmetric(-4.0, 4.0)
        op = TanhOp(in_qp)
        x = rng.uniform(-4, 4, (8, 16)).astype(np.float32)
        xq = in_qp.quantize(x)
        got = op.output_qparams.dequantize(op.run(xq))
        expected = np.tanh(in_qp.dequantize(xq))
        assert np.abs(got - expected).max() <= 1.0 / 128.0 + 1e-9

    def test_saturation(self):
        in_qp = qparams_asymmetric(-100.0, 100.0)
        op = TanhOp(in_qp)
        out = op.run(np.array([[127, -128]], dtype=np.int8))
        np.testing.assert_array_equal(out.ravel(), [127, -128])

    def test_monotone_lut(self):
        op = TanhOp(qparams_asymmetric(-5.0, 5.0))
        assert (np.diff(op.lut.astype(np.int32)) >= 0).all()

    def test_shape_preserving(self):
        op = TanhOp(qparams_asymmetric(-1, 1))
        assert op.output_dim(77) == 77

    def test_rejects_float_input(self):
        op = TanhOp(qparams_asymmetric(-1, 1))
        with pytest.raises(TypeError, match="int8"):
            op.run(np.zeros((1, 4), dtype=np.float32))

    def test_rejects_non_int8_qparams(self):
        with pytest.raises(ValueError, match="int8"):
            TanhOp(qparams_asymmetric(-1, 1, dtype="int16"))

    def test_lut_shared_across_instances(self):
        # Ops with the same input grid share one cached read-only table;
        # a different grid gets a different table.
        a = TanhOp(qparams_asymmetric(-4.0, 4.0))
        b = TanhOp(qparams_asymmetric(-4.0, 4.0))
        c = TanhOp(qparams_asymmetric(-2.0, 2.0))
        assert a.lut is b.lut
        assert c.lut is not a.lut
        assert not a.lut.flags.writeable
        with pytest.raises(ValueError):
            a.lut[0] = 0


class TestArgmax:
    def test_picks_max_logit(self):
        op = ArgmaxOp(TANH_OUTPUT_QPARAMS)
        x = np.array([[3, -5, 9], [1, 0, -1]], dtype=np.int8)
        np.testing.assert_array_equal(op.run(x).ravel(), [2, 0])

    def test_output_is_int64(self):
        op = ArgmaxOp(TANH_OUTPUT_QPARAMS)
        assert op.run(np.zeros((2, 3), dtype=np.int8)).dtype == np.int64

    def test_output_dim(self):
        op = ArgmaxOp(TANH_OUTPUT_QPARAMS)
        assert op.output_dim(10) == 1
        with pytest.raises(ValueError):
            op.output_dim(0)

    def test_no_weights(self):
        assert ArgmaxOp(TANH_OUTPUT_QPARAMS).weight_bytes == 0
