"""Tests for affine quantization and calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tflite import (
    CalibrationObserver,
    QuantParams,
    qparams_asymmetric,
    qparams_symmetric,
)


class TestQuantParams:
    def test_roundtrip_error_bounded_by_half_step(self, rng):
        qp = qparams_asymmetric(-4.0, 4.0)
        real = rng.uniform(-4, 4, 1000)
        recovered = qp.dequantize(qp.quantize(real))
        assert np.abs(recovered - real).max() <= qp.scale / 2 + 1e-9

    def test_clamping(self):
        qp = qparams_asymmetric(-1.0, 1.0)
        q = qp.quantize(np.array([100.0, -100.0]))
        assert q[0] == qp.qmax
        assert q[1] == qp.qmin

    def test_zero_is_exactly_representable(self):
        # TFLite invariant: real 0.0 quantizes and dequantizes exactly.
        for rmin, rmax in [(-3.7, 9.2), (0.5, 8.0), (-6.0, -1.0)]:
            qp = qparams_asymmetric(rmin, rmax)
            assert qp.dequantize(qp.quantize(np.array([0.0])))[0] == 0.0

    def test_int8_range_properties(self):
        qp = QuantParams(scale=0.5, zero_point=3, dtype="int8")
        assert qp.qmin == -128 and qp.qmax == 127
        assert qp.numpy_dtype == np.int8

    def test_range(self):
        qp = QuantParams(scale=1.0, zero_point=0, dtype="int8")
        assert qp.range() == (-128.0, 127.0)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            QuantParams(scale=0.0, zero_point=0)

    def test_rejects_zero_point_out_of_range(self):
        with pytest.raises(ValueError, match="zero_point"):
            QuantParams(scale=1.0, zero_point=200, dtype="int8")

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            QuantParams(scale=1.0, zero_point=0, dtype="float8")


class TestAsymmetric:
    def test_covers_range(self):
        qp = qparams_asymmetric(-2.0, 6.0)
        rmin, rmax = qp.range()
        assert rmin <= -2.0 + qp.scale
        assert rmax >= 6.0 - qp.scale

    def test_positive_only_range_extended_to_zero(self):
        qp = qparams_asymmetric(2.0, 6.0)
        rmin, _ = qp.range()
        assert rmin <= 0.0 + 1e-9

    def test_degenerate_range(self):
        qp = qparams_asymmetric(0.0, 0.0)
        assert qp.quantize(np.array([0.0]))[0] == qp.zero_point

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="rmin"):
            qparams_asymmetric(1.0, -1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            qparams_asymmetric(-np.inf, 1.0)

    @given(rmin=st.floats(-1e4, 0.0), rmax=st.floats(0.0, 1e4))
    @settings(max_examples=50, deadline=None)
    def test_property_quantize_within_dtype(self, rmin, rmax):
        qp = qparams_asymmetric(rmin, rmax)
        values = np.linspace(rmin, rmax, 64)
        q = qp.quantize(values)
        assert q.min() >= qp.qmin and q.max() <= qp.qmax


class TestSymmetric:
    def test_zero_point_is_zero(self):
        qp = qparams_symmetric(3.5)
        assert qp.zero_point == 0

    def test_max_abs_maps_to_qmax(self):
        qp = qparams_symmetric(2.0)
        assert qp.quantize(np.array([2.0]))[0] == 127

    def test_symmetric_negation(self, rng):
        qp = qparams_symmetric(4.0)
        v = rng.uniform(-3.9, 3.9, 100)
        np.testing.assert_array_equal(qp.quantize(v), -qp.quantize(-v))

    def test_zero_max_abs(self):
        qp = qparams_symmetric(0.0)
        assert qp.quantize(np.array([0.0]))[0] == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="max_abs"):
            qparams_symmetric(-1.0)


class TestCalibrationObserver:
    def test_tracks_min_max_across_batches(self, rng):
        obs = CalibrationObserver()
        obs.observe(np.array([1.0, 5.0]))
        obs.observe(np.array([-3.0, 2.0]))
        assert obs.rmin == -3.0 and obs.rmax == 5.0
        assert obs.batches == 2

    def test_qparams_cover_observed(self):
        obs = CalibrationObserver()
        obs.observe(np.array([-1.0, 7.0]))
        qp = obs.qparams()
        rmin, rmax = qp.range()
        assert rmin <= -1.0 + qp.scale and rmax >= 7.0 - qp.scale

    def test_empty_batch_ignored(self):
        obs = CalibrationObserver()
        obs.observe(np.array([]))
        assert obs.batches == 0

    def test_unobserved_raises(self):
        with pytest.raises(RuntimeError, match="no calibration"):
            CalibrationObserver().qparams()
