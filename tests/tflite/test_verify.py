"""Tests for the quantization verification tool."""

import numpy as np
import pytest

from repro.nn import Activation, Argmax, Dense, Network
from repro.tflite import convert, verify


def _network(rng, n=10, d=128, k=4, argmax=False):
    layers = [
        Dense(rng.standard_normal((n, d)).astype(np.float32), name="encode"),
        Activation("tanh", name="tanh"),
        Dense(rng.standard_normal((d, k)).astype(np.float32) * 0.1,
              name="classify"),
    ]
    if argmax:
        layers.append(Argmax(name="argmax"))
    return Network(n, layers, name="net")


class TestVerify:
    @pytest.fixture()
    def setup(self, rng):
        net = _network(rng)
        data = rng.standard_normal((256, 10)).astype(np.float32)
        model = convert(net, data)
        return net, model, data

    def test_report_structure(self, setup):
        net, model, data = setup
        report = verify(net, model, data[:64])
        assert report.num_samples == 64
        assert [s.name for s in report.layers] == [
            "encode", "tanh", "classify",
        ]

    def test_high_agreement_for_calibrated_model(self, setup):
        net, model, data = setup
        report = verify(net, model, data[:128])
        assert report.prediction_agreement > 0.9

    def test_sqnr_reasonable(self, setup):
        net, model, data = setup
        report = verify(net, model, data[:64])
        for stats in report.layers:
            assert stats.sqnr_db > 10.0, stats.name
            assert stats.rmse >= 0.0
            assert stats.max_abs_error >= stats.rmse

    def test_worst_layer(self, setup):
        net, model, data = setup
        report = verify(net, model, data[:64])
        worst = report.worst_layer
        assert worst.sqnr_db == min(s.sqnr_db for s in report.layers)

    def test_argmax_model_skips_final_layer(self, rng):
        net = _network(rng, argmax=True)
        data = rng.standard_normal((128, 10)).astype(np.float32)
        model = convert(net, data)
        report = verify(net, model, data[:32])
        assert [s.name for s in report.layers] == [
            "encode", "tanh", "classify",
        ]
        assert 0.0 <= report.prediction_agreement <= 1.0

    def test_miscalibrated_model_flagged(self, rng):
        # Calibrate on near-zero data, probe far outside the calibrated
        # range: errors explode and SQNR collapses.
        net = _network(rng)
        tiny = (rng.standard_normal((64, 10)) * 0.01).astype(np.float32)
        model = convert(net, tiny)
        probe = (rng.standard_normal((64, 10)) * 10.0).astype(np.float32)
        bad = verify(net, model, probe)
        good = verify(net, convert(net, probe), probe)
        assert bad.worst_layer.sqnr_db < good.worst_layer.sqnr_db

    def test_summary_readable(self, setup):
        net, model, data = setup
        text = verify(net, model, data[:16]).summary()
        assert "prediction agreement" in text
        assert "sqnr" in text

    def test_validation(self, setup):
        net, model, data = setup
        with pytest.raises(ValueError, match="non-empty"):
            verify(net, model, np.zeros((0, 10), dtype=np.float32))
        with pytest.raises(ValueError, match="features"):
            verify(net, model, np.zeros((4, 7), dtype=np.float32))
