"""Property tests for DPQ-HD pruning and sub-int8 quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.dpq import (
    CompressedModel,
    compress,
    dequantize_class_matrix,
    dimension_saliency,
    prune_dimensions,
    quantize_class_matrix,
)
from repro.hdc.bagging import FusedHDCModel


def _fused(rng, features=8, dimension=40, classes=3, widths=None):
    return FusedHDCModel(
        base_matrix=rng.normal(size=(features, dimension)).astype(
            np.float32),
        class_matrix=rng.normal(size=(dimension, classes)).astype(
            np.float32),
        num_classes=classes,
        sub_widths=list(widths) if widths else [],
    )


class TestSaliency:
    def test_l2_over_classes(self):
        matrix = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_allclose(dimension_saliency(matrix),
                                   [5.0, 0.0, 1.0])

    def test_rejects_vector(self):
        with pytest.raises(ValueError):
            dimension_saliency(np.zeros(4))


class TestPruning:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_keeps_exactly_the_top_k_magnitudes(self, seed, keep):
        # The kept saliencies are *exactly* the k largest — not an
        # approximation, for any seed and any budget.
        rng = np.random.default_rng(seed)
        fused = _fused(rng)
        saliency = dimension_saliency(fused.class_matrix)
        _, kept = prune_dimensions(fused, keep, decompose=False)
        assert len(kept) == keep
        assert len(np.unique(kept)) == keep
        np.testing.assert_allclose(
            np.sort(saliency[kept]), np.sort(saliency)[-keep:],
        )

    def test_ties_break_toward_lower_index(self):
        rng = np.random.default_rng(0)
        fused = _fused(rng, dimension=6)
        fused.class_matrix[:] = 1.0  # all saliencies equal
        _, kept = prune_dimensions(fused, 3, decompose=False)
        np.testing.assert_array_equal(kept, [0, 1, 2])

    def test_pruned_weights_are_the_original_slices(self):
        rng = np.random.default_rng(1)
        fused = _fused(rng)
        pruned, kept = prune_dimensions(fused, 10, decompose=False)
        np.testing.assert_array_equal(pruned.base_matrix,
                                      fused.base_matrix[:, kept])
        np.testing.assert_array_equal(pruned.class_matrix,
                                      fused.class_matrix[kept, :])

    def test_block_decomposition_respects_sub_widths(self):
        rng = np.random.default_rng(2)
        fused = _fused(rng, dimension=40, widths=[10, 10, 10, 10])
        pruned, kept = prune_dimensions(fused, 20)
        # Proportional apportionment: 5 survivors per equal block.
        assert pruned.sub_widths == [5, 5, 5, 5]
        for block in range(4):
            lo, hi = block * 10, (block + 1) * 10
            block_kept = kept[(kept >= lo) & (kept < hi)]
            assert len(block_kept) == 5
            saliency = dimension_saliency(fused.class_matrix[lo:hi])
            np.testing.assert_allclose(
                np.sort(saliency[block_kept - lo]),
                np.sort(saliency)[-5:],
            )

    @pytest.mark.parametrize("keep", [0, 41])
    def test_invalid_budget(self, keep):
        fused = _fused(np.random.default_rng(3))
        with pytest.raises(ValueError):
            prune_dimensions(fused, keep)


class TestQuantization:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=2, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_error_bounded_by_half_step(self, seed, bits):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(30, 4)) * rng.uniform(0.01, 10.0)
        codes, scales = quantize_class_matrix(matrix, bits)
        assert codes.dtype == np.int8
        levels = 2 ** (bits - 1) - 1
        assert np.abs(codes).max() <= levels
        restored = dequantize_class_matrix(codes, scales)
        # Symmetric round-to-nearest: error <= scale / 2 per class.
        error = np.abs(restored.astype(np.float64) - matrix)
        assert np.all(error <= scales[None, :] / 2 + 1e-12)

    def test_zero_column_is_exact(self):
        matrix = np.zeros((5, 2))
        matrix[:, 1] = [1.0, -2.0, 0.5, 0.0, 2.0]
        codes, scales = quantize_class_matrix(matrix, 4)
        assert scales[0] == 0.0
        np.testing.assert_array_equal(codes[:, 0], 0)
        np.testing.assert_array_equal(
            dequantize_class_matrix(codes, scales)[:, 0], 0.0
        )

    def test_peaks_survive_exactly(self):
        # The per-class extremes land on the top quantization level, so
        # dequantization reproduces every column's peak magnitude.
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(20, 3))
        codes, scales = quantize_class_matrix(matrix, 4)
        restored = dequantize_class_matrix(codes, scales)
        np.testing.assert_allclose(np.max(np.abs(restored), axis=0),
                                   np.max(np.abs(matrix), axis=0),
                                   rtol=1e-6)

    @pytest.mark.parametrize("bits", [1, 9])
    def test_invalid_bits(self, bits):
        with pytest.raises(ValueError):
            quantize_class_matrix(np.zeros((4, 2)), bits)


class TestCompress:
    def test_compress_pipeline(self):
        rng = np.random.default_rng(7)
        fused = _fused(rng, dimension=40, widths=[20, 20])
        result = compress(fused, 16, bits=4)
        assert isinstance(result, CompressedModel)
        assert result.dimension == 16
        assert result.model.dimension == 16
        assert result.original_dimension == 40
        assert result.compression_ratio == pytest.approx(
            (40 * 32) / (16 * 4)
        )
        # The model's class weights are exactly the dequantized codes.
        np.testing.assert_array_equal(
            result.model.class_matrix,
            dequantize_class_matrix(result.codes, result.scales),
        )
        # The original is untouched.
        assert fused.dimension == 40

    def test_accuracy_monotone_in_budget(self):
        # On an easy synthetic task, a bigger kept-dimension budget
        # never hurts (the top-k rankings are nested).
        rng = np.random.default_rng(11)
        centers = rng.normal(size=(3, 12)) * 2.0
        labels = rng.integers(0, 3, size=400)
        x = (centers[labels]
             + rng.normal(size=(400, 12)) * 0.7).astype(np.float32)
        base = rng.normal(size=(12, 256)).astype(np.float32)
        encoded = np.tanh(x @ base)
        classes = np.stack([encoded[labels == k].sum(axis=0)
                            for k in range(3)], axis=1)
        fused = FusedHDCModel(base_matrix=base,
                              class_matrix=classes.astype(np.float32),
                              num_classes=3)
        accuracies = [
            compress(fused, keep, bits=6).model.score(x, labels)
            for keep in (16, 64, 256)
        ]
        assert accuracies == sorted(accuracies)
        assert accuracies[-1] >= fused.score(x, labels) - 0.02
