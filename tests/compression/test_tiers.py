"""Tests for LDC distillation and the compiled tier ladder."""

import numpy as np
import pytest

from repro.compression import distill
from repro.compression.tiers import (
    DEFAULT_TIER_SPECS,
    TierSet,
    TierSpec,
    build_tiers,
    compiled_predict,
)
from repro.data.streams import DriftingStream, StreamConfig
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer


@pytest.fixture(scope="module")
def trained():
    stream = DriftingStream(
        StreamConfig(num_features=16, num_classes=3, drift_rate=0.0),
        seed=3,
    )
    x, y = stream.next_batch(300)
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=4, dimension=512, iterations=3), seed=7,
    )
    trainer.fit(x, y)
    return trainer.fuse(), x, y


SPECS = (
    TierSpec("full"),
    TierSpec("compressed", "dpq", dimension=128),
    TierSpec("tiny", "ldc", dimension=64),
)


class TestDistill:
    def test_student_tracks_teacher(self, trained):
        fused, x, y = trained
        student = distill(fused, x, dimension=64, seed=0)
        assert student.dimension == 64
        assert student.num_classes == fused.num_classes
        # The student learned the teacher's decision surface, not noise.
        agreement = np.mean(student.predict(x) == fused.predict(x))
        assert agreement > 0.8

    def test_deterministic_per_seed(self, trained):
        fused, x, _ = trained
        a = distill(fused, x, dimension=32, seed=5)
        b = distill(fused, x, dimension=32, seed=5)
        np.testing.assert_array_equal(a.base_matrix, b.base_matrix)
        np.testing.assert_array_equal(a.class_matrix, b.class_matrix)

    def test_invalid_inputs(self, trained):
        fused, x, _ = trained
        with pytest.raises(ValueError):
            distill(fused, x[:, :4], dimension=32)
        with pytest.raises(ValueError):
            distill(fused, x, dimension=0)


class TestTierSpec:
    def test_degraded_needs_dimension(self):
        with pytest.raises(ValueError):
            TierSpec("c", "dpq")
        with pytest.raises(ValueError):
            TierSpec("c", "prune")
        with pytest.raises(ValueError):
            TierSpec("")


class TestBuildTiers:
    @pytest.fixture(scope="class")
    def ladder(self, trained):
        fused, x, y = trained
        return build_tiers(fused, x[:96], specs=SPECS,
                           evaluation=(x, y))

    def test_ladder_shape(self, ladder, trained):
        fused, _, _ = trained
        assert isinstance(ladder, TierSet)
        assert ladder.names == ["full", "compressed", "tiny"]
        assert [t.dimension for t in ladder] == [512, 128, 64]
        assert ladder[0].fused is fused
        # Strictly narrowing means strictly cheaper on-chip.
        weights = [t.weight_bytes for t in ladder]
        assert weights == sorted(weights, reverse=True)

    def test_build_accuracy_measured_through_compiled_ops(self, ladder,
                                                          trained):
        _, x, y = trained
        for tier in ladder:
            assert tier.build_accuracy is not None
            expected = float(np.mean(
                compiled_predict(tier.compiled, x) == y
            ))
            assert tier.build_accuracy == pytest.approx(expected)
        # Degradation costs a bounded amount on the build set.
        assert ladder[1].build_accuracy >= ladder[0].build_accuracy - 0.05
        assert ladder[2].build_accuracy >= ladder[0].build_accuracy - 0.05

    def test_compiled_full_is_reused(self, trained):
        fused, x, _ = trained
        ladder = build_tiers(fused, x[:96], specs=SPECS)
        again = build_tiers(fused, x[:96], specs=SPECS,
                            compiled_full=ladder[0].compiled)
        assert again[0].compiled is ladder[0].compiled
        assert again[0].build_accuracy is None

    def test_default_specs_clamp_to_small_models(self, trained):
        # The paper-scale default ladder (d=2048/256) must still build
        # for a d=512 model: degraded widths clamp below the model.
        fused, x, _ = trained
        ladder = build_tiers(fused, x[:96], specs=DEFAULT_TIER_SPECS)
        dims = [t.dimension for t in ladder]
        assert dims[0] == 512
        assert dims == sorted(dims, reverse=True)
        assert len(set(dims)) == len(dims)

    def test_first_spec_must_be_full(self, trained):
        fused, x, _ = trained
        with pytest.raises(ValueError):
            build_tiers(fused, x[:96],
                        specs=(TierSpec("c", "dpq", dimension=64),))
        with pytest.raises(ValueError):
            build_tiers(fused, x[:96],
                        specs=(TierSpec("full"), TierSpec("f2")))

    def test_summary(self, ladder):
        summary = ladder.summary()
        assert summary["schema"] == "repro.tiers/1"
        assert [t["name"] for t in summary["tiers"]] == ladder.names

    def test_tierset_validation(self, ladder):
        with pytest.raises(ValueError):
            TierSet([])
        with pytest.raises(ValueError):
            TierSet([ladder[0], ladder[0]])
        with pytest.raises(ValueError):
            TierSet([ladder[1], ladder[0]])
