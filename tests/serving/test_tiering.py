"""Tests for compression-tiered graceful degradation in the server."""

import numpy as np
import pytest

from repro.compression.tiers import TierSpec, build_tiers
from repro.config import ServeConfig, TierPolicy
from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import DevicePool
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
from repro.observability.metrics import MetricsRegistry
from repro.serving import ArrivalProcess, InferenceServer, RequestStream

NUM_FEATURES = 16
NUM_CLASSES = 3


BURST_POLICY = TierPolicy(queue_high=16, headroom_s=0.0001)


@pytest.fixture(scope="module")
def tier_setup():
    """A trained model, its tier ladder, and calm + bursty traces.

    The full model is wide (d=4096) so the per-batch invoke gap
    between tiers is large against the fixed USB/host overhead; the
    bursty trace's sustained 64-request showers overrun one device's
    full-tier capacity, which is what forces shedding.
    """
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=9,
    )
    x, y = stream.next_batch(300)
    trainer = BaggingHDCTrainer(
        BaggingConfig(num_models=4, dimension=4096, iterations=3),
        seed=7,
    )
    trainer.fit(x, y)
    fused = trainer.fuse()
    ladder = build_tiers(
        fused, x[:96],
        specs=(TierSpec("full"),
               TierSpec("compressed", "dpq", dimension=512),
               TierSpec("tiny", "ldc", dimension=256)),
        evaluation=(x, y),
    )
    calm = list(RequestStream(
        stream, ArrivalProcess(2000.0, "poisson", seed=5),
        deadline_s=0.01, drift_every=0,
    ).generate(200))
    bursty = list(RequestStream(
        stream, ArrivalProcess(300000.0, "bursty", seed=6,
                               burst_factor=8.0, burst_length=64,
                               calm_length=128),
        deadline_s=0.0004, drift_every=0,
    ).generate(1200))
    return ladder, calm, bursty


def _server(ladder, policy=None, metrics=None, tracing=False):
    pool = DevicePool(1, ladder[0].compiled.arch)
    pool.load_replicated(ladder[0].compiled)
    config = ServeConfig(max_batch=64, tiers=policy, tracing=tracing)
    return InferenceServer(pool, config=config, tiers=ladder,
                           metrics=metrics)


class TestTierSelection:
    def test_never_sheds_with_ample_headroom(self, tier_setup):
        ladder, calm, _ = tier_setup
        report = _server(ladder).serve(calm)
        assert report.tier_names == ["full", "compressed", "tiny"]
        assert report.tier_sheds == 0
        assert report.tier_batches[0] == report.num_batches
        assert set(np.unique(report.request_tiers)) == {0}
        assert report.tier_served == [report.served, 0, 0]

    def test_matches_untiered_server_when_never_shedding(self,
                                                         tier_setup):
        ladder, calm, _ = tier_setup
        tiered = _server(ladder).serve(calm)
        pool = DevicePool(1, ladder[0].compiled.arch)
        pool.load_replicated(ladder[0].compiled)
        untiered = InferenceServer(
            pool, config=ServeConfig(max_batch=64),
        ).serve(calm)
        np.testing.assert_array_equal(tiered.predictions,
                                      untiered.predictions)
        np.testing.assert_array_equal(tiered.latencies,
                                      untiered.latencies)
        assert tiered.makespan_s == untiered.makespan_s

    def test_sheds_under_burst(self, tier_setup):
        ladder, _, bursty = tier_setup
        report = _server(ladder, policy=BURST_POLICY).serve(bursty)
        assert report.tier_sheds > 0
        assert report.shed_rate > 0
        degraded = int(sum(report.tier_served[1:]))
        assert degraded > 0
        # Shedding degrades batches; it does not abandon the full tier.
        assert report.tier_served[0] > 0
        # Every served request has a tier; dropped requests have -1.
        served_mask = report.predictions >= 0
        assert np.all(report.request_tiers[served_mask] >= 0)
        assert np.all(report.request_tiers[~served_mask] == -1)

    def test_shedding_beats_dropping(self, tier_setup):
        # Same overload, same pool: the tiered server keeps the SLA
        # the untiered one misses.  This is the feature's whole point.
        ladder, _, bursty = tier_setup
        tiered = _server(ladder, policy=BURST_POLICY).serve(bursty)
        pool = DevicePool(1, ladder[0].compiled.arch)
        pool.load_replicated(ladder[0].compiled)
        untiered = InferenceServer(
            pool, config=ServeConfig(max_batch=64),
        ).serve(bursty)
        assert untiered.deadline_misses > 0
        assert tiered.deadline_misses < untiered.deadline_misses
        assert tiered.dropped <= untiered.dropped

    def test_tier_choice_deterministic(self, tier_setup):
        ladder, _, bursty = tier_setup
        a = _server(ladder, policy=BURST_POLICY).serve(bursty)
        b = _server(ladder, policy=BURST_POLICY).serve(bursty)
        np.testing.assert_array_equal(a.request_tiers, b.request_tiers)
        np.testing.assert_array_equal(a.predictions, b.predictions)
        assert a.summary() == b.summary()

    def test_degraded_tier_cuts_service_time(self, tier_setup):
        ladder, _, _ = tier_setup
        server = _server(ladder)
        for rows in (1, 16, 64):
            full = server._tier_estimate(0, rows)
            assert server._tier_estimate(1, rows) < full
            assert server._tier_estimate(2, rows) < full


class TestTierAccounting:
    @pytest.fixture(scope="class")
    def shed_report(self, tier_setup):
        ladder, _, bursty = tier_setup
        metrics = MetricsRegistry()
        report = _server(ladder, policy=BURST_POLICY, metrics=metrics,
                         tracing=True).serve(bursty)
        return report, metrics

    def test_counts_are_consistent(self, shed_report):
        report, _ = shed_report
        assert sum(report.tier_batches) == report.num_batches
        assert sum(report.tier_served) == report.served
        assert report.tier_sheds == sum(report.tier_batches[1:])
        for index, tracker in enumerate(report.tier_latency):
            assert len(tracker) == report.tier_served[index]

    def test_tier_accuracy_by_index(self, shed_report):
        report, _ = shed_report
        accuracies = report.tier_accuracy()
        assert len(accuracies) == 3
        mask = report.request_tiers == 0
        assert accuracies[0] == pytest.approx(float(np.mean(
            report.predictions[mask] == report.labels[mask]
        )))

    def test_summary_tiers_section(self, shed_report):
        report, _ = shed_report
        tiers = report.summary()["tiers"]
        assert tiers["names"] == ["full", "compressed", "tiny"]
        assert tiers["sheds"] == report.tier_sheds
        assert tiers["batches"] == report.tier_batches
        assert tiers["served"] == report.tier_served
        assert len(tiers["build_accuracy"]) == 3
        assert tiers["latency"][0]["count"] == report.tier_served[0]
        assert tiers["accuracy"] == report.tier_accuracy()

    def test_untiered_summary_shape_unchanged(self, tier_setup):
        ladder, calm, _ = tier_setup
        pool = DevicePool(1, ladder[0].compiled.arch)
        pool.load_replicated(ladder[0].compiled)
        summary = InferenceServer(
            pool, config=ServeConfig(max_batch=64),
        ).serve(calm).summary()
        assert "tiers" not in summary

    def test_metrics_instruments(self, shed_report):
        report, metrics = shed_report
        counters = metrics.summary()["counters"]
        assert counters["serve.tier_sheds"] == report.tier_sheds
        assert counters["serve.tier_batches.full"] == \
            report.tier_batches[0]
        served = sum(
            counters.get(f"serve.tier_served.{name}", 0)
            for name in report.tier_names
        )
        assert served == report.served
        gauges = metrics.summary()["gauges"]
        assert gauges["serve.tier_active"]["peak"] >= 1

    def test_switch_spans(self, shed_report):
        report, _ = shed_report
        switches = [s for s in report.trace.spans
                    if s.name == "tier.switch"]
        assert switches
        assert all("tier" in s.tags for s in switches)
        assert all(s.duration_s == 0.0 for s in switches)
        assert all(s.attrs["from_tier"] != s.attrs["to_tier"]
                   for s in switches)
        # Batch counts by tier are recoverable from the batch spans.
        batch_tiers = [s.attrs["tier"] for s in report.trace.spans
                       if s.name == "serve.batch"]
        for index in range(3):
            assert batch_tiers.count(index) == report.tier_batches[index]

    def test_traced_equals_untraced_tiered(self, tier_setup):
        ladder, _, bursty = tier_setup
        off = _server(ladder, policy=BURST_POLICY).serve(bursty)
        on = _server(ladder, policy=BURST_POLICY,
                     tracing=True).serve(bursty)
        assert on.summary() == off.summary()
        np.testing.assert_array_equal(on.request_tiers,
                                      off.request_tiers)
        np.testing.assert_array_equal(on.predictions, off.predictions)


class TestTierValidation:
    def test_tier_zero_must_be_loaded_model(self, tier_setup):
        ladder, _, _ = tier_setup
        pool = DevicePool(1, ladder[1].compiled.arch)
        pool.load_replicated(ladder[1].compiled)  # degraded, not tier 0
        with pytest.raises(ValueError, match="tier 0"):
            InferenceServer(pool, config=ServeConfig(), tiers=ladder)

    def test_policy_without_ladder_rejected(self, tier_setup):
        ladder, _, _ = tier_setup
        pool = DevicePool(1, ladder[0].compiled.arch)
        pool.load_replicated(ladder[0].compiled)
        with pytest.raises(ValueError, match="tiers="):
            InferenceServer(
                pool, config=ServeConfig(tiers=TierPolicy()),
            )

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            TierPolicy(queue_high=0)
        with pytest.raises(ValueError):
            TierPolicy(headroom_s=-0.1)
        with pytest.raises(TypeError):
            ServeConfig(tiers=3)

    def test_resident_ladder_survives_on_devices(self, tier_setup):
        ladder, calm, _ = tier_setup
        server = _server(ladder)
        assert server.tier_load_s > 0
        server.serve(calm)
        # Serving did not evict the ladder: reloading is free.
        pool = server.pool
        assert pool.load_resident(ladder[1].compiled) == 0.0
        assert pool.load_resident(ladder[2].compiled) == 0.0
