"""Tests for the online inference server event loop."""

import numpy as np
import pytest

from repro.edgetpu import (
    DevicePool,
    EdgeTpuDevice,
    FailurePlan,
    compile_model,
)
from repro.runtime import PhaseProfiler
from repro.serving import (
    DynamicBatcher,
    FixedSizeBatcher,
    InferenceServer,
    ModelSwapper,
)


def _offline_predictions(compiled, trace):
    """Reference: the whole trace as one batch on one device."""
    x = np.stack([r.features for r in trace])
    device = EdgeTpuDevice()
    device.load_model(compiled)
    out = device.invoke(compiled.model.input_spec.qparams.quantize(x)).outputs
    for op in compiled.cpu_ops:
        out = op.run(out)
    return out[:, 0] if compiled.model.output_is_index \
        else np.argmax(out, axis=-1)


def _serve(compiled, trace, num_devices=2, batcher=None, **kwargs):
    pool = DevicePool(num_devices)
    pool.load_replicated(compiled)
    server = InferenceServer(
        pool,
        batcher=batcher or DynamicBatcher(16, slack_s=0.001),
        **kwargs,
    )
    return server.serve(trace), pool


class TestServe:
    def test_serves_whole_trace_in_order(self, serving_setup):
        _, compiled, trace = serving_setup
        report, _ = _serve(compiled, trace)
        assert report.served == len(trace)
        assert report.dropped == 0
        # Predictions are bit-identical to an offline run, in request
        # order — micro-batching/queueing changes timing, never values.
        np.testing.assert_array_equal(
            report.predictions, _offline_predictions(compiled, trace)
        )

    def test_latency_accounting(self, serving_setup):
        _, compiled, trace = serving_setup
        report, _ = _serve(compiled, trace)
        assert len(report.latency) == report.served
        assert np.all(report.latencies[~np.isnan(report.latencies)] > 0)
        assert report.latency.p50 <= report.latency.p95 <= report.latency.p99
        assert report.makespan_s >= trace[-1].arrival_s
        assert report.throughput > 0

    def test_device_utilization_fields(self, serving_setup):
        _, compiled, trace = serving_setup
        report, pool = _serve(compiled, trace, num_devices=3)
        assert len(report.device_busy_seconds) == 3
        assert len(report.device_idle_seconds) == 3
        assert 0.0 < report.utilization < 1.0
        for busy, idle in zip(report.device_busy_seconds,
                              report.device_idle_seconds):
            assert busy + idle == pytest.approx(report.makespan_s)

    def test_admission_control_drops(self, serving_setup):
        _, compiled, trace = serving_setup
        # A tiny queue with a policy that never dispatches until full
        # load forces drops under this arrival rate.
        report, _ = _serve(compiled, trace, num_devices=1,
                           batcher=FixedSizeBatcher(max_batch=16),
                           max_queue=8)
        assert report.dropped > 0
        assert report.served + report.dropped == len(trace)
        dropped_mask = report.predictions == -1
        assert dropped_mask.sum() == report.dropped
        assert np.isnan(report.latencies[dropped_mask]).all()

    def test_deadline_aware_beats_fixed_p99(self, serving_setup):
        _, compiled, trace = serving_setup
        dynamic, _ = _serve(compiled, trace,
                            batcher=DynamicBatcher(32, slack_s=0.001))
        fixed, _ = _serve(compiled, trace,
                          batcher=FixedSizeBatcher(32))
        assert dynamic.latency.p99 < fixed.latency.p99
        assert dynamic.deadline_miss_rate < fixed.deadline_miss_rate

    def test_deterministic_reports(self, serving_setup):
        _, compiled, trace = serving_setup
        a, _ = _serve(compiled, trace)
        b, _ = _serve(compiled, trace)
        assert a.summary() == b.summary()
        np.testing.assert_array_equal(a.predictions, b.predictions)
        np.testing.assert_array_equal(a.latencies, b.latencies)

    def test_profiler_charged(self, serving_setup):
        _, compiled, trace = serving_setup
        profiler = PhaseProfiler()
        report, _ = _serve(compiled, trace, profiler=profiler)
        assert profiler.seconds("inference") == report.makespan_s

    def test_all_dropped_makespan_finite(self, serving_setup):
        # Regression: with max_queue=0 every request is refused and the
        # report used to reduce an all-NaN latency vector — emitting
        # numpy's "All-NaN slice" RuntimeWarning and a NaN makespan.
        import warnings

        _, compiled, trace = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        server = InferenceServer(
            pool, batcher=DynamicBatcher(16, slack_s=0.001), max_queue=0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = server.serve(trace)
        assert report.served == 0
        assert report.dropped == len(trace)
        assert np.isfinite(report.makespan_s)
        assert (report.predictions == -1).all()

    def test_windowed_accuracy(self, serving_setup):
        _, compiled, trace = serving_setup
        report, _ = _serve(compiled, trace)
        windows = report.windowed_accuracy(5)
        assert len(windows) == 5
        assert all(0.0 <= w <= 1.0 for w in windows)
        assert report.accuracy == pytest.approx(
            np.mean(report.predictions == report.labels)
        )


class TestFaultTolerance:
    def test_retry_on_second_device(self, serving_setup):
        _, compiled, trace = serving_setup
        pool = DevicePool(2)
        pool.load_replicated(compiled)
        pool.schedule_failure(FailurePlan(0, at_s=0.2, mode="usb_stall"))
        server = InferenceServer(pool,
                                 batcher=DynamicBatcher(16, slack_s=0.001))
        report = server.serve(trace)
        healthy, _ = _serve(compiled, trace)
        assert report.served == len(trace)
        assert report.retried_batches >= 1
        assert report.fallback_batches == 0
        assert report.failed_devices == [0]
        np.testing.assert_array_equal(report.predictions,
                                      healthy.predictions)

    def test_cpu_fallback_when_pool_lost(self, serving_setup):
        _, compiled, trace = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        pool.schedule_failure(FailurePlan(0, at_s=0.2,
                                          mode="device_loss"))
        server = InferenceServer(pool,
                                 batcher=DynamicBatcher(16, slack_s=0.001))
        report = server.serve(trace)
        healthy, _ = _serve(compiled, trace)
        assert report.served == len(trace)
        assert report.fallback_batches > 0
        # Graceful degradation: the fallback is slower but bit-exact.
        np.testing.assert_array_equal(report.predictions,
                                      healthy.predictions)
        assert report.host_seconds > healthy.host_seconds

    def test_stall_detection_costs_latency(self, serving_setup):
        _, compiled, trace = serving_setup

        def p99(mode):
            pool = DevicePool(2)
            pool.load_replicated(compiled)
            pool.schedule_failure(
                FailurePlan(0, at_s=0.2, mode=mode)
            )
            server = InferenceServer(
                pool, batcher=DynamicBatcher(16, slack_s=0.001)
            )
            return server.serve(trace).latency.max

        # A USB stall pays a detection timeout that device loss skips.
        assert p99("usb_stall") > p99("device_loss")


class TestValidation:
    def test_unloaded_pool_rejected(self):
        with pytest.raises(RuntimeError, match="load"):
            InferenceServer(DevicePool(2))

    def test_mixed_models_rejected(self, serving_setup):
        stream, compiled, _ = serving_setup
        train_x, train_y = stream.test_set(200)
        from tests.serving.conftest import train_compiled
        other = train_compiled(train_x, train_y, seed=9)
        pool = DevicePool(2)
        pool.load_models([compiled, other])
        with pytest.raises(ValueError, match="replicated"):
            InferenceServer(pool)

    def test_bad_max_queue(self, serving_setup):
        # Zero is legal (an admission-closed server); negatives are not.
        _, compiled, _ = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        with pytest.raises(ValueError, match="max_queue"):
            InferenceServer(pool, max_queue=-1)

    def test_foreign_swapper_rejected(self, serving_setup):
        _, compiled, _ = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        other_pool = DevicePool(1)
        other_pool.load_replicated(compiled)
        with pytest.raises(ValueError, match="pool"):
            InferenceServer(pool, swapper=ModelSwapper(other_pool))

    def test_out_of_order_trace_rejected(self, serving_setup):
        _, compiled, trace = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        server = InferenceServer(pool)
        with pytest.raises(ValueError, match="arrival order"):
            server.serve([trace[1], trace[0]])

    def test_empty_trace(self, serving_setup):
        _, compiled, _ = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        report = InferenceServer(pool).serve([])
        assert report.served == 0
        assert report.num_batches == 0
        assert report.makespan_s == 0.0

    def test_service_estimate_positive(self, serving_setup):
        _, compiled, _ = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        server = InferenceServer(pool)
        assert server.service_estimate(1) > 0
        assert server.service_estimate(32) > server.service_estimate(1)
        with pytest.raises(ValueError):
            server.service_estimate(0)
