"""Shared fixtures: a small trained + compiled model and request traces."""

import numpy as np
import pytest

from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import compile_model
from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn import from_classifier
from repro.serving import ArrivalProcess, RequestStream
from repro.tflite import convert

NUM_FEATURES = 16
NUM_CLASSES = 3
DIMENSION = 256


def train_compiled(x, y, seed=0, dimension=DIMENSION):
    rng = np.random.default_rng(seed)
    encoder = NonlinearEncoder(x.shape[1], dimension, seed=rng)
    classifier = HDCClassifier(dimension=dimension, encoder=encoder,
                               seed=rng)
    classifier.fit(x, y, iterations=4, num_classes=NUM_CLASSES)
    return compile_model(
        convert(from_classifier(classifier, include_argmax=True), x[:96])
    )


@pytest.fixture(scope="package")
def serving_setup():
    """A stationary stream, a compiled model, and a 300-request trace."""
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.0),
        seed=2,
    )
    train_x, train_y = stream.next_batch(300)
    compiled = train_compiled(train_x, train_y)
    arrivals = ArrivalProcess(300.0, "poisson", seed=5)
    trace = list(RequestStream(stream, arrivals, deadline_s=0.04,
                          drift_every=1).generate(300))
    return stream, compiled, trace
