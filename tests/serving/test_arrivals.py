"""Tests for arrival processes and request-stream generation."""

import numpy as np
import pytest

from repro.data.streams import DriftingStream, StreamConfig
from repro.serving import ArrivalProcess, Request, RequestStream


class TestArrivalProcess:
    def test_poisson_mean_rate(self):
        gaps = ArrivalProcess(100.0, "poisson", seed=0).inter_arrivals(5000)
        assert gaps.min() > 0
        assert np.mean(gaps) == pytest.approx(0.01, rel=0.1)

    def test_times_strictly_increase(self):
        times = ArrivalProcess(50.0, "poisson", seed=1).times(200)
        assert np.all(np.diff(times) > 0)

    def test_deterministic_per_seed(self):
        a = ArrivalProcess(100.0, "bursty", seed=7).times(300)
        b = ArrivalProcess(100.0, "bursty", seed=7).times(300)
        np.testing.assert_array_equal(a, b)

    def test_bursty_is_burstier_than_poisson(self):
        # Coefficient of variation of inter-arrivals: 1 for Poisson,
        # strictly larger for the modulated process.
        poisson = ArrivalProcess(100.0, "poisson", seed=3
                                 ).inter_arrivals(4000)
        bursty = ArrivalProcess(100.0, "bursty", seed=3,
                                burst_factor=10.0).inter_arrivals(4000)
        cv = lambda g: np.std(g) / np.mean(g)  # noqa: E731
        assert cv(bursty) > cv(poisson)

    @pytest.mark.parametrize("kwargs", [
        dict(rate_hz=0.0),
        dict(rate_hz=10.0, kind="uniform"),
        dict(rate_hz=10.0, burst_factor=0.5),
        dict(rate_hz=10.0, burst_length=0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalProcess(**kwargs)

    def test_rejects_zero_requests(self):
        with pytest.raises(ValueError):
            ArrivalProcess(10.0, seed=0).inter_arrivals(0)


class TestRequestStream:
    def _stream(self, drift_rate=0.05):
        return DriftingStream(
            StreamConfig(num_features=8, num_classes=3,
                         drift_rate=drift_rate),
            seed=0,
        )

    def test_generate_shape_and_order(self):
        rs = RequestStream(self._stream(),
                           ArrivalProcess(100.0, seed=1), deadline_s=0.05)
        trace = list(rs.generate(50))
        assert len(trace) == 50
        assert [r.request_id for r in trace] == list(range(50))
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        for request in trace:
            assert request.features.shape == (8,)
            assert 0 <= request.label < 3
            assert request.deadline_s == pytest.approx(
                request.arrival_s + 0.05
            )
            assert request.budget_s == pytest.approx(0.05)

    def test_drift_advances_per_request(self):
        stream = self._stream()
        list(RequestStream(stream, ArrivalProcess(100.0, seed=1),
                           deadline_s=0.05, drift_every=1).generate(40))
        assert stream.steps == 40

    def test_first_request_samples_initial_distribution(self):
        # Request 0 must come from the stream's initial distribution:
        # a drifting trace and a stationary one agree on sample 0.
        # (The drift used to advance *before* the first draw, so the
        # initial distribution was never served.)
        def first(drift_every):
            rs = RequestStream(self._stream(drift_rate=0.5),
                               ArrivalProcess(100.0, seed=1),
                               deadline_s=0.05, drift_every=drift_every)
            return next(iter(rs.generate(1)))

        drifting, stationary = first(1), first(0)
        np.testing.assert_array_equal(drifting.features,
                                      stationary.features)
        assert drifting.label == stationary.label

    def test_drift_advances_after_each_full_block(self):
        # drift_every=4 over 7 requests: one full block (requests 0-3)
        # has finished, so exactly one drift step — not two (a step
        # before request 0 plus one at request 4, the old off-by-one).
        stream = self._stream()
        list(RequestStream(stream, ArrivalProcess(100.0, seed=1),
                           deadline_s=0.05, drift_every=4).generate(7))
        assert stream.steps == 1

    def test_drift_every_zero_freezes(self):
        stream = self._stream()
        list(RequestStream(stream, ArrivalProcess(100.0, seed=1),
                           deadline_s=0.05, drift_every=0).generate(40))
        assert stream.steps == 0

    def test_deterministic_trace(self):
        def build():
            rs = RequestStream(self._stream(),
                               ArrivalProcess(100.0, seed=1),
                               deadline_s=0.05)
            return list(rs.generate(30))

        a, b = build(), build()
        for left, right in zip(a, b):
            assert left.arrival_s == right.arrival_s
            assert left.label == right.label
            np.testing.assert_array_equal(left.features, right.features)

    def test_labels_cover_classes(self):
        trace = list(RequestStream(self._stream(),
                                   ArrivalProcess(100.0, seed=1),
                                   deadline_s=0.05).generate(200))
        assert set(r.label for r in trace) == {0, 1, 2}

    @pytest.mark.parametrize("kwargs", [
        dict(deadline_s=0.0),
        dict(deadline_s=0.1, drift_every=-1),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            RequestStream(self._stream(), ArrivalProcess(10.0, seed=0),
                          **kwargs)

    def test_request_dataclass(self):
        request = Request(request_id=0, arrival_s=1.0, deadline_s=1.5,
                          features=np.zeros(4), label=2)
        assert request.budget_s == pytest.approx(0.5)
        assert request.tenant is None

    def test_request_has_no_instance_dict(self):
        # __slots__: at trace scale the per-request __dict__ was the
        # largest constant memory factor after the features themselves.
        request = Request(request_id=0, arrival_s=1.0, deadline_s=1.5,
                          features=np.zeros(4))
        assert not hasattr(request, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            request.extra = 1

    def test_generate_is_lazy(self):
        # A true generator: nothing is drawn until the consumer pulls,
        # and pulling k of n only advances the stream k steps.
        stream = self._stream()
        gen = RequestStream(stream, ArrivalProcess(100.0, seed=1),
                            deadline_s=0.05, drift_every=1).generate(1000)
        assert stream.steps == 0
        for _ in range(10):
            next(gen)
        assert stream.steps == 10

    def test_generate_validates_eagerly(self):
        rs = RequestStream(self._stream(), ArrivalProcess(100.0, seed=1),
                           deadline_s=0.05)
        with pytest.raises(ValueError):
            rs.generate(0)  # raises at the call, not at first next()
