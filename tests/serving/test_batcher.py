"""Tests for the batch-closing policies."""

import math

import numpy as np
import pytest

from repro.serving import DynamicBatcher, FixedSizeBatcher, Request


def _request(request_id, arrival_s, budget_s=0.1):
    return Request(request_id=request_id, arrival_s=arrival_s,
                   deadline_s=arrival_s + budget_s,
                   features=np.zeros(4), label=0)


def _estimate(batch_size):
    return 0.01 * batch_size


class TestDynamicBatcher:
    def test_empty_queue_never_ready(self):
        batcher = DynamicBatcher(max_batch=4)
        assert math.isinf(batcher.ready_at([], 0.0, _estimate))

    def test_full_queue_ready_now(self):
        batcher = DynamicBatcher(max_batch=2)
        queue = [_request(0, 0.0), _request(1, 0.001)]
        assert batcher.ready_at(queue, 0.005, _estimate) == 0.005

    def test_deadline_forces_dispatch(self):
        batcher = DynamicBatcher(max_batch=32, slack_s=0.0)
        queue = [_request(0, 0.0, budget_s=0.1)]
        # Deadline 0.1, service estimate 0.01 -> must dispatch by 0.09.
        assert batcher.ready_at(queue, 0.0, _estimate) == pytest.approx(0.09)

    def test_slack_moves_trigger_earlier(self):
        loose = DynamicBatcher(max_batch=32, slack_s=0.0)
        tight = DynamicBatcher(max_batch=32, slack_s=0.02)
        queue = [_request(0, 0.0, budget_s=0.1)]
        assert tight.ready_at(queue, 0.0, _estimate) == pytest.approx(
            loose.ready_at(queue, 0.0, _estimate) - 0.02
        )

    def test_overdue_queue_ready_now(self):
        batcher = DynamicBatcher(max_batch=32)
        queue = [_request(0, 0.0, budget_s=0.01)]
        assert batcher.ready_at(queue, 0.5, _estimate) == 0.5

    @pytest.mark.parametrize("kwargs", [
        dict(max_batch=0),
        dict(max_batch=4, slack_s=-0.1),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            DynamicBatcher(**kwargs)


class TestFixedSizeBatcher:
    def test_waits_for_full_batch(self):
        batcher = FixedSizeBatcher(max_batch=4)
        queue = [_request(0, 0.0), _request(1, 0.001)]
        assert math.isinf(batcher.ready_at(queue, 1.0, _estimate))

    def test_full_queue_ready_now(self):
        batcher = FixedSizeBatcher(max_batch=2)
        queue = [_request(0, 0.0), _request(1, 0.001)]
        assert batcher.ready_at(queue, 0.002, _estimate) == 0.002

    def test_timeout_triggers(self):
        batcher = FixedSizeBatcher(max_batch=8, timeout_s=0.05)
        queue = [_request(0, 0.1)]
        assert batcher.ready_at(queue, 0.1, _estimate) == pytest.approx(0.15)

    @pytest.mark.parametrize("kwargs", [
        dict(max_batch=0),
        dict(max_batch=4, timeout_s=0.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FixedSizeBatcher(**kwargs)
