"""Plan-enabled serving: bucketing and arenas never change results."""

import numpy as np
import pytest

from repro.compression.tiers import TierSpec, build_tiers
from repro.config import PlanConfig, ServeConfig, TierPolicy
from repro.edgetpu import DevicePool, FailurePlan
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer
from repro.serving import InferenceServer, ModelSwapper
from tests.serving.conftest import train_compiled

PLAN = ServeConfig(max_batch=16, slack_s=0.001,
                   plan=PlanConfig())
CLASSIC = ServeConfig(max_batch=16, slack_s=0.001)


def _serve(compiled, trace, config, num_devices=2, **kwargs):
    pool = DevicePool(num_devices)
    pool.load_replicated(compiled)
    server = InferenceServer(pool, config=config, **kwargs)
    return server.serve(trace)


class TestPlanEquivalence:
    def test_bucketed_equals_unbucketed(self, serving_setup):
        """The tentpole invariant: bucketing never changes predictions.

        Modeled timing may shift — the device is charged at the padded
        bucket size — but every served value is bit-identical.
        """
        _, compiled, trace = serving_setup
        classic = _serve(compiled, trace, CLASSIC)
        planned = _serve(compiled, trace, PLAN)
        assert planned.served == classic.served
        assert planned.dropped == classic.dropped
        np.testing.assert_array_equal(planned.predictions,
                                      classic.predictions)
        assert np.isfinite(planned.makespan_s)

    def test_traced_equals_untraced(self, serving_setup):
        _, compiled, trace = serving_setup
        traced_cfg = ServeConfig(max_batch=16, slack_s=0.001,
                                 plan=PlanConfig(), tracing=True)
        plain = _serve(compiled, trace, PLAN)
        traced = _serve(compiled, trace, traced_cfg)
        np.testing.assert_array_equal(traced.predictions, plain.predictions)
        np.testing.assert_array_equal(traced.latencies, plain.latencies)
        assert traced.makespan_s == plain.makespan_s
        assert traced.trace is not None

    def test_numpy_fallback_plan_equals_native(self, serving_setup):
        _, compiled, trace = serving_setup
        no_native = ServeConfig(max_batch=16, slack_s=0.001,
                                plan=PlanConfig(native=False))
        a = _serve(compiled, trace, PLAN)
        b = _serve(compiled, trace, no_native)
        np.testing.assert_array_equal(a.predictions, b.predictions)
        # Kernel choice changes wall time only; the virtual clock and
        # every modeled number match exactly.
        assert a.summary() == b.summary()

    def test_no_prewarm_equals_prewarmed(self, serving_setup):
        _, compiled, trace = serving_setup
        cold = ServeConfig(max_batch=16, slack_s=0.001,
                           plan=PlanConfig(prewarm=False))
        a = _serve(compiled, trace, PLAN)
        b = _serve(compiled, trace, cold)
        assert a.summary() == b.summary()

    def test_wider_bucket_ladder_is_equivalent(self, serving_setup):
        # Arena headroom beyond max_batch changes nothing observable.
        _, compiled, trace = serving_setup
        wide = ServeConfig(max_batch=16, slack_s=0.001,
                           plan=PlanConfig(max_bucket=64))
        a = _serve(compiled, trace, PLAN)
        b = _serve(compiled, trace, wide)
        assert a.summary() == b.summary()
        np.testing.assert_array_equal(a.predictions, b.predictions)


class TestPlanFaultPaths:
    def test_cpu_fallback_through_arenas(self, serving_setup):
        _, compiled, trace = serving_setup
        def run(config):
            pool = DevicePool(1)
            pool.load_replicated(compiled)
            pool.schedule_failure(FailurePlan(0, at_s=0.2,
                                              mode="device_loss"))
            return InferenceServer(pool, config=config).serve(trace)

        classic = run(CLASSIC)
        planned = run(PLAN)
        assert planned.fallback_batches > 0
        np.testing.assert_array_equal(planned.predictions,
                                      classic.predictions)

    def test_hot_swap_recompiles_primary_plan(self, serving_setup):
        stream, compiled, trace = serving_setup
        x, y = stream.test_set(200)
        replacement = train_compiled(x, y, seed=17)

        def run(config):
            pool = DevicePool(2)
            pool.load_replicated(compiled)
            swapper = ModelSwapper(pool)
            swapper.schedule(replacement, at_s=0.1)
            server = InferenceServer(pool, config=config, swapper=swapper)
            report = server.serve(trace)
            return report, swapper

        classic, _ = run(CLASSIC)
        planned, swapper = run(PLAN)
        assert swapper.swaps_committed == 1
        np.testing.assert_array_equal(planned.predictions,
                                      classic.predictions)

    def test_tier_shedding_through_arenas(self, serving_setup):
        stream, _, trace = serving_setup
        x, y = stream.next_batch(300)
        trainer = BaggingHDCTrainer(
            BaggingConfig(num_models=2, dimension=1024, iterations=3),
            seed=7,
        )
        trainer.fit(x, y)
        ladder = build_tiers(
            trainer.fuse(), x[:96],
            specs=(TierSpec("full"),
                   TierSpec("compressed", "dpq", dimension=256)),
        )
        policy = TierPolicy(queue_high=4, headroom_s=0.0001)

        def run(plan):
            config = ServeConfig(max_batch=16, slack_s=0.001,
                                 tiers=policy, plan=plan)
            pool = DevicePool(1, ladder[0].compiled.arch)
            pool.load_replicated(ladder[0].compiled)
            server = InferenceServer(pool, config=config, tiers=ladder)
            return server.serve(trace)

        # Shedding decisions follow the (padded) estimates, so compare
        # planned runs against each other: native vs numpy arenas must
        # agree on everything, and a rerun must be deterministic.
        planned = run(PlanConfig())
        numpy_planned = run(PlanConfig(native=False))
        again = run(PlanConfig())
        np.testing.assert_array_equal(planned.predictions,
                                      numpy_planned.predictions)
        assert planned.summary() == numpy_planned.summary()
        assert planned.summary() == again.summary()


class TestPlanValidation:
    def test_small_bucket_rejected(self, serving_setup):
        _, compiled, _ = serving_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        config = ServeConfig(max_batch=16, plan=PlanConfig(max_bucket=8))
        with pytest.raises(ValueError, match="max_bucket"):
            InferenceServer(pool, config=config)
