"""Tests for the hot model swapper."""

import numpy as np
import pytest

from repro.data.streams import DriftingStream, StreamConfig
from repro.edgetpu import DevicePool, FailurePlan
from repro.serving import (
    ArrivalProcess,
    DynamicBatcher,
    InferenceServer,
    ModelSwapper,
    RequestStream,
)
from tests.serving.conftest import (
    NUM_CLASSES,
    NUM_FEATURES,
    train_compiled,
)


@pytest.fixture(scope="module")
def drift_setup():
    """A drifting stream, an initial model, and a 600-request trace."""
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
                     drift_rate=0.1),
        seed=4,
    )
    train_x, train_y = stream.next_batch(300)
    compiled = train_compiled(train_x, train_y)
    arrivals = ArrivalProcess(300.0, "poisson", seed=6)
    trace = list(RequestStream(stream, arrivals, deadline_s=0.04,
                          drift_every=1).generate(600))
    cut = 300
    window = trace[cut - 200:cut]
    retrained = train_compiled(
        np.stack([r.features for r in window]),
        np.array([r.label for r in window], dtype=np.int64),
        seed=8,
    )
    return compiled, retrained, trace, cut


@pytest.fixture(scope="module")
def sized_models(drift_setup):
    """An initial model plus a big and a small retrain candidate.

    The big model's modelgen cost exceeds the small one's, so a swap
    scheduled later (small) can become ready *earlier* than one
    scheduled first (big) — the inversion the staleness tests need.
    """
    compiled, _, _, _ = drift_setup
    stream = DriftingStream(
        StreamConfig(num_features=NUM_FEATURES, num_classes=NUM_CLASSES),
        seed=21,
    )
    x, y = stream.next_batch(200)
    big = train_compiled(x, y, seed=22, dimension=512)
    small = train_compiled(x, y, seed=23, dimension=64)
    return compiled, big, small


class TestModelSwapper:
    def test_schedule_charges_modelgen(self, drift_setup):
        compiled, retrained, _, _ = drift_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool)
        ready = swapper.schedule(retrained, at_s=1.0)
        assert ready == pytest.approx(
            1.0 + swapper.modelgen_seconds(retrained)
        )
        assert swapper.modelgen_seconds(retrained) > 0
        assert swapper.pending == 1

    def test_poll_before_ready_is_noop(self, drift_setup):
        compiled, retrained, _, _ = drift_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool)
        ready = swapper.schedule(retrained, at_s=1.0)
        assert swapper.poll(ready - 1e-6) is None
        assert pool.models[0] is compiled
        assert swapper.poll(ready) is retrained
        assert pool.models[0] is retrained
        assert swapper.pending == 0
        assert swapper.swaps_committed == 1
        assert swapper.total_swap_seconds > 0

    def test_stacked_swaps_commit_newest(self, drift_setup):
        compiled, retrained, _, _ = drift_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool)
        swapper.schedule(retrained, at_s=0.0)
        newer = train_compiled(
            *DriftingStream(
                StreamConfig(num_features=NUM_FEATURES,
                             num_classes=NUM_CLASSES),
                seed=11,
            ).next_batch(200),
            seed=12,
        )
        swapper.schedule(newer, at_s=0.1)
        committed = swapper.poll(1e9)
        assert committed is newer
        assert swapper.pending == 0
        assert swapper.swaps_committed == 1

    def test_inverted_ready_order_commits_latest_scheduled(
            self, sized_models):
        # A big retrain scheduled first, a small one scheduled later:
        # the small artifact finishes modelgen first, so ready order
        # inverts schedule order.  The later-*scheduled* model is the
        # fresher retrain and must win the commit.
        compiled, big, small = sized_models
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool)
        gen_big = swapper.modelgen_seconds(big)
        gen_small = swapper.modelgen_seconds(small)
        assert gen_small < gen_big
        ready_big = swapper.schedule(big, at_s=0.0)
        ready_small = swapper.schedule(small,
                                       at_s=(gen_big - gen_small) / 2)
        assert ready_small < ready_big
        committed = swapper.poll(ready_big + 1.0)
        assert committed is small
        assert pool.models[0] is small
        assert swapper.pending == 0
        assert swapper.swaps_committed == 1

    def test_commit_discards_earlier_scheduled_pending(self, sized_models):
        # The small retrain commits while the big, *earlier-scheduled*
        # one is still baking; when the big artifact later becomes
        # ready it must be discarded — committing it would roll the
        # pool back to an older model.
        compiled, big, small = sized_models
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool)
        gen_big = swapper.modelgen_seconds(big)
        gen_small = swapper.modelgen_seconds(small)
        ready_big = swapper.schedule(big, at_s=0.0)
        ready_small = swapper.schedule(small,
                                       at_s=(gen_big - gen_small) / 2)
        assert ready_small < ready_big
        assert swapper.poll((ready_small + ready_big) / 2) is small
        assert swapper.pending == 0
        assert swapper.poll(ready_big + 1.0) is None
        assert pool.models[0] is small
        assert swapper.swaps_committed == 1

    def test_commit_skips_failed_devices(self, drift_setup):
        compiled, retrained, _, _ = drift_setup
        pool = DevicePool(2)
        pool.load_replicated(compiled)
        pool.schedule_failure(FailurePlan(0, at_s=0.0,
                                          mode="device_loss"))
        with pytest.raises(Exception):
            pool.try_invoke(
                0,
                compiled.model.input_spec.qparams.quantize(
                    np.zeros((1, NUM_FEATURES), dtype=np.float32)
                ),
                at_s=0.5,
            )
        swapper = ModelSwapper(pool)
        swapper.schedule(retrained, at_s=0.0)
        swapper.poll(1e9)
        assert pool.models[0] is None
        assert pool.models[1] is retrained

    def test_invalid_schedule_time(self, drift_setup):
        compiled, retrained, _, _ = drift_setup
        pool = DevicePool(1)
        pool.load_replicated(compiled)
        with pytest.raises(ValueError):
            ModelSwapper(pool).schedule(retrained, at_s=-1.0)


class TestServedSwap:
    def _serve(self, drift_setup, swap):
        compiled, retrained, trace, cut = drift_setup
        pool = DevicePool(2)
        pool.load_replicated(compiled)
        swapper = ModelSwapper(pool) if swap else None
        server = InferenceServer(
            pool, batcher=DynamicBatcher(16, slack_s=0.001),
            swapper=swapper,
        )
        if swap:
            swapper.schedule(retrained, at_s=trace[cut].arrival_s)
        return server.serve(trace)

    def test_swap_recovers_accuracy(self, drift_setup):
        static = self._serve(drift_setup, swap=False)
        swapped = self._serve(drift_setup, swap=True)
        assert len(swapped.swap_records) == 1
        record = swapped.swap_records[0]
        assert record.committed_s >= record.scheduled_s
        assert record.modelgen_seconds > 0
        assert record.load_seconds > 0
        static_windows = static.windowed_accuracy(4)
        swap_windows = swapped.windowed_accuracy(4)
        assert swap_windows[-1] > static_windows[-1]

    def test_old_model_serves_until_commit(self, drift_setup):
        compiled, retrained, trace, cut = drift_setup
        static = self._serve(drift_setup, swap=False)
        swapped = self._serve(drift_setup, swap=True)
        commit = swapped.swap_records[0].committed_s
        before = [r.request_id for r in trace
                  if r.arrival_s < commit - 0.05]
        # Requests completed well before the commit saw the old model.
        early = np.array(before[:len(before) // 2])
        np.testing.assert_array_equal(
            swapped.predictions[early], static.predictions[early]
        )

    def test_swap_report_summary(self, drift_setup):
        swapped = self._serve(drift_setup, swap=True)
        summary = swapped.summary()
        assert summary["swaps_committed"] == 1
        assert summary["swap_s"] > 0

    def test_swap_load_accounted_per_device(self, drift_setup):
        static = self._serve(drift_setup, swap=False)
        swapped = self._serve(drift_setup, swap=True)
        # No swap, no swap-load time.
        assert static.device_swap_seconds == [0.0, 0.0]
        # The commit blocked both healthy devices for the reload; that
        # time is charged as swap-load, not silently folded into idle.
        assert len(swapped.device_swap_seconds) == 2
        assert sum(swapped.device_swap_seconds) > 0
        assert swapped.summary()["swap_load_s"] == pytest.approx(
            sum(swapped.device_swap_seconds)
        )
        # busy + swap-load + idle tiles the makespan on every device.
        for busy, load, idle in zip(swapped.device_busy_seconds,
                                    swapped.device_swap_seconds,
                                    swapped.device_idle_seconds):
            assert busy + load + idle == pytest.approx(swapped.makespan_s)
        # Accounting is report-only: modeled completions are unchanged
        # relative to the same run's event times (utilization only adds
        # the swap window to the denominator).
        assert swapped.utilization < 1.0
