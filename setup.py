"""Setup shim for legacy editable installs (`pip install -e .`).

The project metadata lives in pyproject.toml; this file exists because
offline environments without the `wheel` package cannot use PEP 517
editable installs, while `setup.py develop` works everywhere.
"""

from setuptools import setup

setup()
