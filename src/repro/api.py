"""The top-level facade: ``train`` → ``deploy`` → ``serve``.

One import gives the whole co-design flow on validated, frozen
configs::

    import repro

    result = repro.train(x, y, config=repro.PipelineConfig(seed=7))
    deployment = repro.deploy(
        result, fleet=repro.FleetSpec.single("edgetpu", count=4)
    )
    report = repro.serve(deployment, requests,
                         config=repro.ServeConfig(tracing=True))

Every object these functions return follows the repo's **result
protocol** (:class:`Result`):

- ``summary()`` returns a flat, JSON-ready dict.  Schema convention,
  shared by every summary in the repo: a ``"schema"`` key versions the
  layout (``repro.train/1``, ``repro.infer/1``, ``repro.serve/1``);
  modeled durations are seconds suffixed ``_s``; rates are suffixed
  ``_rate`` (or ``_rps`` for per-second throughputs); counts are bare
  nouns; the canonical phase map (exactly
  :meth:`~repro.runtime.profiler.PhaseProfiler.breakdown`) sits under
  ``"phases"``.
- ``trace`` carries the run's :class:`~repro.observability.trace.Tracer`
  when tracing was enabled, else ``None``.

The class-based API (:class:`~repro.runtime.pipeline.TrainingPipeline`,
:class:`~repro.serving.server.InferenceServer`, ...) remains the
extension surface; this module is the short path through it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.compression.tiers import TierSet, TierSpec, build_tiers
from repro.config import FleetSpec, PipelineConfig, ServeConfig
from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.multidevice import DevicePool
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import Tracer
from repro.runtime.pipeline import (
    CompileCache,
    PipelineResult,
    TrainingPipeline,
)
from repro.runtime.placement import FleetPlacement
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer, ServeReport
from repro.serving.swap import ModelSwapper

__all__ = ["Deployment", "Result", "compress", "deploy", "serve",
           "serve_cluster", "train"]


@runtime_checkable
class Result(Protocol):
    """What every run result exposes: a summary dict and a trace.

    :class:`~repro.runtime.pipeline.PipelineResult`,
    :class:`~repro.runtime.pipeline.InferenceResult`,
    :class:`~repro.serving.server.ServeReport` and :class:`Deployment`
    all satisfy this protocol (see the module docstring for the
    ``summary()`` schema convention).
    """

    trace: Tracer | None

    def summary(self) -> dict:
        """Flat, JSON-ready report of the run."""
        ...


def train(train_x: np.ndarray, train_y: np.ndarray, *,
          config: PipelineConfig | None = None,
          num_classes: int | None = None,
          compile_cache: CompileCache | None = None) -> PipelineResult:
    """Train an HDC model end to end (encode → update → modelgen).

    Args:
        train_x: Float samples ``(num_samples, num_features)``.
        train_y: Integer labels ``(num_samples,)``.
        config: The full run configuration; defaults to the paper
            baseline (``d=10000``, 20 iterations, no bagging).
        num_classes: Class count when the training set may not contain
            every class.
        compile_cache: Share one :class:`CompileCache` across calls to
            skip recompiling identical models.

    Returns:
        The :class:`~repro.runtime.pipeline.PipelineResult` (a
        :class:`Result`: ``.summary()`` / ``.trace``).
    """
    if config is None:
        config = PipelineConfig()
    pipeline = TrainingPipeline(config, compile_cache=compile_cache)
    return pipeline.run(train_x, train_y, num_classes=num_classes)


def compress(trained: PipelineResult, calibration: np.ndarray, *,
             specs: tuple[TierSpec, ...] | list[TierSpec] | None = None,
             evaluation: tuple[np.ndarray, np.ndarray] | None = None,
             seed: int | None = 0) -> TierSet:
    """Build the compiled serving tier ladder for a training result.

    Tier 0 reuses ``trained.compiled`` (the artifact :func:`deploy`
    pins onto the pool), so ``serve(deployment, ..., tiers=ladder)``
    serves exactly the deployed model at full accuracy and sheds to
    the compressed tiers only under load.

    Args:
        trained: A :func:`train` result.
        calibration: Representative float batch for int8 conversion of
            the degraded tiers (and the distillation set for ``"ldc"``
            tiers).
        specs: Ladder recipe; defaults to
            :data:`~repro.compression.tiers.DEFAULT_TIER_SPECS`.
        evaluation: Optional labeled ``(x, y)`` set; records each
            tier's build-time accuracy through the compiled int8 ops.
        seed: Seed for distilled-tier training.

    Returns:
        The :class:`~repro.compression.tiers.TierSet` for
        :func:`serve`.
    """
    return build_tiers(
        trained.fused, calibration, specs=specs, evaluation=evaluation,
        compiled_full=trained.compiled, seed=seed,
    )


@dataclass
class Deployment:
    """A trained model pinned onto a (possibly heterogeneous) pool.

    Attributes:
        pool: The loaded :class:`DevicePool` (replicated placement; on
            a mixed fleet every device holds its own backend's compiled
            variant of the same model).
        compiled: The canonical compiled inference model.
        load_s: Modeled load time (parallel across devices, so the
            slowest single load).
        fleet: The :class:`~repro.config.FleetSpec` the pool was built
            from; ``None`` for the single-device default and the
            deprecated ``num_devices=`` path.
        placement: Optional
            :class:`~repro.runtime.placement.FleetPlacement` attached
            at deploy time (recorded in the summary; feed it to
            :func:`serve_cluster` via ``ClusterConfig(policy="placed",
            placement=...)``).
        trace: Always ``None`` — loading records no spans; present for
            the :class:`Result` protocol.
    """

    pool: DevicePool
    compiled: CompiledModel
    load_s: float
    fleet: FleetSpec | None = None
    placement: FleetPlacement | None = None
    trace: Tracer | None = None

    def summary(self) -> dict:
        """Flat, JSON-ready deployment report (``repro.deploy/2``).

        Schema change from ``/1``: adds ``devices`` (one
        :meth:`~repro.edgetpu.backend.AcceleratorArch.describe` record
        per device) and ``placement`` (the attached decisions, or
        ``None``).
        """
        return {
            "schema": "repro.deploy/2",
            "num_devices": self.pool.num_devices,
            "load_s": self.load_s,
            "weight_bytes": self.compiled.weight_bytes,
            "devices": [device.arch.describe()
                        for device in self.pool.devices],
            "placement": ([d.describe()
                           for d in self.placement.decisions]
                          if self.placement is not None else None),
        }


def deploy(trained: PipelineResult, *, fleet: FleetSpec | None = None,
           placement: FleetPlacement | None = None,
           num_devices: int | None = None) -> Deployment:
    """Load a training result's inference model onto a device fleet.

    Args:
        trained: A :func:`train` result or a bare
            :class:`~repro.edgetpu.compiler.CompiledModel` (the
            compiled model is what gets replicated — on non-default
            backends the pool recompiles it per device architecture,
            bit-identical outputs).
        fleet: The device fleet to provision
            (:class:`~repro.config.FleetSpec`); one device group per
            backend, expanded in canonical group order.  Defaults to a
            single stock-``edgetpu`` device.
        placement: Optional
            :class:`~repro.runtime.placement.FleetPlacement` to record
            on the deployment (see :class:`Deployment`).
        num_devices: Deprecated spelling of
            ``fleet=FleetSpec.single(count=num_devices)``.

    Returns:
        A :class:`Deployment` ready for :func:`serve`.
    """
    compiled = getattr(trained, "compiled", trained)
    if not isinstance(compiled, CompiledModel):
        raise TypeError(
            "trained must be a PipelineResult or CompiledModel, "
            f"got {type(trained).__name__}"
        )
    if num_devices is not None:
        if fleet is not None:
            raise TypeError(
                "fleet= and the deprecated num_devices= are mutually "
                "exclusive"
            )
        warnings.warn(
            "num_devices= is deprecated; pass "
            "fleet=repro.FleetSpec.single(count=...)",
            DeprecationWarning, stacklevel=2,
        )
        pool = DevicePool(num_devices, compiled.arch)
    elif fleet is not None:
        if not isinstance(fleet, FleetSpec):
            raise TypeError(
                f"fleet must be a FleetSpec, got {type(fleet).__name__}"
            )
        archs = []
        for spec in fleet.groups():
            arch = spec.make()
            archs.extend([arch] * spec.count)
        pool = DevicePool(len(archs), archs=archs)
    else:
        pool = DevicePool(1, compiled.arch)
    load_s = pool.load_replicated(compiled)
    return Deployment(pool=pool, compiled=compiled,
                      load_s=load_s, fleet=fleet, placement=placement)


def serve(deployment: Deployment, requests: list[Request], *,
          config: ServeConfig | None = None, host=None,
          swapper: ModelSwapper | None = None,
          tiers: TierSet | None = None,
          tracer: Tracer | None = None,
          metrics: MetricsRegistry | None = None) -> ServeReport:
    """Serve a timestamped request trace on a deployment.

    Args:
        deployment: A :func:`deploy` result.
        requests: Arrival-ordered trace (see
            :class:`~repro.serving.arrivals.RequestStream`).
        config: Batching/admission knobs; defaults to
            :class:`~repro.config.ServeConfig`.
            ``ServeConfig(tracing=True)`` records per-request spans onto
            :attr:`ServeReport.trace <repro.serving.server.ServeReport>`;
            ``ServeConfig(tiers=TierPolicy(...))`` tunes when tiered
            serving sheds; ``ServeConfig(plan=PlanConfig())`` compiles
            an ahead-of-time :class:`~repro.runtime.plan.ServingPlan`
            (arena-backed zero-allocation dispatch with batch
            bucketing — bit-identical predictions, less host wall
            time).
        host: Host platform for tails and CPU fallback.
        swapper: Optional hot-swap scheduler bound to the deployment's
            pool.
        tiers: Optional :func:`compress` ladder; degraded tiers become
            co-resident on the pool and overloaded batches shed to them
            instead of dropping.
        tracer: Record into this tracer instead of a fresh one.
        metrics: Registry for the server's ``serve.*`` instruments.

    Returns:
        The :class:`~repro.serving.server.ServeReport` (a
        :class:`Result`: ``.summary()`` / ``.trace``).
    """
    if config is None:
        config = ServeConfig()
    server = InferenceServer(deployment.pool, config=config, host=host,
                             swapper=swapper, tiers=tiers, tracer=tracer,
                             metrics=metrics)
    return server.serve(requests)


def serve_cluster(trained, *, config, tiers: TierSet | None = None,
                  metrics: MetricsRegistry | None = None,
                  tracer: Tracer | None = None):
    """Serve a multi-tenant traffic superposition on a simulated fleet.

    Builds a :class:`~repro.cluster.cluster.Cluster` — N replica
    servers behind a sharding router on one discrete-event engine,
    optionally autoscaled — streams ``config.total_requests`` routed
    requests through it, and returns the aggregated report.  The run
    is bit-deterministic per ``config.seed`` for any router policy and
    replica count.

    Args:
        trained: A :func:`train` result, a :func:`deploy` result, or a
            bare compiled model — whatever carries the model every
            replica serves (each replica gets its own device pool; a
            deployment's existing pool is not reused).
        config: The :class:`~repro.cluster.cluster.ClusterConfig`
            (tenants, replica count, router policy, autoscaler knobs).
        tiers: Optional :func:`compress` ladder, co-resident on every
            replica.
        metrics: Registry shared across the fleet (``serve.*``
            instruments aggregate; the cluster adds ``cluster.*``).
        tracer: Record cluster-level spans into this tracer (overrides
            ``config.tracing``).

    Returns:
        The :class:`~repro.cluster.report.ClusterReport` (a
        :class:`Result`: ``.summary()`` / ``.trace``).
    """
    from repro.cluster.cluster import Cluster

    compiled = getattr(trained, "compiled", trained)
    if not isinstance(compiled, CompiledModel):
        raise TypeError(
            "trained must be a PipelineResult, Deployment or "
            f"CompiledModel, got {type(trained).__name__}"
        )
    cluster = Cluster(compiled, config, tiers=tiers, metrics=metrics,
                      tracer=tracer)
    return cluster.run()
