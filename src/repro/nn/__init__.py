"""HDC-as-a-hyper-wide-neural-network interpretation (paper Fig. 2).

The paper's central mapping: the HDC pipeline *is* a three-layer dense
network — input layer (``n`` nodes) → hyper-wide hidden layer
(``d`` nodes, tanh) → output layer (``k`` nodes) — where the hidden
weights are the base hypervectors and the output weights are the trained
class hypervectors.  This package provides the float network
representation that :mod:`repro.tflite` quantizes and
:mod:`repro.edgetpu` compiles.
"""

from repro.nn.layers import Activation, Argmax, Dense, Layer
from repro.nn.graph import Network
from repro.nn.builder import (
    encoder_network,
    from_classifier,
    from_fused,
    inference_network,
)

__all__ = [
    "Activation",
    "Argmax",
    "Dense",
    "Layer",
    "Network",
    "encoder_network",
    "from_classifier",
    "from_fused",
    "inference_network",
]
