"""Sequential float network with shape inference and cost accounting."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.layers import Layer

__all__ = ["Network"]


class Network:
    """An ordered stack of layers with a fixed input width.

    The float reference for everything downstream: the TFLite converter
    quantizes a ``Network``, the Edge TPU compiler tiles its dense
    layers, and the platform cost models consume its per-layer shapes.

    Args:
        input_dim: Width of the input layer (``n`` for the encoder
            network, the paper's sample feature count).
        layers: Layer specs applied in order.
        name: Network name used in reports and serialized models.

    Raises:
        ValueError: If consecutive layer shapes do not chain.
    """

    def __init__(self, input_dim: int, layers: Iterable[Layer],
                 name: str = "network"):
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        self.input_dim = int(input_dim)
        self.layers: list[Layer] = list(layers)
        if not self.layers:
            raise ValueError("a network needs at least one layer")
        self.name = name
        # Shape-check the whole stack eagerly so construction fails fast.
        self._widths = [self.input_dim]
        width = self.input_dim
        for layer in self.layers:
            width = layer.output_dim(width)
            self._widths.append(width)

    @property
    def output_dim(self) -> int:
        """Width of the final layer's output."""
        return self._widths[-1]

    @property
    def layer_widths(self) -> list[int]:
        """Activation widths: ``[input_dim, after layer 0, ...]``."""
        return list(self._widths)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network in float32 on ``(batch, input_dim)`` inputs."""
        x = np.asarray(x, dtype=np.float32)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(
                f"expected input of width {self.input_dim}, got shape {x.shape}"
            )
        for layer in self.layers:
            x = layer.apply(x)
        return x[0] if single else x

    def flops_per_sample(self) -> int:
        """Total floating-point ops to run one sample through the stack."""
        return sum(
            layer.flops(width)
            for layer, width in zip(self.layers, self._widths[:-1])
        )

    def parameter_count(self) -> int:
        """Total trainable parameters across all layers."""
        return sum(layer.parameter_count() for layer in self.layers)

    def parameter_bytes(self, bytes_per_param: int = 4) -> int:
        """Model size at the given parameter width (4 = float32, 1 = int8)."""
        if bytes_per_param < 1:
            raise ValueError(f"bytes_per_param must be >= 1, got {bytes_per_param}")
        return self.parameter_count() * bytes_per_param

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [f"Network {self.name!r} (input width {self.input_dim})"]
        for layer, width_in, width_out in zip(
            self.layers, self._widths[:-1], self._widths[1:]
        ):
            lines.append(
                f"  {layer.name:<16} {type(layer).__name__:<12} "
                f"{width_in:>7} -> {width_out:<7} "
                f"params={layer.parameter_count():>10} "
                f"flops/sample={layer.flops(width_in):>12}"
            )
        lines.append(
            f"  total: params={self.parameter_count()} "
            f"flops/sample={self.flops_per_sample()}"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Network(name={self.name!r}, input_dim={self.input_dim}, "
            f"layers={[layer.name for layer in self.layers]})"
        )
