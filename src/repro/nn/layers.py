"""Float layer specifications for the wide-NN interpretation.

Only the three layer kinds the paper's mapping needs: dense (fully
connected), elementwise activation, and argmax.  Each layer knows how to
run itself in float (the reference semantics the quantized pipeline is
validated against) and how to report its shape and arithmetic cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Activation", "Argmax", "Dense", "Layer"]

_ACTIVATIONS = {
    "tanh": np.tanh,
    "relu": lambda x: np.maximum(x, 0.0),
    "identity": lambda x: x,
}


class Layer:
    """Interface shared by all layer specs."""

    name: str

    def output_dim(self, input_dim: int) -> int:
        """Output width given ``input_dim`` (raises on mismatch)."""
        raise NotImplementedError

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Run the layer on a ``(batch, input_dim)`` activation matrix."""
        raise NotImplementedError

    def flops(self, input_dim: int) -> int:
        """Floating-point operations per *sample*."""
        raise NotImplementedError

    def parameter_count(self) -> int:
        """Number of trainable parameters."""
        return 0


@dataclass
class Dense(Layer):
    """Fully connected layer ``y = x @ weights + bias``.

    Attributes:
        weights: Shape ``(input_dim, output_dim)``.
        bias: Optional shape ``(output_dim,)``; HDC layers have none.
        name: Layer name, used in compiled-model reports.
    """

    weights: np.ndarray
    bias: np.ndarray | None = None
    name: str = "dense"

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float32)
        if self.weights.ndim != 2:
            raise ValueError(f"weights must be 2-D, got shape {self.weights.shape}")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.float32)
            if self.bias.shape != (self.weights.shape[1],):
                raise ValueError(
                    f"bias shape {self.bias.shape} does not match output dim "
                    f"{self.weights.shape[1]}"
                )

    @property
    def input_dim(self) -> int:
        return self.weights.shape[0]

    def output_dim(self, input_dim: int) -> int:
        if input_dim != self.weights.shape[0]:
            raise ValueError(
                f"layer {self.name!r} expects input dim {self.weights.shape[0]}, "
                f"got {input_dim}"
            )
        return self.weights.shape[1]

    def apply(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weights
        if self.bias is not None:
            out = out + self.bias
        return out.astype(np.float32)

    def flops(self, input_dim: int) -> int:
        # One multiply + one add per weight, plus the bias adds.
        out_dim = self.output_dim(input_dim)
        total = 2 * input_dim * out_dim
        if self.bias is not None:
            total += out_dim
        return total

    def parameter_count(self) -> int:
        count = self.weights.size
        if self.bias is not None:
            count += self.bias.size
        return count


@dataclass
class Activation(Layer):
    """Elementwise activation: ``tanh``, ``relu`` or ``identity``."""

    kind: str = "tanh"
    name: str = "activation"

    def __post_init__(self) -> None:
        if self.kind not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.kind!r}; choose from "
                f"{sorted(_ACTIVATIONS)}"
            )

    def output_dim(self, input_dim: int) -> int:
        return input_dim

    def apply(self, x: np.ndarray) -> np.ndarray:
        return _ACTIVATIONS[self.kind](x).astype(np.float32)

    def flops(self, input_dim: int) -> int:
        # Count one op per element; tanh is costlier in practice, which
        # the platform cost models capture separately.
        return input_dim


@dataclass
class Argmax(Layer):
    """Final classification layer: index of the maximum logit."""

    name: str = "argmax"

    def output_dim(self, input_dim: int) -> int:
        if input_dim < 1:
            raise ValueError("argmax needs at least one input")
        return 1

    def apply(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(x, axis=-1, keepdims=True).astype(np.int64)

    def flops(self, input_dim: int) -> int:
        return input_dim
