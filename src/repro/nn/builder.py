"""Builders: HDC models → wide neural networks (paper Fig. 2).

The paper slices the three-layer network in half:

- the **encoder network** (input → hidden) has the base hypervectors as
  its ``n x d`` weight matrix and tanh as the hidden activation — during
  *training* only this half runs on the Edge TPU, and the encoded
  hypervectors come back to the host for class-hypervector updates;
- the **inference network** adds the second half (hidden → output) whose
  ``d x k`` weights are the trained class hypervectors — the similarity
  check becomes a plain fully-connected layer and the whole model runs
  on the accelerator.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.bagging import FusedHDCModel
from repro.hdc.encoder import LinearEncoder, NonlinearEncoder
from repro.hdc.model import HDCClassifier
from repro.nn.graph import Network
from repro.nn.layers import Activation, Argmax, Dense

__all__ = [
    "encoder_network",
    "from_classifier",
    "from_fused",
    "inference_network",
]


def encoder_network(encoder: NonlinearEncoder | LinearEncoder,
                    name: str = "hdc-encoder") -> Network:
    """Build the first half of the wide NN from an HDC encoder.

    Args:
        encoder: A projection encoder (nonlinear tanh, or linear for the
            ablation).  ID/level encoders cannot be expressed as a dense
            layer and are rejected.

    Returns:
        ``Dense(B)`` (+ ``Tanh`` for the nonlinear encoder), producing
        encoded hypervectors.
    """
    if not isinstance(encoder, (NonlinearEncoder, LinearEncoder)):
        raise TypeError(
            f"only projection encoders map to a dense network; got "
            f"{type(encoder).__name__}"
        )
    bias = getattr(encoder, "phases", None)
    layers: list = [Dense(encoder.base_hypervectors, bias=bias, name="encode")]
    if isinstance(encoder, NonlinearEncoder):
        layers.append(Activation("tanh", name="encode-tanh"))
    return Network(encoder.num_features, layers, name=name)


def inference_network(base_matrix: np.ndarray, class_matrix: np.ndarray,
                      nonlinear: bool = True, include_argmax: bool = False,
                      encode_bias: np.ndarray | None = None,
                      name: str = "hdc-inference") -> Network:
    """Build the full three-layer inference network.

    Args:
        base_matrix: ``(n, d)`` encoding weights (base hypervectors).
        class_matrix: ``(d, k)`` classification weights (class
            hypervectors as columns).
        nonlinear: Insert the tanh hidden activation (the paper's
            encoder); ``False`` builds the linear-encoding ablation.
        include_argmax: Append the argmax layer so the network emits a
            class index instead of similarity scores.
        encode_bias: Optional hidden-layer bias (a phase-enabled
            encoder's offsets).
        name: Network name.
    """
    base_matrix = np.asarray(base_matrix, dtype=np.float32)
    class_matrix = np.asarray(class_matrix, dtype=np.float32)
    if base_matrix.ndim != 2 or class_matrix.ndim != 2:
        raise ValueError("base_matrix and class_matrix must be 2-D")
    if base_matrix.shape[1] != class_matrix.shape[0]:
        raise ValueError(
            f"hidden width mismatch: base {base_matrix.shape} vs "
            f"class {class_matrix.shape}"
        )
    layers: list = [Dense(base_matrix, bias=encode_bias, name="encode")]
    if nonlinear:
        layers.append(Activation("tanh", name="encode-tanh"))
    layers.append(Dense(class_matrix, name="classify"))
    if include_argmax:
        layers.append(Argmax(name="predict"))
    return Network(base_matrix.shape[0], layers, name=name)


def from_classifier(model: HDCClassifier, include_argmax: bool = False,
                    name: str = "hdc-inference") -> Network:
    """Compile a trained :class:`HDCClassifier` into its inference network.

    The class hypervectors (rows) become the columns of the second dense
    layer, exactly the paper's "network parameters ... determined by the
    trained class hypervectors".
    """
    if model.class_hypervectors is None:
        raise ValueError("classifier has no trained class hypervectors")
    if not isinstance(model.encoder, (NonlinearEncoder, LinearEncoder)):
        raise TypeError(
            "classifier must use a projection encoder to compile to a "
            "dense network"
        )
    return inference_network(
        model.encoder.base_hypervectors,
        model.class_hypervectors.T,
        nonlinear=isinstance(model.encoder, NonlinearEncoder),
        include_argmax=include_argmax,
        encode_bias=getattr(model.encoder, "phases", None),
        name=name,
    )


def from_fused(fused: FusedHDCModel, include_argmax: bool = False,
               name: str = "hdc-bagged-inference") -> Network:
    """Compile a fused bagging model into its (full-width) inference network."""
    return inference_network(
        fused.base_matrix,
        fused.class_matrix,
        nonlinear=True,
        include_argmax=include_argmax,
        name=name,
    )
