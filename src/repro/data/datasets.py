"""Surrogates for the five evaluation datasets of the paper (Table I).

Each factory returns a :class:`~repro.data.loaders.Dataset` whose shape
matches the paper's Table I exactly (sample count, feature count, class
count) and whose character approximates the original data source:

========  ========  ==========  =========  ================================
Dataset   #Samples  #Features   #Classes   Paper description
========  ========  ==========  =========  ================================
FACE         80854        608          2   Facial images (proprietary)
ISOLET        7797        617         26   Spoken-letter speech features
UCIHAR        7667        561         12   Smartphone activity logs
MNIST        60000        784         10   Handwritten digits
PAMAP2       32768         27          5   Wearable IMU activity logs
========  ========  ==========  =========  ================================

The originals are proprietary (FACE) or require downloads, so we generate
seeded synthetic data with :mod:`repro.data.synthetic` (see DESIGN.md for
the substitution argument).  Only shape and learnability enter the
paper's evaluation: runtime results depend on (samples, features,
classes), and accuracy results only require datasets on which HDC reaches
the high-80s-to-high-90s accuracy regime the paper reports.

Factories accept ``max_samples`` to materialize a smaller (but equally
shaped-in-features/classes) dataset for fast experimentation; the
*runtime* cost models always use the full Table I shapes via
:data:`TABLE_I` / :func:`specs`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.loaders import Dataset, train_test_split
from repro.data.synthetic import SyntheticConfig, make_classification

__all__ = [
    "DatasetSpec",
    "TABLE_I",
    "face",
    "isolet",
    "load",
    "mnist",
    "pamap2",
    "specs",
    "ucihar",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape metadata for one Table-I dataset.

    The runtime/energy cost models consume these shapes directly (they do
    not need materialized arrays), so full-scale Fig. 5/6/10 and Table II
    reproductions stay cheap.

    Attributes:
        name: Canonical lower-case dataset name.
        num_samples: Total sample count from Table I.
        num_features: Input feature count ``n``.
        num_classes: Class count ``k``.
        description: The paper's one-line description.
        test_fraction: Fraction held out for testing when materialized.
    """

    name: str
    num_samples: int
    num_features: int
    num_classes: int
    description: str
    test_fraction: float = 0.2

    @property
    def num_train(self) -> int:
        """Training-sample count implied by the split fraction."""
        return self.num_samples - self.num_test

    @property
    def num_test(self) -> int:
        """Test-sample count implied by the split fraction."""
        return max(1, int(round(self.num_samples * self.test_fraction)))


TABLE_I: dict[str, DatasetSpec] = {
    "face": DatasetSpec("face", 80854, 608, 2, "Facial images"),
    "isolet": DatasetSpec("isolet", 7797, 617, 26, "Speech data"),
    "ucihar": DatasetSpec("ucihar", 7667, 561, 12, "Human activity logs"),
    "mnist": DatasetSpec("mnist", 60000, 784, 10, "Handwritten digits"),
    "pamap2": DatasetSpec("pamap2", 32768, 27, 5, "Human activity logs"),
}

# Per-dataset synthetic character: tuned so nonlinear-HDC accuracy lands in
# the regime the paper's Fig. 7 reports (FACE/MNIST/ISOLET high,
# UCIHAR/PAMAP2 slightly lower), without making any dataset trivial.
_CHARACTER: dict[str, dict] = {
    "face": dict(latent_dim=16, class_separation=3.5, warp_strength=0.7,
                 noise_std=0.30, nonnegative=True, clusters_per_class=3),
    "isolet": dict(latent_dim=32, class_separation=5.0, warp_strength=0.5,
                   noise_std=0.25, clusters_per_class=1),
    "ucihar": dict(latent_dim=20, class_separation=4.8, warp_strength=0.5,
                   noise_std=0.28, clusters_per_class=1),
    "mnist": dict(latent_dim=16, class_separation=5.5, warp_strength=0.4,
                  noise_std=0.20, sparsity=0.30, nonnegative=True,
                  clusters_per_class=1),
    "pamap2": dict(latent_dim=12, class_separation=5.0, warp_strength=0.6,
                   noise_std=0.25, clusters_per_class=2),
}

# Stable per-dataset seed offsets so different datasets generated with the
# same user seed do not share random streams.
_SEED_OFFSET: dict[str, int] = {
    "face": 101, "isolet": 211, "ucihar": 307, "mnist": 401, "pamap2": 503,
}


def _materialize(name: str, max_samples: int | None, seed: int) -> Dataset:
    """Generate the surrogate for ``name`` with at most ``max_samples``."""
    spec = TABLE_I[name]
    num_samples = spec.num_samples
    if max_samples is not None:
        if max_samples < 2 * spec.num_classes:
            raise ValueError(
                f"max_samples={max_samples} too small for {spec.num_classes} "
                f"classes with a train/test split"
            )
        num_samples = min(num_samples, max_samples)
    config = SyntheticConfig(
        num_samples=num_samples,
        num_features=spec.num_features,
        num_classes=spec.num_classes,
        **_CHARACTER[name],
    )
    x, y = make_classification(config, seed=seed + _SEED_OFFSET[name])
    train_x, train_y, test_x, test_y = train_test_split(
        x, y, test_fraction=spec.test_fraction, seed=seed + _SEED_OFFSET[name]
    )
    return Dataset(
        name=name,
        train_x=train_x,
        train_y=train_y,
        test_x=test_x,
        test_y=test_y,
        num_classes=spec.num_classes,
        metadata={
            "description": spec.description,
            "table_i_samples": spec.num_samples,
            "materialized_samples": num_samples,
            "seed": seed,
        },
    )


def face(max_samples: int | None = None, seed: int = 0) -> Dataset:
    """FACE surrogate: 2-class facial-image-like data (80854 x 608)."""
    return _materialize("face", max_samples, seed)


def isolet(max_samples: int | None = None, seed: int = 0) -> Dataset:
    """ISOLET surrogate: 26-class spoken-letter-like data (7797 x 617)."""
    return _materialize("isolet", max_samples, seed)


def ucihar(max_samples: int | None = None, seed: int = 0) -> Dataset:
    """UCIHAR surrogate: 12-class smartphone-activity data (7667 x 561)."""
    return _materialize("ucihar", max_samples, seed)


def mnist(max_samples: int | None = None, seed: int = 0) -> Dataset:
    """MNIST surrogate: 10-class digit-like sparse data (60000 x 784)."""
    return _materialize("mnist", max_samples, seed)


def pamap2(max_samples: int | None = None, seed: int = 0) -> Dataset:
    """PAMAP2 surrogate: 5-class wearable-IMU data (32768 x 27)."""
    return _materialize("pamap2", max_samples, seed)


_FACTORIES: dict[str, Callable[..., Dataset]] = {
    "face": face,
    "isolet": isolet,
    "ucihar": ucihar,
    "mnist": mnist,
    "pamap2": pamap2,
}


def load(name: str, max_samples: int | None = None, seed: int = 0) -> Dataset:
    """Load a Table-I surrogate by name.

    Args:
        name: One of ``face``, ``isolet``, ``ucihar``, ``mnist``,
            ``pamap2`` (case-insensitive).
        max_samples: Optional cap on total materialized samples.
        seed: Generation seed.

    Raises:
        KeyError: If ``name`` is not a Table-I dataset.
    """
    key = name.lower()
    if key not in _FACTORIES:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(_FACTORIES)}"
        )
    return _FACTORIES[key](max_samples=max_samples, seed=seed)


def specs() -> list[DatasetSpec]:
    """Return the Table-I specs in the paper's row order."""
    return [TABLE_I[n] for n in ("face", "isolet", "ucihar", "mnist", "pamap2")]
