"""Raw sensor traces and windowed feature extraction.

The paper's activity datasets (UCIHAR, PAMAP2) are not raw signals but
*windowed statistics* of IMU traces — UCI HAR's 561 features are means,
deviations, energies, correlations and similar, computed over sliding
windows.  This module provides that front end so the library covers the
full edge pipeline: raw multichannel sensor signal → sliding windows →
feature vector → HDC encoding.

The synthetic IMU generator produces per-activity quasi-periodic
signals (each activity has characteristic frequencies/amplitudes per
channel, plus noise and phase jitter), which is enough structure for
windowed statistics to separate activities the way real HAR features
do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loaders import Dataset, train_test_split

__all__ = [
    "ImuConfig",
    "SyntheticImuGenerator",
    "extract_features",
    "feature_count",
    "make_activity_dataset",
    "sliding_windows",
]


@dataclass(frozen=True)
class ImuConfig:
    """Synthetic IMU parameters.

    Attributes:
        num_channels: Sensor channels (e.g. 6 = 3-axis accel + gyro).
        num_activities: Distinct activity classes.
        sample_rate_hz: Nominal sampling rate (sets frequency scale).
        noise_std: Additive sensor noise.
        jitter: Per-window random phase/frequency jitter (0-1).
    """

    num_channels: int = 6
    num_activities: int = 5
    sample_rate_hz: float = 50.0
    noise_std: float = 0.3
    jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.num_channels < 1:
            raise ValueError(f"num_channels must be >= 1, got {self.num_channels}")
        if self.num_activities < 2:
            raise ValueError(
                f"num_activities must be >= 2, got {self.num_activities}"
            )
        if self.sample_rate_hz <= 0:
            raise ValueError("sample_rate_hz must be > 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


class SyntheticImuGenerator:
    """Generates per-activity raw IMU traces.

    Each (activity, channel) pair gets a characteristic base frequency,
    amplitude and DC offset drawn once at construction; traces are sums
    of two harmonics with jittered phase plus Gaussian noise.

    Args:
        config: Generator parameters.
        seed: Seed for activity signatures and trace noise.
    """

    def __init__(self, config: ImuConfig | None = None,
                 seed: int | None = None):
        self.config = config if config is not None else ImuConfig()
        self._rng = np.random.default_rng(seed)
        cfg = self.config
        # Activity signatures: frequency in [0.5, 5] Hz, amplitude in
        # [0.5, 2], offset in [-1, 1] per (activity, channel).
        self._freq = self._rng.uniform(
            0.5, 5.0, (cfg.num_activities, cfg.num_channels))
        self._amp = self._rng.uniform(
            0.5, 2.0, (cfg.num_activities, cfg.num_channels))
        self._offset = self._rng.uniform(
            -1.0, 1.0, (cfg.num_activities, cfg.num_channels))

    def trace(self, activity: int, num_samples: int) -> np.ndarray:
        """One raw trace, shape ``(num_samples, num_channels)``.

        Args:
            activity: Activity label in ``[0, num_activities)``.
            num_samples: Trace length in samples.
        """
        cfg = self.config
        if not 0 <= activity < cfg.num_activities:
            raise ValueError(
                f"activity {activity} outside [0, {cfg.num_activities})"
            )
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        t = np.arange(num_samples) / cfg.sample_rate_hz
        out = np.empty((num_samples, cfg.num_channels), dtype=np.float32)
        for channel in range(cfg.num_channels):
            freq = self._freq[activity, channel]
            freq = freq * (1.0 + cfg.jitter * self._rng.uniform(-1, 1))
            phase = self._rng.uniform(0, 2 * np.pi)
            amp = self._amp[activity, channel]
            signal = (
                self._offset[activity, channel]
                + amp * np.sin(2 * np.pi * freq * t + phase)
                + 0.4 * amp * np.sin(2 * np.pi * 2.1 * freq * t + 2 * phase)
            )
            if cfg.noise_std > 0:
                signal = signal + self._rng.normal(0, cfg.noise_std,
                                                   num_samples)
            out[:, channel] = signal
        return out


def sliding_windows(trace: np.ndarray, window: int,
                    stride: int | None = None) -> np.ndarray:
    """Cut a ``(samples, channels)`` trace into overlapping windows.

    Args:
        trace: The raw signal.
        window: Window length in samples.
        stride: Hop between windows; defaults to ``window // 2`` (the
            UCI HAR convention of 50% overlap).

    Returns:
        Array of shape ``(num_windows, window, channels)``.
    """
    trace = np.asarray(trace)
    if trace.ndim != 2:
        raise ValueError(f"expected (samples, channels), got shape {trace.shape}")
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if stride is None:
        stride = window // 2
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    if len(trace) < window:
        raise ValueError(
            f"trace of {len(trace)} samples shorter than window {window}"
        )
    starts = range(0, len(trace) - window + 1, stride)
    return np.stack([trace[s:s + window] for s in starts])


# Per-channel statistics, in order; names document the feature layout.
_CHANNEL_STATS = (
    "mean", "std", "min", "max", "median", "mad", "energy", "iqr",
    "zero_crossings",
)


def feature_count(num_channels: int) -> int:
    """Features produced by :func:`extract_features` for ``num_channels``.

    Per-channel statistics plus all pairwise channel correlations.
    """
    if num_channels < 1:
        raise ValueError(f"num_channels must be >= 1, got {num_channels}")
    pairs = num_channels * (num_channels - 1) // 2
    return num_channels * len(_CHANNEL_STATS) + pairs


def extract_features(windows: np.ndarray) -> np.ndarray:
    """HAR-style windowed statistics.

    Args:
        windows: Shape ``(num_windows, window, channels)`` (from
            :func:`sliding_windows`).

    Returns:
        Shape ``(num_windows, feature_count(channels))`` float32: nine
        statistics per channel (mean, std, min, max, median, MAD,
        energy, IQR, zero-crossing count) followed by the upper-triangle
        pairwise channel correlations.
    """
    windows = np.asarray(windows, dtype=np.float64)
    if windows.ndim != 3:
        raise ValueError(
            f"expected (windows, samples, channels), got shape {windows.shape}"
        )
    num_windows, length, channels = windows.shape
    per_channel = [
        windows.mean(axis=1),
        windows.std(axis=1),
        windows.min(axis=1),
        windows.max(axis=1),
        np.median(windows, axis=1),
        np.median(np.abs(windows - np.median(windows, axis=1, keepdims=True)),
                  axis=1),
        (windows ** 2).mean(axis=1),
        (np.percentile(windows, 75, axis=1)
         - np.percentile(windows, 25, axis=1)),
        (np.diff(np.signbit(windows -
                            windows.mean(axis=1, keepdims=True)), axis=1)
         != 0).sum(axis=1).astype(np.float64),
    ]
    features = [np.concatenate(per_channel, axis=1)]

    if channels > 1:
        centered = windows - windows.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(centered, axis=1)
        correlations = []
        for a in range(channels):
            for b in range(a + 1, channels):
                denom = np.maximum(norms[:, a] * norms[:, b], 1e-12)
                correlations.append(
                    (centered[:, :, a] * centered[:, :, b]).sum(axis=1) / denom
                )
        features.append(np.stack(correlations, axis=1))
    return np.concatenate(features, axis=1).astype(np.float32)


def make_activity_dataset(num_windows_per_activity: int = 200,
                          window: int = 128,
                          config: ImuConfig | None = None,
                          test_fraction: float = 0.2,
                          seed: int = 0) -> Dataset:
    """Full raw-signal pipeline: traces → windows → features → Dataset.

    Args:
        num_windows_per_activity: Windows generated per class.
        window: Window length in samples.
        config: IMU generator parameters.
        test_fraction: Held-out fraction.
        seed: Seed for generation and the split.

    Returns:
        A :class:`Dataset` named ``"imu-activity"`` whose features are
        the HAR-style windowed statistics.
    """
    if num_windows_per_activity < 2:
        raise ValueError(
            "need at least 2 windows per activity, got "
            f"{num_windows_per_activity}"
        )
    config = config if config is not None else ImuConfig()
    generator = SyntheticImuGenerator(config, seed=seed)
    stride = window // 2
    samples_needed = window + stride * (num_windows_per_activity - 1)
    all_features = []
    all_labels = []
    for activity in range(config.num_activities):
        trace = generator.trace(activity, samples_needed)
        windows = sliding_windows(trace, window, stride)
        all_features.append(extract_features(windows))
        all_labels.append(np.full(len(windows), activity, dtype=np.int64))
    x = np.concatenate(all_features)
    y = np.concatenate(all_labels)
    train_x, train_y, test_x, test_y = train_test_split(
        x, y, test_fraction=test_fraction, seed=seed,
    )
    return Dataset(
        name="imu-activity",
        train_x=train_x, train_y=train_y,
        test_x=test_x, test_y=test_y,
        num_classes=config.num_activities,
        metadata={"window": window, "channels": config.num_channels,
                  "sample_rate_hz": config.sample_rate_hz},
    )
