"""Drifting data streams for continual-learning experiments.

The paper's introduction motivates on-edge *training* with "the dynamics
of many IoT practices, which require model updates frequently to follow
the rapidly changing inputs".  This module provides that setting: a
seeded stream whose class-conditional distributions drift over time
(latent centroids follow a smooth random walk), so a model trained once
decays while a continually-updated model tracks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DriftingStream", "StreamConfig"]


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of a drifting classification stream.

    Attributes:
        num_features: Observed feature count ``n``.
        num_classes: Class count ``k``.
        latent_dim: Latent Gaussian dimensionality.
        class_separation: Centroid spacing (as in
            :class:`~repro.data.synthetic.SyntheticConfig`).
        drift_rate: Standard deviation of the per-step centroid random
            walk, as a fraction of the class separation.  0 disables
            drift (the stream becomes stationary).
        noise_std: Per-feature observation noise.
    """

    num_features: int = 40
    num_classes: int = 4
    latent_dim: int = 12
    class_separation: float = 4.0
    drift_rate: float = 0.02
    noise_std: float = 0.2

    def __post_init__(self) -> None:
        if self.num_features < 1 or self.latent_dim < 1:
            raise ValueError("num_features and latent_dim must be >= 1")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if self.drift_rate < 0:
            raise ValueError(f"drift_rate must be >= 0, got {self.drift_rate}")


class DriftingStream:
    """A seeded stream of labeled batches under concept drift.

    Each call to :meth:`next_batch` advances time: centroids take one
    random-walk step, then a balanced labeled batch is drawn from the
    *current* distribution.  :meth:`test_set` samples the current
    distribution without advancing time, for evaluation.

    Args:
        config: Stream parameters.
        seed: Seed for centroids, drift and sampling.
    """

    def __init__(self, config: StreamConfig | None = None,
                 seed: int | None = None):
        self.config = config if config is not None else StreamConfig()
        self._rng = np.random.default_rng(seed)
        cfg = self.config
        scale = cfg.class_separation / np.sqrt(cfg.latent_dim)
        self._centroids = self._rng.standard_normal(
            (cfg.num_classes, cfg.latent_dim)
        ) * scale
        self._lift = self._rng.standard_normal(
            (cfg.latent_dim, cfg.num_features)
        ) / np.sqrt(cfg.latent_dim)
        self._step_scale = cfg.drift_rate * scale
        self.steps = 0

    def _sample(self, num_samples: int,
                rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        labels = np.arange(num_samples) % cfg.num_classes
        rng.shuffle(labels)
        latent = self._centroids[labels] + rng.standard_normal(
            (num_samples, cfg.latent_dim)
        )
        x = latent @ self._lift
        if cfg.noise_std > 0:
            x = x + rng.normal(0.0, cfg.noise_std, x.shape)
        return x.astype(np.float32), labels.astype(np.int64)

    def advance(self, steps: int = 1) -> None:
        """Take ``steps`` drift steps without drawing any samples.

        The serving layer advances drift at per-request granularity
        while drawing samples one at a time, so the two motions are
        exposed separately; :meth:`next_batch` composes them.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        for _ in range(steps):
            self._centroids = self._centroids + self._rng.standard_normal(
                self._centroids.shape
            ) * self._step_scale
            self.steps += 1

    def draw(self, num_samples: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw labeled samples from the *current* distribution.

        Unlike :meth:`next_batch`, drift does not advance and labels are
        i.i.d. uniform rather than balanced — the arrival semantics of
        an online request stream, where each request is one independent
        observation (a balanced draw of size 1 would always be class 0).
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        cfg = self.config
        labels = self._rng.integers(0, cfg.num_classes, num_samples)
        latent = self._centroids[labels] + self._rng.standard_normal(
            (num_samples, cfg.latent_dim)
        )
        x = latent @ self._lift
        if cfg.noise_std > 0:
            x = x + self._rng.normal(0.0, cfg.noise_std, x.shape)
        return x.astype(np.float32), labels.astype(np.int64)

    def next_batch(self, batch_size: int = 64) -> tuple[np.ndarray, np.ndarray]:
        """Advance the drift one step and draw a balanced labeled batch."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.advance(1)
        return self._sample(batch_size, self._rng)

    def test_set(self, num_samples: int = 256,
                 seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Sample the *current* distribution without advancing the drift.

        Uses an independent generator so evaluation never perturbs the
        stream's randomness (runs stay reproducible whether or not you
        evaluate).
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        eval_rng = np.random.default_rng((seed, self.steps))
        return self._sample(num_samples, eval_rng)

    def drift_distance(self) -> float:
        """Cumulative centroid displacement scale so far (diagnostics)."""
        return float(self._step_scale * np.sqrt(self.steps))
