"""Dataset container, normalization, splitting, and batching utilities.

These are the plumbing pieces every experiment shares: an immutable
:class:`Dataset` holding train/test arrays, per-feature normalization (HDC
encoding quality is sensitive to feature scale), a seeded train/test
split, and a mini-batch iterator used by the pipelines that stream samples
through the (simulated) Edge TPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

__all__ = ["Dataset", "batches", "normalize_features", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An immutable classification dataset with a train/test split.

    Attributes:
        name: Human-readable dataset name (e.g. ``"isolet"``).
        train_x: Training samples, shape ``(num_train, num_features)``.
        train_y: Training labels in ``[0, num_classes)``, shape ``(num_train,)``.
        test_x: Test samples, shape ``(num_test, num_features)``.
        test_y: Test labels, shape ``(num_test,)``.
        num_classes: Number of distinct classes.
    """

    name: str
    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.train_x.ndim != 2:
            raise ValueError(f"train_x must be 2-D, got shape {self.train_x.shape}")
        if self.test_x.ndim != 2:
            raise ValueError(f"test_x must be 2-D, got shape {self.test_x.shape}")
        if self.train_x.shape[1] != self.test_x.shape[1]:
            raise ValueError(
                "train/test feature counts differ: "
                f"{self.train_x.shape[1]} vs {self.test_x.shape[1]}"
            )
        if len(self.train_x) != len(self.train_y):
            raise ValueError(
                f"train_x has {len(self.train_x)} rows but train_y has "
                f"{len(self.train_y)} labels"
            )
        if len(self.test_x) != len(self.test_y):
            raise ValueError(
                f"test_x has {len(self.test_x)} rows but test_y has "
                f"{len(self.test_y)} labels"
            )
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        for labels, split in ((self.train_y, "train"), (self.test_y, "test")):
            if len(labels) and (labels.min() < 0 or labels.max() >= self.num_classes):
                raise ValueError(
                    f"{split} labels out of range [0, {self.num_classes}): "
                    f"min={labels.min()}, max={labels.max()}"
                )

    @property
    def num_features(self) -> int:
        """Number of input features ``n``."""
        return self.train_x.shape[1]

    @property
    def num_train(self) -> int:
        """Number of training samples."""
        return len(self.train_x)

    @property
    def num_test(self) -> int:
        """Number of test samples."""
        return len(self.test_x)

    def subsample(self, max_train: int | None, max_test: int | None = None,
                  seed: int = 0) -> "Dataset":
        """Return a copy holding at most ``max_train``/``max_test`` samples.

        Sampling is uniform without replacement and seeded, so repeated
        calls with the same arguments yield the same subset.  ``None``
        leaves that split untouched.
        """
        rng = np.random.default_rng(seed)
        train_x, train_y = self.train_x, self.train_y
        test_x, test_y = self.test_x, self.test_y
        if max_train is not None and max_train < len(train_x):
            idx = rng.choice(len(train_x), size=max_train, replace=False)
            train_x, train_y = train_x[idx], train_y[idx]
        if max_test is not None and max_test < len(test_x):
            idx = rng.choice(len(test_x), size=max_test, replace=False)
            test_x, test_y = test_x[idx], test_y[idx]
        return replace(
            self, train_x=train_x, train_y=train_y, test_x=test_x, test_y=test_y
        )

    def normalized(self) -> "Dataset":
        """Return a copy with features standardized using *train* statistics."""
        mean = self.train_x.mean(axis=0)
        std = self.train_x.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return replace(
            self,
            train_x=((self.train_x - mean) / std).astype(np.float32),
            test_x=((self.test_x - mean) / std).astype(np.float32),
        )


def normalize_features(x: np.ndarray, mean: np.ndarray | None = None,
                       std: np.ndarray | None = None) -> np.ndarray:
    """Standardize columns of ``x`` to zero mean / unit variance.

    Args:
        x: Sample matrix, shape ``(num_samples, num_features)``.
        mean: Optional per-feature means (e.g. computed on a training
            split).  Computed from ``x`` when omitted.
        std: Optional per-feature standard deviations.  Computed from
            ``x`` when omitted; near-zero deviations are clamped to one so
            constant features map to zero instead of dividing by zero.

    Returns:
        The standardized matrix as ``float32``.
    """
    if x.ndim != 2:
        raise ValueError(f"expected a 2-D sample matrix, got shape {x.shape}")
    if mean is None:
        mean = x.mean(axis=0)
    if std is None:
        std = x.std(axis=0)
    std = np.where(np.asarray(std) < 1e-12, 1.0, std)
    return ((x - mean) / std).astype(np.float32)


def train_test_split(x: np.ndarray, y: np.ndarray, test_fraction: float = 0.2,
                     seed: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split ``(x, y)`` into train/test with a seeded shuffle.

    Args:
        x: Sample matrix, shape ``(num_samples, num_features)``.
        y: Labels, shape ``(num_samples,)``.
        test_fraction: Fraction of samples assigned to the test split;
            must lie in the open interval (0, 1).
        seed: Seed for the shuffling RNG.

    Returns:
        ``(train_x, train_y, test_x, test_y)``.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if len(x) != len(y):
        raise ValueError(f"x has {len(x)} rows but y has {len(y)} labels")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    num_test = max(1, int(round(len(x) * test_fraction)))
    test_idx = order[:num_test]
    train_idx = order[num_test:]
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def batches(x: np.ndarray, batch_size: int,
            y: np.ndarray | None = None) -> Iterator[tuple]:
    """Yield contiguous mini-batches of ``x`` (and optionally ``y``).

    The final batch may be smaller than ``batch_size``.  Yields
    ``(batch_x,)`` tuples, or ``(batch_x, batch_y)`` when labels are
    supplied, so callers can unpack uniformly.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    for start in range(0, len(x), batch_size):
        stop = start + batch_size
        if y is None:
            yield (x[start:stop],)
        else:
            yield (x[start:stop], y[start:stop])
