"""Dataset substrate for the reproduction.

The paper evaluates on five datasets (Table I).  FACE is proprietary and
the rest require network downloads, so this package provides *seeded
synthetic surrogates* that match each dataset's shape (sample count,
feature count, class count) and qualitative character (sparsity, feature
scale, class separability).  See DESIGN.md section 2 for the substitution
rationale.

Public API::

    from repro.data import isolet, mnist, pamap2, face, ucihar
    from repro.data import Dataset, DatasetSpec, TABLE_I, load, specs
"""

from repro.data.loaders import Dataset, batches, normalize_features, train_test_split
from repro.data.sensors import (
    ImuConfig,
    SyntheticImuGenerator,
    extract_features,
    feature_count,
    make_activity_dataset,
    sliding_windows,
)
from repro.data.streams import DriftingStream, StreamConfig
from repro.data.synthetic import SyntheticConfig, make_classification
from repro.data.datasets import (
    TABLE_I,
    DatasetSpec,
    face,
    isolet,
    load,
    mnist,
    pamap2,
    specs,
    ucihar,
)

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DriftingStream",
    "ImuConfig",
    "StreamConfig",
    "SyntheticConfig",
    "SyntheticImuGenerator",
    "TABLE_I",
    "batches",
    "extract_features",
    "face",
    "feature_count",
    "isolet",
    "load",
    "make_activity_dataset",
    "make_classification",
    "mnist",
    "normalize_features",
    "pamap2",
    "sliding_windows",
    "specs",
    "train_test_split",
    "ucihar",
]
