"""Seeded synthetic classification-data generator.

The generator produces class-conditional Gaussian mixtures in a latent
space, then lifts them into the observed feature space through a random
linear map plus a sinusoidal warp.  The warp makes the classes *linearly
inseparable* in feature space, which matters for this reproduction: the
paper's encoder is a **nonlinear** (tanh) random projection chosen
precisely because it separates such data better than a linear map
(paper Sec. III-A).  A purely linear synthetic dataset would hide that
design point.

All randomness flows from a single integer seed, so datasets are fully
reproducible across processes and platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticConfig", "make_classification"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters controlling a synthetic dataset.

    Attributes:
        num_samples: Total number of generated samples.
        num_features: Observed feature dimensionality ``n``.
        num_classes: Number of classes ``k``.
        latent_dim: Dimensionality of the latent Gaussian space.  Smaller
            values make features more correlated (image-like); ``None``
            defaults to ``min(num_features, 24)``.
        class_separation: Distance between latent class centroids in
            units of the within-class standard deviation.  Around 2-4
            yields the 85-97% HDC accuracies the paper reports.
        warp_strength: Amplitude of the sinusoidal nonlinearity mixed
            into the observation map; 0 disables it.
        noise_std: Standard deviation of per-feature observation noise.
        sparsity: Fraction of entries zeroed per sample (MNIST-like
            datasets are mostly background); 0 disables.
        nonnegative: Shift/clip features to be non-negative (pixel-like).
        clusters_per_class: Latent Gaussian modes per class; more than
            one produces multi-modal classes (activity data).
    """

    num_samples: int
    num_features: int
    num_classes: int
    latent_dim: int | None = None
    class_separation: float = 3.0
    warp_strength: float = 0.6
    noise_std: float = 0.25
    sparsity: float = 0.0
    nonnegative: bool = False
    clusters_per_class: int = 1

    def __post_init__(self) -> None:
        if self.num_samples < self.num_classes:
            raise ValueError(
                f"need at least one sample per class: {self.num_samples} samples, "
                f"{self.num_classes} classes"
            )
        if self.num_features < 1:
            raise ValueError(f"num_features must be >= 1, got {self.num_features}")
        if self.num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {self.num_classes}")
        if not 0.0 <= self.sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {self.sparsity}")
        if self.clusters_per_class < 1:
            raise ValueError(
                f"clusters_per_class must be >= 1, got {self.clusters_per_class}"
            )

    @property
    def effective_latent_dim(self) -> int:
        """Latent dimensionality after applying the default rule."""
        if self.latent_dim is not None:
            return self.latent_dim
        return min(self.num_features, 24)


def make_classification(config: SyntheticConfig,
                        seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Generate a synthetic classification problem.

    Args:
        config: Generation parameters.
        seed: Seed for all randomness (centroids, maps, noise, labels).

    Returns:
        ``(x, y)`` where ``x`` is ``float32`` of shape
        ``(num_samples, num_features)`` and ``y`` is ``int64`` of shape
        ``(num_samples,)`` with labels in ``[0, num_classes)``.  Samples
        are shuffled so class labels are interleaved.
    """
    rng = np.random.default_rng(seed)
    latent_dim = config.effective_latent_dim
    num_modes = config.num_classes * config.clusters_per_class

    # Latent centroids: one Gaussian mode per (class, cluster) pair, placed
    # at class_separation-scaled random directions so classes are separable
    # in latent space but overlap mildly.
    centroids = rng.standard_normal((num_modes, latent_dim))
    centroids *= config.class_separation / np.sqrt(latent_dim)

    # Assign samples to classes as evenly as possible, then to a random
    # cluster within the class.
    labels = np.arange(config.num_samples) % config.num_classes
    rng.shuffle(labels)
    cluster_offset = rng.integers(0, config.clusters_per_class, config.num_samples)
    mode_index = labels * config.clusters_per_class + cluster_offset

    latent = centroids[mode_index] + rng.standard_normal(
        (config.num_samples, latent_dim)
    )

    # Observation map: random linear lift plus a sinusoidal warp of the
    # latent coordinates.  The warp is what makes the observed classes
    # linearly inseparable.
    lift = rng.standard_normal((latent_dim, config.num_features))
    lift /= np.sqrt(latent_dim)
    x = latent @ lift
    if config.warp_strength > 0.0:
        warp = rng.standard_normal((latent_dim, config.num_features))
        warp /= np.sqrt(latent_dim)
        phase = rng.uniform(0.0, 2.0 * np.pi, config.num_features)
        x = x + config.warp_strength * np.sin(1.5 * (latent @ warp) + phase)
    if config.noise_std > 0.0:
        x = x + rng.normal(0.0, config.noise_std, x.shape)

    if config.nonnegative:
        # Shift into the positive orthant and clip, mimicking pixel data.
        x = np.clip(x - x.min(axis=0, keepdims=True), 0.0, None)
    if config.sparsity > 0.0:
        mask = rng.random(x.shape) >= config.sparsity
        x = x * mask

    return x.astype(np.float32), labels.astype(np.int64)
