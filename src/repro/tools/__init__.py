"""Command-line tools.

Three commands wrap the library for shell use, mirroring the
TFLite/Edge TPU workflow the paper's users would follow::

    python -m repro.tools train isolet --bagging -o isolet.rtfl
    python -m repro.tools inspect isolet.rtfl --disasm
    python -m repro.tools profile-cluster --requests 200000

``train`` runs the co-design training pipeline on a Table-I surrogate
and writes the deployable quantized model; ``inspect`` compiles a saved
model for the Edge TPU and reports the partition, buffer usage, latency
estimates and (optionally) the lowered instruction trace;
``profile-cluster`` runs the cluster simulator's benchmark workload
under :mod:`cProfile` and prints the hottest functions (the standing
watchdog for the vectorized fast path's constants).
"""
