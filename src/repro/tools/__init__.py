"""Command-line tools.

Two commands wrap the library for shell use, mirroring the TFLite/Edge
TPU workflow the paper's users would follow::

    python -m repro.tools train isolet --bagging -o isolet.rtfl
    python -m repro.tools inspect isolet.rtfl --disasm

``train`` runs the co-design training pipeline on a Table-I surrogate
and writes the deployable quantized model; ``inspect`` compiles a saved
model for the Edge TPU and reports the partition, buffer usage, latency
estimates and (optionally) the lowered instruction trace.
"""
