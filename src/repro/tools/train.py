"""The ``train`` tool: dataset surrogate → deployable quantized model."""

from __future__ import annotations

import argparse

from repro.config import PipelineConfig
from repro.data import load
from repro.data.datasets import TABLE_I
from repro.hdc import BaggingConfig
from repro.runtime import InferencePipeline, TrainingPipeline

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools train",
        description="Train an HDC model with the co-design pipeline and "
                    "save the quantized inference model.",
    )
    parser.add_argument("dataset", choices=sorted(TABLE_I),
                        help="Table-I dataset surrogate")
    parser.add_argument("-o", "--output", default=None,
                        help="output model path (default <dataset>.rtfl)")
    parser.add_argument("--dimension", type=int, default=4096,
                        help="hypervector width d (paper: 10000)")
    parser.add_argument("--iterations", type=int, default=10,
                        help="training passes without bagging (paper: 20)")
    parser.add_argument("--max-samples", type=int, default=4000,
                        help="cap on materialized samples (0 = full size)")
    parser.add_argument("--bagging", action="store_true",
                        help="enable the paper's bagging optimization")
    parser.add_argument("--models", type=int, default=4,
                        help="bagging sub-models M")
    parser.add_argument("--bagging-iterations", type=int, default=6,
                        help="sub-model passes I'")
    parser.add_argument("--dataset-ratio", type=float, default=0.6,
                        help="bootstrap sampling ratio alpha")
    parser.add_argument("--seed", type=int, default=7)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    max_samples = args.max_samples if args.max_samples > 0 else None
    dataset = load(args.dataset, max_samples=max_samples,
                   seed=args.seed).normalized()
    print(f"dataset {dataset.name}: train={dataset.num_train} "
          f"test={dataset.num_test} features={dataset.num_features} "
          f"classes={dataset.num_classes}")

    bagging = None
    if args.bagging:
        bagging = BaggingConfig(
            num_models=args.models,
            dimension=args.dimension,
            iterations=args.bagging_iterations,
            dataset_ratio=args.dataset_ratio,
        )
    pipeline = TrainingPipeline(PipelineConfig(
        dimension=args.dimension,
        iterations=args.iterations,
        bagging=bagging,
        seed=args.seed,
    ))
    result = pipeline.run(dataset.train_x, dataset.train_y,
                          num_classes=dataset.num_classes)
    print(result.profiler.report("training (modeled)"))

    inference = InferencePipeline(result.compiled, batch=1)
    outcome = inference.run(dataset.test_x, dataset.test_y)
    print(f"test accuracy (int8, on device): {outcome.accuracy:.4f}")
    print(f"modeled latency: "
          f"{1e6 * outcome.seconds / dataset.num_test:.1f} us/sample")

    output = args.output if args.output else f"{args.dataset}.rtfl"
    result.inference_model.save(output)
    print(f"saved quantized model to {output} "
          f"({result.inference_model.size_bytes()} bytes)")
    return 0
