"""The ``profile-cluster`` tool: cProfile the cluster simulator.

Reproduces the replica-sweep benchmark workload (three tenants, 8-wide
dynamic batching, round-robin sharding) at a configurable scale, runs
it under :mod:`cProfile`, and prints the hottest functions — the
standing entry point for keeping the vectorized fast path honest: any
regression in the per-arrival or per-batch constants shows up here as
a new hot frame long before the wall-clock budget in CI trips.

Examples::

    python -m repro.tools profile-cluster
    python -m repro.tools profile-cluster --requests 200000 --replicas 8
    python -m repro.tools profile-cluster --scalar --sort tottime
    python -m repro.tools profile-cluster --output /tmp/cluster.pstats

``--scalar`` forces the scalar (per-request) pump, so the two paths
can be profiled against each other; ``--output`` dumps raw pstats for
``snakeviz``/``pstats`` offline digging.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools profile-cluster",
        description="Profile the cluster simulator on the replica-sweep "
                    "benchmark workload.",
    )
    parser.add_argument("--requests", type=int, default=100_000,
                        help="routed requests to simulate "
                             "(default 100000)")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replica servers behind the router "
                             "(default 4)")
    parser.add_argument("--policy", default="round_robin",
                        help="router policy (default round_robin; "
                             "least_queue exercises the scalar "
                             "fallback)")
    parser.add_argument("--seed", type=int, default=7,
                        help="traffic seed (default 7, the benchmark's)")
    parser.add_argument("--scalar", action="store_true",
                        help="force the scalar per-request pump "
                             "instead of the vectorized fast path")
    parser.add_argument("--top", type=int, default=25,
                        help="rows of the profile table to print "
                             "(default 25)")
    parser.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "ncalls"),
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--output", default=None,
                        help="also dump raw pstats to this path")
    return parser


def _build_cluster(args):
    import numpy as np

    import repro
    from repro.cluster import Cluster, ClusterConfig, TenantSpec
    from repro.data.streams import DriftingStream, StreamConfig
    from repro.edgetpu import compile_model
    from repro.hdc.encoder import NonlinearEncoder
    from repro.hdc.model import HDCClassifier
    from repro.nn import from_classifier
    from repro.tflite import convert

    stream = DriftingStream(
        StreamConfig(num_features=16, num_classes=3, drift_rate=0.0),
        seed=2,
    )
    train_x, train_y = stream.next_batch(240)
    rng = np.random.default_rng(0)
    encoder = NonlinearEncoder(16, 256, seed=rng)
    classifier = HDCClassifier(dimension=256, encoder=encoder, seed=rng)
    classifier.fit(train_x, train_y, iterations=4, num_classes=3)
    compiled = compile_model(
        convert(from_classifier(classifier, include_argmax=True),
                train_x[:96])
    )
    tenants = (
        TenantSpec("interactive", rate_hz=60000.0, deadline_s=0.01),
        TenantSpec("bursty", rate_hz=30000.0, deadline_s=0.05,
                   kind="bursty"),
        TenantSpec("background", rate_hz=15000.0, deadline_s=0.2),
    )
    config = ClusterConfig(
        tenants=tenants, total_requests=args.requests,
        num_replicas=args.replicas, devices_per_replica=1,
        policy=args.policy,
        serve=repro.ServeConfig(max_batch=8, max_queue=50_000),
        seed=args.seed, fast=not args.scalar,
    )
    return Cluster(compiled, config)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    cluster = _build_cluster(args)
    path = ("scalar" if args.scalar or cluster._pump is None
            else "fast")
    print(f"profiling {args.requests} requests x {args.replicas} "
          f"replicas ({args.policy}, {path} path)...", flush=True)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    report = cluster.run()
    profiler.disable()
    wall = time.perf_counter() - start

    summary = report.summary()
    print(f"wall {wall:.3f}s (under profiler)  "
          f"served {summary['served']}  "
          f"p99 {summary['latency']['p99_s'] * 1e3:.3f}ms  "
          f"miss {summary['deadline_miss_rate']:.4f}")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.output is not None:
        stats.dump_stats(args.output)
        print(f"pstats written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
