"""The ``inspect`` tool: compile a saved model and report device fit."""

from __future__ import annotations

import argparse

from repro.edgetpu import backend_names, compile_model, lower, make_arch
from repro.tflite import FlatModel

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools inspect",
        description="Compile a saved model for a simulated accelerator "
                    "backend and report the partition, buffer usage and "
                    "latency estimates.",
    )
    parser.add_argument("model", help="path to a .rtfl model file")
    parser.add_argument("--batches", type=int, nargs="+", default=[1, 8, 64],
                        help="batch sizes to estimate latency for")
    parser.add_argument("--disasm", action="store_true",
                        help="print the lowered instruction trace (batch 1)")
    parser.add_argument("--backend", default="edgetpu",
                        choices=backend_names(),
                        help="registered accelerator backend to compile "
                             "for (default: edgetpu)")
    parser.add_argument("--usb-mbps", type=float, default=None,
                        help="override the attach-link bandwidth in MB/s "
                             "(edgetpu backends only)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    model = FlatModel.load(args.model)
    print(f"model {model.name!r}: input {model.input_spec.shape}, "
          f"output {model.output_spec.shape}, "
          f"{model.size_bytes()} bytes on disk")

    overrides = {}
    if args.usb_mbps is not None:
        overrides["usb_bytes_per_s"] = args.usb_mbps * 1e6
    arch = make_arch(args.backend, **overrides)
    compiled = compile_model(model, arch)
    print(compiled.summary())
    print(f"model load: {1e3 * compiled.load_seconds():.2f} ms")
    for batch in args.batches:
        seconds = compiled.invoke_seconds(batch)
        print(f"invoke batch={batch:<4} {1e6 * seconds:9.1f} us "
              f"({1e6 * seconds / batch:8.1f} us/sample)")
    if args.disasm:
        print()
        print(lower(compiled, batch=1).disassembly())
    return 0
