"""The ``inspect`` tool: compile a saved model and report device fit."""

from __future__ import annotations

import argparse

from repro.edgetpu import EdgeTpuArch, compile_model, lower
from repro.tflite import FlatModel

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools inspect",
        description="Compile a saved model for the Edge TPU and report "
                    "the partition, buffer usage and latency estimates.",
    )
    parser.add_argument("model", help="path to a .rtfl model file")
    parser.add_argument("--batches", type=int, nargs="+", default=[1, 8, 64],
                        help="batch sizes to estimate latency for")
    parser.add_argument("--disasm", action="store_true",
                        help="print the lowered instruction trace (batch 1)")
    parser.add_argument("--usb-mbps", type=float, default=None,
                        help="override USB bandwidth in MB/s")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    model = FlatModel.load(args.model)
    print(f"model {model.name!r}: input {model.input_spec.shape}, "
          f"output {model.output_spec.shape}, "
          f"{model.size_bytes()} bytes on disk")

    arch = EdgeTpuArch() if args.usb_mbps is None else EdgeTpuArch(
        usb_bytes_per_s=args.usb_mbps * 1e6
    )
    compiled = compile_model(model, arch)
    print(compiled.summary())
    print(f"model load: {1e3 * compiled.load_seconds():.2f} ms")
    for batch in args.batches:
        seconds = compiled.invoke_seconds(batch)
        print(f"invoke batch={batch:<4} {1e6 * seconds:9.1f} us "
              f"({1e6 * seconds / batch:8.1f} us/sample)")
    if args.disasm:
        print()
        print(lower(compiled, batch=1).disassembly())
    return 0
