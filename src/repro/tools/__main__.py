"""Dispatch for ``python -m repro.tools {train,inspect}``."""

from __future__ import annotations

import sys

from repro.tools import inspect as inspect_tool
from repro.tools import profile_cluster as profile_cluster_tool
from repro.tools import train as train_tool

_COMMANDS = {
    "train": train_tool.main,
    "inspect": inspect_tool.main,
    "profile-cluster": profile_cluster_tool.main,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.tools "
              "{train,inspect,profile-cluster} ...")
        print(__import__("repro.tools", fromlist=["__doc__"]).__doc__)
        return 0 if argv else 2
    command = argv[0]
    if command not in _COMMANDS:
        print(f"unknown command {command!r}; choose from "
              f"{sorted(_COMMANDS)}", file=sys.stderr)
        return 2
    return _COMMANDS[command](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
