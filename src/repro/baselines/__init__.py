"""Comparison baselines.

The paper motivates HDC against deep neural networks: "complex
algorithms, e.g., Deep Neural Networks, ... require billions of
parameters and many hours to train" while "HDC models are
computationally efficient to train".  This package provides the
implied baseline — a small multilayer perceptron trained with
backpropagation — so that claim can be measured, and demonstrates that
the :mod:`repro.tflite`/:mod:`repro.edgetpu` stack is general enough to
compile a *conventionally trained* network, not just HDC-shaped ones.
"""

from repro.baselines.mlp import MlpClassifier, MlpConfig

__all__ = ["MlpClassifier", "MlpConfig"]
