"""A small MLP trained with backpropagation (the paper's implied baseline).

One tanh hidden layer and a linear output layer, trained with mini-batch
SGD on softmax cross-entropy.  The tanh hidden layer is deliberate: the
trained network compiles through :func:`repro.baselines.mlp.MlpClassifier.to_network`
onto exactly the same quantize-and-run-on-Edge-TPU path as the HDC
models, so inference comparisons are apples to apples.  Training,
however, requires gradients — the thing the Edge TPU (and the paper's
framework) cannot accelerate, which is the contrast the paper draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.graph import Network
from repro.nn.layers import Activation, Argmax, Dense

__all__ = ["MlpClassifier", "MlpConfig"]


@dataclass(frozen=True)
class MlpConfig:
    """MLP hyper-parameters.

    Attributes:
        hidden_dim: Hidden-layer width.
        learning_rate: SGD step size.
        batch_size: Mini-batch size.
        epochs: Training passes over the data.
        weight_scale: Std of the (scaled-Gaussian) weight init.
        momentum: Classical momentum coefficient (0 disables).
    """

    hidden_dim: int = 256
    learning_rate: float = 0.05
    batch_size: int = 64
    epochs: int = 20
    weight_scale: float = 1.0
    momentum: float = 0.9

    def __post_init__(self) -> None:
        if self.hidden_dim < 1 or self.batch_size < 1 or self.epochs < 1:
            raise ValueError("hidden_dim, batch_size, epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {self.learning_rate}")
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {self.momentum}")


@dataclass
class MlpHistory:
    """Per-epoch training statistics."""

    loss: list = field(default_factory=list)
    train_accuracy: list = field(default_factory=list)
    flops: int = 0


class MlpClassifier:
    """Two-layer MLP: ``scores = tanh(x @ W1 + b1) @ W2 + b2``.

    Args:
        config: Hyper-parameters.
        seed: Seed (or Generator) for initialization and shuffling.
    """

    def __init__(self, config: MlpConfig | None = None,
                 seed: np.random.Generator | int | None = None):
        self.config = config if config is not None else MlpConfig()
        self._rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.w1: np.ndarray | None = None
        self.b1: np.ndarray | None = None
        self.w2: np.ndarray | None = None
        self.b2: np.ndarray | None = None
        self.history = MlpHistory()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray,
            num_classes: int | None = None) -> MlpHistory:
        """Train with mini-batch SGD + momentum on cross-entropy.

        Args:
            x: Samples ``(num_samples, num_features)``.
            y: Integer labels.
            num_classes: Class count; inferred when omitted.
        """
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} samples but {len(y)} labels")
        if num_classes is None:
            num_classes = int(y.max()) + 1
        config = self.config
        num_features = x.shape[1]
        hidden = config.hidden_dim

        # Xavier-style init keeps tanh activations in their linear range.
        scale1 = config.weight_scale / np.sqrt(num_features)
        scale2 = config.weight_scale / np.sqrt(hidden)
        self.w1 = (self._rng.standard_normal((num_features, hidden))
                   * scale1).astype(np.float32)
        self.b1 = np.zeros(hidden, dtype=np.float32)
        self.w2 = (self._rng.standard_normal((hidden, num_classes))
                   * scale2).astype(np.float32)
        self.b2 = np.zeros(num_classes, dtype=np.float32)
        velocity = [np.zeros_like(p) for p in
                    (self.w1, self.b1, self.w2, self.b2)]

        for _ in range(config.epochs):
            order = self._rng.permutation(len(x))
            epoch_loss = 0.0
            correct = 0
            for start in range(0, len(x), config.batch_size):
                idx = order[start:start + config.batch_size]
                batch_x, batch_y = x[idx], y[idx]
                loss, batch_correct, grads = self._step(batch_x, batch_y,
                                                        num_classes)
                epoch_loss += loss * len(idx)
                correct += batch_correct
                params = (self.w1, self.b1, self.w2, self.b2)
                for vel, param, grad in zip(velocity, params, grads):
                    vel *= config.momentum
                    vel -= config.learning_rate * grad
                    param += vel
            self.history.loss.append(epoch_loss / len(x))
            self.history.train_accuracy.append(correct / len(x))
            # Forward + backward ~ 3x the forward multiply-add count.
            self.history.flops += int(
                6 * len(x) * (num_features * hidden + hidden * num_classes)
            )
        return self.history

    def _step(self, x: np.ndarray, y: np.ndarray,
              num_classes: int) -> tuple[float, int, tuple]:
        """One forward/backward pass; returns (loss, correct, grads)."""
        batch = len(x)
        pre = x @ self.w1 + self.b1
        hidden = np.tanh(pre)
        scores = hidden @ self.w2 + self.b2

        # Stable softmax cross-entropy.
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(batch), y] + 1e-12).mean())
        correct = int((scores.argmax(axis=1) == y).sum())

        dscores = probs
        dscores[np.arange(batch), y] -= 1.0
        dscores /= batch
        grad_w2 = hidden.T @ dscores
        grad_b2 = dscores.sum(axis=0)
        dhidden = (dscores @ self.w2.T) * (1.0 - hidden ** 2)
        grad_w1 = x.T @ dhidden
        grad_b1 = dhidden.sum(axis=0)
        return loss, correct, (grad_w1, grad_b1, grad_w2, grad_b2)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Class logits, shape ``(num_samples, num_classes)``."""
        self._check_trained()
        x = np.asarray(x, dtype=np.float32)
        return np.tanh(x @ self.w1 + self.b1) @ self.w2 + self.b2

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        return np.argmax(self.scores(x), axis=-1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy against labels ``y``."""
        y = np.asarray(y, dtype=np.int64)
        predictions = self.predict(x)
        if len(predictions) != len(y):
            raise ValueError(f"{len(predictions)} predictions but {len(y)} labels")
        return float(np.mean(predictions == y))

    def to_network(self, include_argmax: bool = False,
                   name: str = "mlp") -> Network:
        """Compile to a float :class:`Network` for the TFLite/TPU path."""
        self._check_trained()
        layers = [
            Dense(self.w1, bias=self.b1, name="hidden"),
            Activation("tanh", name="hidden-tanh"),
            Dense(self.w2, bias=self.b2, name="logits"),
        ]
        if include_argmax:
            layers.append(Argmax(name="predict"))
        return Network(self.w1.shape[0], layers, name=name)

    def _check_trained(self) -> None:
        if self.w1 is None:
            raise RuntimeError("model has not been trained; call fit() first")
