"""A host-CPU (Raspberry Pi class) backend.

The paper's Sec. IV-E counterexample — few-feature workloads gain
nothing from the accelerator — needs the *non*-accelerated alternative
to be a first-class fleet member, not a special case.  This backend
models a small ARM host (Pi 4 class: four cores, NEON int8 dot
products) through the same
:class:`~repro.edgetpu.backend.AcceleratorArch` protocol: an in-memory
"attach link" (memcpy bandwidth, so transfer terms nearly vanish),
microsecond dispatch, dense-MAC compute with no pipeline fill, and
board-level power well above an accelerator's.

The placement optimizer offloads narrow tenants here: below the
crossover feature count, USB dispatch overhead costs the TPU more than
the matmul saves (``repro.runtime.placement.tpu_feature_crossover``
finds the same boundary analytically).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgetpu.backend import (
    AcceleratorArch,
    Instruction,
    OpPlan,
    register_backend,
)

__all__ = ["HostCpuArch"]


@dataclass(frozen=True)
class HostCpuArch(AcceleratorArch):
    """Parameters of the host-CPU backend.

    Attributes:
        cores: CPU cores used by the int8 kernels.
        macs_per_cycle_per_core: int8 MACs one core *sustains* per
            clock — sustained NEON GEMM throughput on an in-order
            memory system, well below the dot-product peak.
        clock_hz: CPU clock.
        parameter_buffer_bytes: Weights live in main memory; effectively
            unbounded next to the paper's models, so nothing streams.
        link_bytes_per_s: Memcpy bandwidth standing in for the attach
            link (activations never leave the host).
        invoke_overhead_s: Function-call scale dispatch cost.
        model_setup_s: Weight layout / page-in on first load.
        idle_power_w: Board idle draw.
        active_power_w: Board draw under load — the flip side of the
            trade: no dispatch overhead, but every joule is paid at CPU
            rates.
    """

    backend = "pi-cpu"

    cores: int = 4
    macs_per_cycle_per_core: int = 2
    clock_hz: float = 1.5e9
    parameter_buffer_bytes: int = 512 * 1024 * 1024
    link_bytes_per_s: float = 8e9
    invoke_overhead_s: float = 2e-6
    model_setup_s: float = 1e-3
    idle_power_w: float = 2.0
    active_power_w: float = 5.0

    def __post_init__(self) -> None:
        if self.cores < 1 or self.macs_per_cycle_per_core < 1:
            raise ValueError("cores and MACs/core/cycle must be >= 1")
        if self.clock_hz <= 0 or self.link_bytes_per_s <= 0:
            raise ValueError("clock and link bandwidth must be > 0")
        if self.parameter_buffer_bytes < 0:
            raise ValueError("parameter buffer size must be >= 0")

    @property
    def macs_per_cycle(self) -> float:
        """Aggregate int8 MAC throughput per clock."""
        return float(self.cores * self.macs_per_cycle_per_core)

    def plan_op(self, op, input_dim: int) -> OpPlan:
        """Dense cycle plan: MACs / SIMD throughput, no pipeline fill."""
        from repro.tflite.ops import FullyConnectedOp

        output_dim = op.output_dim(input_dim)
        if isinstance(op, FullyConnectedOp):
            macs = op.input_dim * output_dim
            per_row = -(-macs // self.macs_per_cycle)
            return OpPlan(
                name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
                input_dim=input_dim, output_dim=output_dim,
                fixed_cycles=0, cycles_per_row=float(per_row),
            )
        # Scalar LUT activation: ~4 cycles per element, split over cores.
        per_row = -(-(output_dim * 4) // self.cores)
        return OpPlan(
            name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
            input_dim=input_dim, output_dim=output_dim,
            fixed_cycles=0, cycles_per_row=float(per_row),
        )

    def lower_op(self, op, width: int, batch: int) -> list[Instruction]:
        """CPU lowering: one SIMD kernel call per op."""
        from repro.tflite.ops import FullyConnectedOp

        plan = self.plan_op(op, width)
        if isinstance(op, FullyConnectedOp):
            return [Instruction(
                "SIMD_MATMUL", f"{op.name} ({self.cores} cores)",
                cycles=plan.cycles(batch),
            )]
        return [Instruction(
            "LUT_ACTIVATE", f"{op.name} ({op.kind.lower()})",
            cycles=plan.cycles(batch),
        )]

    def describe(self) -> dict:
        payload = super().describe()
        payload["cores"] = self.cores
        payload["macs_per_cycle"] = self.macs_per_cycle
        return payload


register_backend("pi-cpu", HostCpuArch)
