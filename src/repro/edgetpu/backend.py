"""The accelerator backend protocol and registry.

:mod:`repro.edgetpu` started life as a single hard-coded 64x64 Edge TPU
simulator; this module is the seam that turns it into a backend
*framework*.  An accelerator backend is an :class:`AcceleratorArch`: a
frozen parameter bundle (clock, attach link, parameter-memory
hierarchy, power) plus the three hooks that make the generic machinery
— :func:`~repro.edgetpu.compiler.compile_model`,
:class:`~repro.edgetpu.device.EdgeTpuDevice`,
:func:`~repro.edgetpu.program.lower` — work unchanged for any backend:

- :meth:`AcceleratorArch.supports` — the backend's supported-op list
  (the compiler maps the maximal supported prefix, exactly as before);
- :meth:`AcceleratorArch.plan_op` — the backend's cost model for one
  mapped op, returned as the same :class:`OpPlan` (fixed cycles +
  cycles per batch row) the latency plan always consumed;
- :meth:`AcceleratorArch.lower_op` — the backend's instruction-level
  lowering of one mapped op (systolic tile loops for the MXU, event
  routing for a neuromorphic core), whose cycle totals must reproduce
  the op plan exactly.

Everything downstream — devices, pools, serving, the cluster — is a
pure function of ``transfer_time`` / ``cycles_to_seconds`` /
``invoke_overhead_s`` and the op plans, so a new backend needs only a
dataclass implementing these hooks.  **Functional results never depend
on the backend**: every backend executes the same int8 kernels, only
the modeled time and energy differ.

Backends register under a name (:func:`register_backend`) and are
instantiated by :func:`make_arch`, the surface
:class:`~repro.config.BackendSpec` resolves through::

    arch = make_arch("edgetpu", mxu_rows=32, mxu_cols=32)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "AcceleratorArch",
    "Instruction",
    "OpPlan",
    "backend_names",
    "default_supports",
    "make_arch",
    "register_backend",
]


@dataclass(frozen=True)
class OpPlan:
    """Latency plan for one backend-mapped op.

    Attributes:
        name: Op name.
        kind: Op kind string.
        weight_bytes: Parameter bytes resident on-device for this op.
        input_dim: Activation width consumed.
        output_dim: Activation width produced.
        fixed_cycles: Batch-independent cycles (pipeline fill, initial
            weight load).
        cycles_per_row: Marginal cycles per batch row.
    """

    name: str
    kind: str
    weight_bytes: int
    input_dim: int
    output_dim: int
    fixed_cycles: int
    cycles_per_row: float

    def cycles(self, batch: int) -> float:
        """Total cycles to run a batch of ``batch`` rows."""
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return self.fixed_cycles + self.cycles_per_row * batch


@dataclass(frozen=True)
class Instruction:
    """One device instruction.

    Attributes:
        opcode: E.g. ``DMA_IN``, ``LOAD_TILE``, ``PIPE_FILL``,
            ``MATMUL``, ``ACTIVATE``, ``STREAM_WEIGHTS``, ``DMA_OUT``
            for the systolic backends; event-driven backends emit their
            own opcodes (``ROUTE_EVENTS``, ``NEURON_UPDATE``).
        operand: Human-readable target (op name, tile coordinates).
        cycles: Device clock cycles consumed.
        bytes: Host-device bytes moved (DMA/stream opcodes only).
    """

    opcode: str
    operand: str
    cycles: float = 0.0
    bytes: int = 0

    def __str__(self) -> str:
        parts = [f"{self.opcode:<15} {self.operand:<28}"]
        if self.cycles:
            parts.append(f"cycles={self.cycles:g}")
        if self.bytes:
            parts.append(f"bytes={self.bytes}")
        return " ".join(parts)


def default_supports(op) -> bool:
    """The shared int8 supported-op check (FC + tanh, int8 throughout).

    Every current backend executes the same two kernel families the
    paper's HDC models need; backends with a different legality surface
    override :meth:`AcceleratorArch.supports`.
    """
    from repro.tflite.ops import FullyConnectedOp, TanhOp

    if isinstance(op, FullyConnectedOp):
        return (
            op.weights.dtype.name == "int8"
            and op.input_qparams.dtype == "int8"
            and op.output_qparams.dtype == "int8"
        )
    if isinstance(op, TanhOp):
        return op.input_qparams.dtype == "int8"
    return False


class AcceleratorArch:
    """Base protocol every accelerator backend implements.

    Subclasses are frozen dataclasses carrying the backend's parameter
    bundle.  The base class supplies the attach-link arithmetic shared
    by every backend; the required attributes are:

    - ``backend`` (class attr): registry name of the backend family.
    - ``clock_hz``: device clock driving :meth:`cycles_to_seconds`.
    - ``link_bytes_per_s``: attach-link bandwidth (field or property)
      driving :meth:`transfer_time`.
    - ``invoke_overhead_s``: fixed host dispatch cost per invocation.
    - ``parameter_buffer_bytes``: on-device parameter memory; models
      whose weights exceed it re-stream the excess every invocation.
    - ``model_setup_s``: one-time runtime setup on model load.
    - ``idle_power_w`` / ``active_power_w``: the energy model.
    """

    backend = "abstract"

    # -- attach link / clock (shared arithmetic) -----------------------

    def transfer_time(self, num_bytes: int | float) -> float:
        """Seconds to move ``num_bytes`` over the attach link."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return float(num_bytes) / self.link_bytes_per_s

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Convert device clock cycles to seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        return float(cycles) / self.clock_hz

    # -- backend hooks -------------------------------------------------

    def supports(self, op) -> bool:
        """Whether this backend executes ``op`` on-device."""
        return default_supports(op)

    def plan_op(self, op, input_dim: int) -> OpPlan:
        """Build the cycle plan for one supported op."""
        raise NotImplementedError

    def lower_op(self, op, width: int, batch: int) -> list[Instruction]:
        """Lower one mapped op into its instruction trace.

        The trace's cycle total must equal ``plan_op(op, width)
        .cycles(batch)`` — :func:`repro.edgetpu.program.lower` builds
        on this to keep disassembly exact with respect to the latency
        plan.  The generic fallback emits a single ``EXEC``
        instruction charging the plan's cycles.
        """
        plan = self.plan_op(op, width)
        return [Instruction("EXEC", op.name, cycles=plan.cycles(batch))]

    def describe(self) -> dict:
        """Flat, JSON-ready backend descriptor (for ``deploy/2``)."""
        return {
            "backend": self.backend,
            "clock_hz": self.clock_hz,
            "link_bytes_per_s": self.link_bytes_per_s,
            "parameter_buffer_bytes": self.parameter_buffer_bytes,
            "invoke_overhead_s": self.invoke_overhead_s,
            "idle_power_w": self.idle_power_w,
            "active_power_w": self.active_power_w,
        }


# ---------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., AcceleratorArch]] = {}


def _ensure_builtins() -> None:
    """Import the built-in backend modules (registration side effect).

    Lets ``make_arch("neuromorphic")`` work no matter which corner of
    the package the caller imported first; repeat calls hit the module
    cache.
    """
    import repro.edgetpu.arch  # noqa: F401
    import repro.edgetpu.hostcpu  # noqa: F401
    import repro.edgetpu.neuromorphic  # noqa: F401


def register_backend(name: str, factory: Callable[..., AcceleratorArch],
                     *, overwrite: bool = False) -> None:
    """Register an arch factory under ``name``.

    Args:
        name: Registry key (``BackendSpec(backend=name)`` resolves it).
        factory: Callable accepting the arch's keyword overrides and
            returning an :class:`AcceleratorArch`.
        overwrite: Allow replacing an existing registration.

    Raises:
        ValueError: On a duplicate name without ``overwrite``.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_REGISTRY))


def make_arch(name: str, **overrides) -> AcceleratorArch:
    """Instantiate a registered backend, applying field overrides.

    Example::

        make_arch("edgetpu")                      # the stock 64x64 TPU
        make_arch("edgetpu", mxu_rows=32, mxu_cols=32)
        make_arch("neuromorphic", cores=256)

    Raises:
        KeyError: For an unknown backend name.
    """
    _ensure_builtins()
    factory = _REGISTRY.get(name)
    if factory is None:
        raise KeyError(
            f"unknown backend {name!r}; registered: "
            f"{', '.join(backend_names()) or '(none)'}"
        )
    return factory(**overrides)
