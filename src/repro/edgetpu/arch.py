"""Edge TPU architecture parameters.

Values follow Google's published Edge TPU numbers where available (4 TOPS
int8 peak, ~2 W, 8 MiB on-chip parameter memory, USB 3.0 attach) and
measured-system estimates elsewhere (effective USB throughput,
per-invocation dispatch latency).  They are the knobs of the latency
model — DESIGN.md records how they were calibrated against the paper's
reported speedup shapes.

:class:`EdgeTpuArch` is the systolic-array instance of the
:class:`~repro.edgetpu.backend.AcceleratorArch` backend protocol; the
geometry (``mxu_rows`` x ``mxu_cols``), clock, parameter memory and
attach link are all ordinary fields, so a 32x32 "small TPU" is just a
different parameter bundle of the same backend (registered as
``"edgetpu-small"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgetpu.backend import (
    AcceleratorArch,
    Instruction,
    OpPlan,
    register_backend,
)

__all__ = ["EdgeTpuArch"]


@dataclass(frozen=True)
class EdgeTpuArch(AcceleratorArch):
    """Architecture/attachment parameters for one Edge TPU device.

    Attributes:
        mxu_rows: Systolic array rows (input-feature direction).
        mxu_cols: Systolic array columns (output-feature direction).
        clock_hz: MXU clock.  64*64 MACs * 480 MHz * 2 ops/MAC ~ 3.9 TOPS,
            matching the advertised 4 TOPS int8 peak.
        parameter_buffer_bytes: On-chip parameter memory; models whose
            weights exceed it stream the excess over USB each invocation.
        usb_bytes_per_s: Effective USB 3.0 throughput for bulk transfers
            (~320 MB/s after protocol overhead).
        invoke_overhead_s: Fixed host-side dispatch + USB round-trip
            latency per ``invoke()`` call (~85 us).  Dominates small
            models at batch 1 — the mechanism behind the paper's PAMAP2
            counterexample.
        vector_lanes: Width of the post-MXU activation unit (tanh LUT,
            requantization) in elements per cycle.
        model_setup_s: One-time runtime setup when a model is loaded
            (interpreter construction, weight layout).
        idle_power_w: Device idle power draw.
        active_power_w: Device power under load (~2 W USB version).
    """

    backend = "edgetpu"

    mxu_rows: int = 64
    mxu_cols: int = 64
    clock_hz: float = 480e6
    parameter_buffer_bytes: int = 8 * 1024 * 1024
    usb_bytes_per_s: float = 320e6
    invoke_overhead_s: float = 85e-6
    vector_lanes: int = 64
    model_setup_s: float = 25e-3
    idle_power_w: float = 0.5
    active_power_w: float = 2.0

    def __post_init__(self) -> None:
        if self.mxu_rows < 1 or self.mxu_cols < 1:
            raise ValueError("MXU dimensions must be >= 1")
        if self.clock_hz <= 0 or self.usb_bytes_per_s <= 0:
            raise ValueError("clock and USB bandwidth must be > 0")
        if self.parameter_buffer_bytes < 0:
            raise ValueError("parameter buffer size must be >= 0")
        if self.vector_lanes < 1:
            raise ValueError("vector_lanes must be >= 1")

    @property
    def link_bytes_per_s(self) -> float:
        """The attach link is the USB bus."""
        return self.usb_bytes_per_s

    @property
    def peak_tops(self) -> float:
        """Peak int8 throughput in tera-ops/second (2 ops per MAC)."""
        return 2.0 * self.mxu_rows * self.mxu_cols * self.clock_hz / 1e12

    # -- backend hooks -------------------------------------------------

    def plan_op(self, op, input_dim: int) -> OpPlan:
        """Systolic cycle plan: tiled MXU matmul, vector-unit tanh."""
        from repro.edgetpu.systolic import systolic_cycles
        from repro.tflite.ops import FullyConnectedOp

        output_dim = op.output_dim(input_dim)
        if isinstance(op, FullyConnectedOp):
            fill = systolic_cycles(
                op.input_dim, output_dim, batch=1,
                rows=self.mxu_rows, cols=self.mxu_cols, include_fill=True,
            ) - systolic_cycles(
                op.input_dim, output_dim, batch=1,
                rows=self.mxu_rows, cols=self.mxu_cols, include_fill=False,
            )
            per_row = systolic_cycles(
                op.input_dim, output_dim, batch=1,
                rows=self.mxu_rows, cols=self.mxu_cols, include_fill=False,
            )
            return OpPlan(
                name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
                input_dim=input_dim, output_dim=output_dim,
                fixed_cycles=fill, cycles_per_row=float(per_row),
            )
        # Tanh: the vector unit processes `vector_lanes` activations/cycle.
        per_row = -(-output_dim // self.vector_lanes)
        return OpPlan(
            name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
            input_dim=input_dim, output_dim=output_dim,
            fixed_cycles=0, cycles_per_row=float(per_row),
        )

    def lower_op(self, op, width: int, batch: int) -> list[Instruction]:
        """Tile-level lowering: exposed first load + fill, hidden
        double-buffered tile loads, one MATMUL pass per tile."""
        from repro.tflite.ops import FullyConnectedOp, TanhOp

        instructions: list[Instruction] = []
        if isinstance(op, FullyConnectedOp):
            out_dim = op.output_dim(width)
            row_tiles = -(-op.input_dim // self.mxu_rows)
            col_tiles = -(-out_dim // self.mxu_cols)
            # First tile load and pipeline fill are exposed; subsequent
            # tile loads are hidden behind compute by double buffering.
            instructions.append(Instruction(
                "LOAD_TILE", f"{op.name}[0,0]", cycles=self.mxu_rows,
            ))
            instructions.append(Instruction(
                "PIPE_FILL", op.name,
                cycles=self.mxu_rows + self.mxu_cols - 2,
            ))
            for row in range(row_tiles):
                for col in range(col_tiles):
                    if row or col:
                        instructions.append(Instruction(
                            "LOAD_TILE", f"{op.name}[{row},{col}] (hidden)",
                            cycles=0.0,
                        ))
                    instructions.append(Instruction(
                        "MATMUL", f"{op.name}[{row},{col}]",
                        cycles=float(batch),
                    ))
        elif isinstance(op, TanhOp):
            lanes = self.vector_lanes
            instructions.append(Instruction(
                "ACTIVATE", f"{op.name} (tanh LUT)",
                cycles=float(-(-width // lanes) * batch),
            ))
        else:  # pragma: no cover — the compiler only maps FC/TANH
            raise TypeError(
                f"cannot lower op kind {type(op).__name__}"
            )
        return instructions

    def describe(self) -> dict:
        payload = super().describe()
        payload["mxu"] = f"{self.mxu_rows}x{self.mxu_cols}"
        payload["vector_lanes"] = self.vector_lanes
        payload["peak_tops"] = self.peak_tops
        return payload


def _small_edgetpu(**overrides) -> EdgeTpuArch:
    """The "small TPU" preset: a quarter-size 32x32 MXU with half the
    parameter memory and roughly half the power — the spikehard-style
    restructuring of the same model onto smaller cores."""
    params = dict(
        mxu_rows=32, mxu_cols=32,
        parameter_buffer_bytes=4 * 1024 * 1024,
        invoke_overhead_s=70e-6,
        vector_lanes=32,
        idle_power_w=0.3, active_power_w=1.0,
    )
    params.update(overrides)
    return EdgeTpuArch(**params)


register_backend("edgetpu", EdgeTpuArch)
register_backend("edgetpu-small", _small_edgetpu)
