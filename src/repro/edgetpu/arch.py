"""Edge TPU architecture parameters.

Values follow Google's published Edge TPU numbers where available (4 TOPS
int8 peak, ~2 W, 8 MiB on-chip parameter memory, USB 3.0 attach) and
measured-system estimates elsewhere (effective USB throughput,
per-invocation dispatch latency).  They are the knobs of the latency
model — DESIGN.md records how they were calibrated against the paper's
reported speedup shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EdgeTpuArch"]


@dataclass(frozen=True)
class EdgeTpuArch:
    """Architecture/attachment parameters for one Edge TPU device.

    Attributes:
        mxu_rows: Systolic array rows (input-feature direction).
        mxu_cols: Systolic array columns (output-feature direction).
        clock_hz: MXU clock.  64*64 MACs * 480 MHz * 2 ops/MAC ~ 3.9 TOPS,
            matching the advertised 4 TOPS int8 peak.
        parameter_buffer_bytes: On-chip parameter memory; models whose
            weights exceed it stream the excess over USB each invocation.
        usb_bytes_per_s: Effective USB 3.0 throughput for bulk transfers
            (~320 MB/s after protocol overhead).
        invoke_overhead_s: Fixed host-side dispatch + USB round-trip
            latency per ``invoke()`` call (~85 us).  Dominates small
            models at batch 1 — the mechanism behind the paper's PAMAP2
            counterexample.
        vector_lanes: Width of the post-MXU activation unit (tanh LUT,
            requantization) in elements per cycle.
        model_setup_s: One-time runtime setup when a model is loaded
            (interpreter construction, weight layout).
        idle_power_w: Device idle power draw.
        active_power_w: Device power under load (~2 W USB version).
    """

    mxu_rows: int = 64
    mxu_cols: int = 64
    clock_hz: float = 480e6
    parameter_buffer_bytes: int = 8 * 1024 * 1024
    usb_bytes_per_s: float = 320e6
    invoke_overhead_s: float = 85e-6
    vector_lanes: int = 64
    model_setup_s: float = 25e-3
    idle_power_w: float = 0.5
    active_power_w: float = 2.0

    def __post_init__(self) -> None:
        if self.mxu_rows < 1 or self.mxu_cols < 1:
            raise ValueError("MXU dimensions must be >= 1")
        if self.clock_hz <= 0 or self.usb_bytes_per_s <= 0:
            raise ValueError("clock and USB bandwidth must be > 0")
        if self.parameter_buffer_bytes < 0:
            raise ValueError("parameter buffer size must be >= 0")
        if self.vector_lanes < 1:
            raise ValueError("vector_lanes must be >= 1")

    @property
    def peak_tops(self) -> float:
        """Peak int8 throughput in tera-ops/second (2 ops per MAC)."""
        return 2.0 * self.mxu_rows * self.mxu_cols * self.clock_hz / 1e12

    def transfer_time(self, num_bytes: int | float) -> float:
        """Seconds to move ``num_bytes`` over the USB attachment."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be >= 0, got {num_bytes}")
        return float(num_bytes) / self.usb_bytes_per_s

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Convert MXU clock cycles to seconds."""
        if cycles < 0:
            raise ValueError(f"cycles must be >= 0, got {cycles}")
        return float(cycles) / self.clock_hz
