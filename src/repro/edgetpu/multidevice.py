"""Multi-accelerator device pool (extension).

The paper notes "most Edge TPUs take one model at a time" and fuses the
bagging sub-models into one model for a single device.  With *several*
USB accelerators (a common deployment — Coral sells multi-TPU boards),
an alternative exists: pin one sub-model per device and run them in
parallel, aggregating scores on the host.  This module provides the
device pool and the parallel ensemble executor so that design point can
be measured against fusion (``benchmarks/test_ablation_multidevice.py``).

Timing model: devices run concurrently (makespan = slowest device), the
host pays one aggregation pass, and every device pays its own model
load once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.compiler import CompiledModel
from repro.edgetpu.device import EdgeTpuDevice

__all__ = ["DevicePool", "ParallelEnsembleResult"]


@dataclass
class ParallelEnsembleResult:
    """Outcome of one parallel ensemble invocation.

    Attributes:
        scores: Host-aggregated (summed, dequantized) ensemble scores.
        makespan_s: Wall time — the slowest device's invocation.
        device_seconds: Per-device invocation times.
        host_seconds: Host-side aggregation time.
    """

    scores: np.ndarray
    makespan_s: float
    device_seconds: list
    host_seconds: float

    @property
    def total_seconds(self) -> float:
        """Makespan plus the host aggregation tail."""
        return self.makespan_s + self.host_seconds


class DevicePool:
    """A pool of identical Edge TPU devices, one model pinned to each.

    Args:
        num_devices: Pool size.
        arch: Architecture shared by all devices.
    """

    def __init__(self, num_devices: int, arch: EdgeTpuArch | None = None):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.arch = arch if arch is not None else EdgeTpuArch()
        self.devices = [EdgeTpuDevice(self.arch) for _ in range(num_devices)]
        self.models: list[CompiledModel | None] = [None] * num_devices
        self.load_seconds: list[float] = [0.0] * num_devices

    @property
    def num_devices(self) -> int:
        """Pool size."""
        return len(self.devices)

    def load_models(self, compiled_models: list[CompiledModel]) -> float:
        """Pin one compiled model per device.

        Loads happen in parallel across devices, so the modeled cost is
        the slowest single load.

        Raises:
            ValueError: If there are more models than devices.
        """
        if not compiled_models:
            raise ValueError("no models to load")
        if len(compiled_models) > self.num_devices:
            raise ValueError(
                f"{len(compiled_models)} models but only {self.num_devices} "
                f"devices"
            )
        slowest = 0.0
        for index, compiled in enumerate(compiled_models):
            seconds = self.devices[index].load_model(compiled)
            self.models[index] = compiled
            self.load_seconds[index] = seconds
            slowest = max(slowest, seconds)
        return slowest

    def load_replicated(self, compiled: CompiledModel) -> float:
        """Pin the *same* compiled model onto every device (data
        parallelism — the replicated placement of the micro-batch
        dispatcher, as opposed to :meth:`load_models`'s one-sub-model-
        per-device sharding).

        Loads happen in parallel across devices, so the modeled cost is
        the slowest single load.
        """
        slowest = 0.0
        for index, device in enumerate(self.devices):
            seconds = device.load_model(compiled)
            self.models[index] = compiled
            self.load_seconds[index] = seconds
            slowest = max(slowest, seconds)
        return slowest

    def invoke_ensemble(self, x: np.ndarray,
                        host_elementwise_seconds=None
                        ) -> ParallelEnsembleResult:
        """Run one float batch through every loaded model in parallel.

        Each device quantizes with its own model's input qparams,
        executes, and returns dequantized scores; the host sums them
        (the fused model's aggregation semantics, computed explicitly).

        Args:
            x: Float batch ``(batch, num_features)``.
            host_elementwise_seconds: Callable ``(elements) -> seconds``
                for the host aggregation cost; free when omitted.
        """
        loaded = [(device, model) for device, model in
                  zip(self.devices, self.models) if model is not None]
        if not loaded:
            raise RuntimeError("no models loaded; call load_models() first")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {x.shape}")
        total_scores = None
        device_seconds = []
        for device, compiled in loaded:
            quantized = compiled.model.input_spec.qparams.quantize(x)
            result = device.invoke(quantized)
            device_seconds.append(result.elapsed_s)
            out_qparams = compiled.tpu_ops[-1].output_qparams
            scores = out_qparams.dequantize(result.outputs)
            total_scores = scores if total_scores is None \
                else total_scores + scores
        host_seconds = 0.0
        if host_elementwise_seconds is not None:
            # (M - 1) summations over the score matrix.
            host_seconds = host_elementwise_seconds(
                (len(loaded) - 1) * total_scores.size
            )
        return ParallelEnsembleResult(
            scores=total_scores,
            makespan_s=max(device_seconds),
            device_seconds=device_seconds,
            host_seconds=host_seconds,
        )
