"""Multi-accelerator device pool (extension).

The paper notes "most Edge TPUs take one model at a time" and fuses the
bagging sub-models into one model for a single device.  With *several*
USB accelerators (a common deployment — Coral sells multi-TPU boards),
an alternative exists: pin one sub-model per device and run them in
parallel, aggregating scores on the host.  This module provides the
device pool and the parallel ensemble executor so that design point can
be measured against fusion (``benchmarks/test_ablation_multidevice.py``).

Timing model: devices run concurrently (makespan = slowest device), the
host pays one aggregation pass, and every device pays its own model
load once.

For the online serving layer the pool also models *faults*: a
:class:`FailurePlan` schedules a USB stall or outright device loss at a
virtual time, :meth:`DevicePool.try_invoke` trips it on first use after
that time (raising :class:`DeviceFailedError` with the modeled
detection cost), and :meth:`DevicePool.unload` /
:meth:`DevicePool.reload` support hot model swaps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.backend import AcceleratorArch
from repro.edgetpu.compiler import CompiledModel, compile_model
from repro.edgetpu.device import EdgeTpuDevice

__all__ = [
    "DeviceFailedError",
    "DevicePool",
    "FailurePlan",
    "ParallelEnsembleResult",
]

# Modeled time for the host runtime to notice each failure mode: a USB
# stall is only detected when a transfer deadline expires, while losing
# the device entirely fails the next ioctl almost immediately.
_FAILURE_MODES = {"usb_stall": 0.05, "device_loss": 0.0}


class DeviceFailedError(RuntimeError):
    """Invocation hit a failed device.

    Attributes:
        device_index: Pool index of the failed device.
        mode: Failure mode (``"usb_stall"`` or ``"device_loss"``).
        detect_seconds: Modeled time the host spent noticing the
            failure before this error was raised.
    """

    def __init__(self, device_index: int, mode: str, detect_seconds: float):
        super().__init__(
            f"device {device_index} failed ({mode}, "
            f"detected in {detect_seconds:.3f}s)"
        )
        self.device_index = device_index
        self.mode = mode
        self.detect_seconds = detect_seconds


@dataclass(frozen=True)
class FailurePlan:
    """A scheduled device failure on the virtual clock.

    Attributes:
        device_index: Which pool device fails.
        at_s: Virtual time after which the next use trips the failure.
        mode: ``"usb_stall"`` (transfer hangs until a timeout) or
            ``"device_loss"`` (device drops off the bus).
        detect_seconds: Modeled detection cost charged to the caller;
            defaults per mode (stalls pay a timeout, loss is immediate).
    """

    device_index: int
    at_s: float
    mode: str = "usb_stall"
    detect_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.device_index < 0:
            raise ValueError(
                f"device_index must be >= 0, got {self.device_index}"
            )
        if self.at_s < 0:
            raise ValueError(f"at_s must be >= 0, got {self.at_s}")
        if self.mode not in _FAILURE_MODES:
            raise ValueError(
                f"mode must be one of {sorted(_FAILURE_MODES)}, "
                f"got {self.mode!r}"
            )
        if self.detect_seconds is not None and self.detect_seconds < 0:
            raise ValueError(
                f"detect_seconds must be >= 0, got {self.detect_seconds}"
            )

    @property
    def resolved_detect_seconds(self) -> float:
        """Detection cost, falling back to the mode default."""
        if self.detect_seconds is not None:
            return self.detect_seconds
        return _FAILURE_MODES[self.mode]


@dataclass
class ParallelEnsembleResult:
    """Outcome of one parallel ensemble invocation.

    Attributes:
        scores: Host-aggregated (summed, dequantized) ensemble scores.
        makespan_s: Wall time — the slowest device's invocation.
        device_seconds: Per-device invocation times.
        host_seconds: Host-side aggregation time.
    """

    scores: np.ndarray
    makespan_s: float
    device_seconds: list
    host_seconds: float

    @property
    def total_seconds(self) -> float:
        """Makespan plus the host aggregation tail."""
        return self.makespan_s + self.host_seconds


class DevicePool:
    """A pool of accelerator devices, one model pinned to each.

    Homogeneous by default (every device shares ``arch``); pass
    ``archs=`` for a mixed-backend pool — model-loading entry points
    then compile a per-architecture *variant* of each model on demand
    (cached, and the identity compile when architectures match, so
    homogeneous pools behave bit-identically to before).  Every variant
    shares the source flat model's kernels: predictions are
    bit-identical across backends, only modeled time/energy differs.

    Args:
        num_devices: Pool size.
        arch: Architecture shared by all devices (homogeneous pools).
        archs: Per-device architectures (length ``num_devices``);
            mutually exclusive with ``arch``.
    """

    def __init__(self, num_devices: int, arch: AcceleratorArch | None = None,
                 *, archs: list[AcceleratorArch] | None = None):
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if archs is not None:
            if arch is not None:
                raise ValueError("pass either arch= or archs=, not both")
            if len(archs) != num_devices:
                raise ValueError(
                    f"archs has {len(archs)} entries for a "
                    f"{num_devices}-device pool"
                )
            device_archs = list(archs)
        else:
            shared = arch if arch is not None else EdgeTpuArch()
            device_archs = [shared] * num_devices
        self.arch = device_archs[0]
        self.devices = [EdgeTpuDevice(a) for a in device_archs]
        self.models: list[CompiledModel | None] = [None] * num_devices
        self.load_seconds: list[float] = [0.0] * num_devices
        self.failed: set[int] = set()
        self.retired: set[int] = set()
        self._failure_plans: dict[int, FailurePlan] = {}
        # (id(source compiled), device arch) -> per-arch variant.  The
        # source is pinned in the value so id() stays valid.
        self._variants: dict[tuple[int, AcceleratorArch],
                             tuple[CompiledModel, CompiledModel]] = {}

    @property
    def num_devices(self) -> int:
        """Pool size (including failed and retired devices)."""
        return len(self.devices)

    @property
    def homogeneous(self) -> bool:
        """True when every device shares one architecture."""
        return all(d.arch == self.arch for d in self.devices)

    def _variant_for(self, compiled: CompiledModel,
                     arch: AcceleratorArch) -> CompiledModel:
        """The per-architecture twin of ``compiled``.

        Identity when the architectures already match (the homogeneous
        fast path — no recompile, no cache entry); otherwise compiled
        once per (model, arch) and reused, so a mixed pool with eight
        small-TPU devices derives the 32x32 variant a single time.
        """
        if compiled.arch == arch:
            return compiled
        key = (id(compiled), arch)
        entry = self._variants.get(key)
        if entry is None:
            entry = (compiled, compile_model(compiled.model, arch))
            self._variants[key] = entry
        return entry[1]

    # ------------------------------------------------------------------
    # Elastic capacity (the cluster autoscaler's device-level knob)
    # ------------------------------------------------------------------

    def add_device(self, arch: AcceleratorArch | None = None) -> int:
        """Attach one new (empty) device; returns its pool index.

        The autoscaler's scale-up primitive: the device joins healthy
        but holds no model — load the current primary (and any resident
        tiers) onto it before dispatching, charging the load time on
        the virtual clock like any other deployment.  Defaults to the
        pool's primary architecture; pass ``arch=`` to grow a mixed
        pool.
        """
        self.devices.append(EdgeTpuDevice(arch if arch is not None
                                          else self.arch))
        self.models.append(None)
        self.load_seconds.append(0.0)
        return self.num_devices - 1

    def retire(self, index: int) -> None:
        """Remove device ``index`` from service (scale-down).

        A retired device takes no further dispatches
        (:meth:`healthy_indices` excludes it) but its recorded busy
        time stands — retirement is an accounting boundary, not a
        failure.  Retiring the last serviceable device is rejected: a
        pool must always be able to dispatch.
        """
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range")
        remaining = [i for i in self.healthy_indices() if i != index]
        if not remaining:
            raise ValueError(
                f"cannot retire device {index}: it is the last "
                f"serviceable device in the pool"
            )
        self.retired.add(index)

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def schedule_failure(self, plan: FailurePlan) -> None:
        """Arm a failure: the first use of the device at or after
        ``plan.at_s`` trips it (one plan per device; re-arming replaces).
        """
        if plan.device_index >= self.num_devices:
            raise ValueError(
                f"device_index {plan.device_index} out of range for a "
                f"{self.num_devices}-device pool"
            )
        self._failure_plans[plan.device_index] = plan

    def healthy_indices(self) -> list[int]:
        """Devices that hold a model, have not failed, and are not
        retired."""
        return [i for i in range(self.num_devices)
                if self.models[i] is not None and i not in self.failed
                and i not in self.retired]

    def try_invoke(self, index: int, x: np.ndarray, at_s: float = 0.0,
                   model: CompiledModel | None = None,
                   executor=None):
        """Invoke device ``index`` at virtual time ``at_s``.

        Trips any armed :class:`FailurePlan` whose time has come: the
        device is marked failed, its model is dropped (a lost device
        must be re-enumerated and reloaded), and
        :class:`DeviceFailedError` carries the modeled detection cost.

        Args:
            index: Pool device to invoke.
            x: int8 batch.
            at_s: Virtual invocation time (drives fault injection).
            model: Run this co-resident model (see
                :meth:`load_resident`) instead of the device's primary.
            executor: Optional bit-identical stage-loop replacement,
                forwarded to :meth:`EdgeTpuDevice.invoke` (the serving
                plan's arena-kernel hook).

        Returns:
            The device's :class:`~repro.edgetpu.device.InvokeResult`.
        """
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range")
        if index in self.failed:
            plan = self._failure_plans.get(index)
            mode = plan.mode if plan is not None else "device_loss"
            raise DeviceFailedError(index, mode, 0.0)
        plan = self._failure_plans.get(index)
        if plan is not None and at_s >= plan.at_s:
            self.failed.add(index)
            self.unload(index)
            raise DeviceFailedError(
                index, plan.mode, plan.resolved_detect_seconds
            )
        if self.models[index] is None:
            raise RuntimeError(f"device {index} has no model loaded")
        if model is not None:
            model = self._variant_for(model, self.devices[index].arch)
        return self.devices[index].invoke(x, compiled=model,
                                          executor=executor)

    def invoke_cost(self, index: int, batch: int, at_s: float = 0.0,
                    model: CompiledModel | None = None):
        """Timing-only :meth:`try_invoke`: identical health checks,
        failure trips and device accounting, but no output arithmetic
        (``InvokeResult.outputs`` is ``None``).  The cluster fast path
        uses this to dispatch on modeled cost alone and compute every
        prediction in one vectorized pass afterwards.
        """
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range")
        if index in self.failed:
            plan = self._failure_plans.get(index)
            mode = plan.mode if plan is not None else "device_loss"
            raise DeviceFailedError(index, mode, 0.0)
        plan = self._failure_plans.get(index)
        if plan is not None and at_s >= plan.at_s:
            self.failed.add(index)
            self.unload(index)
            raise DeviceFailedError(
                index, plan.mode, plan.resolved_detect_seconds
            )
        if self.models[index] is None:
            raise RuntimeError(f"device {index} has no model loaded")
        if model is not None:
            model = self._variant_for(model, self.devices[index].arch)
        return self.devices[index].invoke_cost(batch, compiled=model)

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------

    def unload(self, index: int) -> None:
        """Drop the model pinned to device ``index`` (if any)."""
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range")
        self.models[index] = None
        self.devices[index].compiled = None
        self.load_seconds[index] = 0.0

    def reload(self, index: int, compiled: CompiledModel) -> float:
        """Pin ``compiled`` onto device ``index``; returns load seconds.

        Raises:
            RuntimeError: If the device has failed (a lost device cannot
                accept a model until it is physically re-attached).
        """
        if not 0 <= index < self.num_devices:
            raise ValueError(f"device index {index} out of range")
        if index in self.failed:
            raise RuntimeError(f"device {index} has failed; cannot reload")
        compiled = self._variant_for(compiled, self.devices[index].arch)
        seconds = self.devices[index].load_model(compiled)
        self.models[index] = compiled
        self.load_seconds[index] = seconds
        return seconds

    def load_models(self, compiled_models: list[CompiledModel]) -> float:
        """Pin one compiled model per device.

        Loads happen in parallel across devices, so the modeled cost is
        the slowest single load.

        Raises:
            ValueError: If there are more models than devices.
        """
        if not compiled_models:
            raise ValueError("no models to load")
        if len(compiled_models) > self.num_devices:
            raise ValueError(
                f"{len(compiled_models)} models but only {self.num_devices} "
                f"devices"
            )
        slowest = 0.0
        for index, compiled in enumerate(compiled_models):
            compiled = self._variant_for(compiled, self.devices[index].arch)
            seconds = self.devices[index].load_model(compiled)
            self.models[index] = compiled
            self.load_seconds[index] = seconds
            slowest = max(slowest, seconds)
        return slowest

    def load_replicated(self, compiled: CompiledModel) -> float:
        """Pin the *same* compiled model onto every device (data
        parallelism — the replicated placement of the micro-batch
        dispatcher, as opposed to :meth:`load_models`'s one-sub-model-
        per-device sharding).

        Loads happen in parallel across devices, so the modeled cost is
        the slowest single load.  Failed devices are skipped (a hot swap
        mid-stream must not resurrect a lost device).
        """
        slowest = 0.0
        for index, device in enumerate(self.devices):
            if index in self.failed or index in self.retired:
                continue
            variant = self._variant_for(compiled, device.arch)
            seconds = device.load_model(variant)
            self.models[index] = variant
            self.load_seconds[index] = seconds
            slowest = max(slowest, seconds)
        return slowest

    def load_resident(self, compiled: CompiledModel) -> float:
        """Co-load ``compiled`` next to the primary on every healthy
        device (the serving tiers' placement: the degradation ladder
        rides along with the replicated primary).

        Loads happen in parallel across devices, so the modeled cost is
        the slowest single load; devices already holding the model are
        free.  Failed devices are skipped.
        """
        slowest = 0.0
        for index, device in enumerate(self.devices):
            if index in self.failed or index in self.retired:
                continue
            variant = self._variant_for(compiled, device.arch)
            slowest = max(slowest, device.load_resident(variant))
        return slowest

    def invoke_ensemble(self, x: np.ndarray,
                        host_elementwise_seconds=None
                        ) -> ParallelEnsembleResult:
        """Run one float batch through every loaded model in parallel.

        Each device quantizes with its own model's input qparams,
        executes, and returns dequantized scores; the host sums them
        (the fused model's aggregation semantics, computed explicitly).

        Args:
            x: Float batch ``(batch, num_features)``.
            host_elementwise_seconds: Callable ``(elements) -> seconds``
                for the host aggregation cost; free when omitted.
        """
        loaded = [(device, model) for device, model in
                  zip(self.devices, self.models) if model is not None]
        if not loaded:
            raise RuntimeError("no models loaded; call load_models() first")
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2:
            raise ValueError(f"expected a 2-D batch, got shape {x.shape}")
        total_scores = None
        device_seconds = []
        for device, compiled in loaded:
            quantized = compiled.model.input_spec.qparams.quantize(x)
            result = device.invoke(quantized)
            device_seconds.append(result.elapsed_s)
            out_qparams = compiled.tpu_ops[-1].output_qparams
            scores = out_qparams.dequantize(result.outputs)
            total_scores = scores if total_scores is None \
                else total_scores + scores
        host_seconds = 0.0
        if host_elementwise_seconds is not None:
            # (M - 1) summations over the score matrix.
            host_seconds = host_elementwise_seconds(
                (len(loaded) - 1) * total_scores.size
            )
        return ParallelEnsembleResult(
            scores=total_scores,
            makespan_s=max(device_seconds),
            device_seconds=device_seconds,
            host_seconds=host_seconds,
        )
