"""Instruction-level lowering of a compiled model (device "assembly").

The compiler's :class:`~repro.edgetpu.backend.OpPlan` gives per-op cycle
totals; this module lowers a compiled model one step further, into an
explicit instruction trace of the kind a device executable contains:
DMA transfers over the attach link, then whatever the backend's
:meth:`~repro.edgetpu.backend.AcceleratorArch.lower_op` emits per op —
weight-tile loads, pipeline fills and per-tile MXU passes for the
systolic backends; event routing for the neuromorphic backend.  The
trace is *exact* with respect to the latency plan — its cycle and byte
totals reproduce ``CompiledModel.compute_cycles`` / ``invoke_seconds``
— which the tests assert, so the disassembly can be trusted when
debugging where an HDC layer's time goes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgetpu.backend import Instruction
from repro.edgetpu.compiler import CompiledModel
from repro.runtime.cache import LruCache

__all__ = ["Instruction", "Program", "lower"]

# Lowered programs are large (one Instruction per MXU tile), so the
# per-model memo is tighter than the scalar latency caches — 16 batch
# sizes still covers a power-of-two bucket ladder with room to spare.
_PROGRAM_CACHE_SIZE = 16


@dataclass
class Program:
    """An ordered instruction trace for one device invocation.

    Attributes:
        instructions: The trace.
        compiled: The source compiled model (for timing parameters).
        batch: Rows per invocation the trace was lowered for.
    """

    instructions: list[Instruction]
    compiled: CompiledModel
    batch: int

    @property
    def total_cycles(self) -> float:
        """Sum of instruction cycles (equals the plan's compute cycles)."""
        return sum(inst.cycles for inst in self.instructions)

    @property
    def total_transfer_bytes(self) -> int:
        """Sum of DMA/stream bytes."""
        return sum(inst.bytes for inst in self.instructions)

    def seconds(self) -> float:
        """Modeled invocation time — matches ``invoke_seconds(batch)``."""
        arch = self.compiled.arch
        return (
            arch.invoke_overhead_s
            + arch.transfer_time(self.total_transfer_bytes)
            + arch.cycles_to_seconds(self.total_cycles)
        )

    def disassembly(self) -> str:
        """The trace as readable text."""
        header = (
            f"; program for {self.compiled.model.name!r} "
            f"(batch={self.batch}, {len(self.instructions)} instructions)"
        )
        return "\n".join([header] + [f"  {inst}" for inst in self.instructions])

    def count(self, opcode: str) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for inst in self.instructions if inst.opcode == opcode)


def lower(compiled: CompiledModel, batch: int = 1) -> Program:
    """Lower a compiled model into its per-invocation instruction trace.

    The DMA frame (input activations in, parameter spill stream, output
    activations out) is backend-independent; the per-op body comes from
    the target backend's ``lower_op`` hook.  Lowering is memoized per
    ``(compiled, batch)`` — the plan is pure in both — so repeat
    callers (inspection tooling, per-batch serving paths) get the
    cached :class:`Program` back; treat it as read-only.  The memo is a
    small LRU: lowering is deterministic, so an evicted batch size
    relowers to an identical trace.

    Args:
        compiled: The compiled model.
        batch: Rows per invocation.

    Raises:
        ValueError: For a non-positive batch.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    cache: LruCache = compiled.__dict__.get("_program_cache")
    if cache is None:
        cache = LruCache(_PROGRAM_CACHE_SIZE)
        compiled.__dict__["_program_cache"] = cache
    cached = cache.get(batch)
    if cached is not None:
        return cached
    arch = compiled.arch
    instructions: list[Instruction] = []
    instructions.append(Instruction(
        "DMA_IN", "input activations",
        bytes=batch * compiled.tpu_input_bytes,
    ))
    if compiled.streamed_bytes_per_invoke:
        instructions.append(Instruction(
            "STREAM_WEIGHTS", "off-chip parameter spill",
            bytes=compiled.streamed_bytes_per_invoke,
        ))
    width = compiled.model.input_spec.size
    for op in compiled.tpu_ops:
        instructions.extend(arch.lower_op(op, width, batch))
        width = op.output_dim(width)
    instructions.append(Instruction(
        "DMA_OUT", "output activations",
        bytes=batch * compiled.tpu_output_bytes,
    ))
    program = Program(instructions=instructions, compiled=compiled,
                      batch=batch)
    cache.put(batch, program)
    return program
