"""Edge TPU simulator: compiler, systolic MXU, device, and delegate.

The paper runs its quantized HDC models on a Google Edge TPU attached
over USB 3.0.  This package substitutes a simulator that preserves what
the paper's evaluation depends on:

- **Functional fidelity**: the device executes the same int8 kernels as
  the reference interpreter, so accelerator outputs are bit-identical to
  CPU outputs (as on the real device).
- **Performance structure**: a weight-stationary 64x64 systolic MXU with
  a cycle model, an 8 MiB on-chip parameter buffer, USB transfer costs
  for inputs/outputs/model load, and a fixed per-invocation dispatch
  overhead.  These are exactly the terms that produce the paper's
  runtime shapes (e.g. Fig. 10's speedup-vs-feature-count curve and the
  PAMAP2 counterexample).
- **Compiler legality**: int8-only, a supported-op list (fully-connected
  and tanh map to the TPU; argmax falls back to the host CPU, as with
  the real Edge TPU compiler).
"""

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.backend import (
    AcceleratorArch,
    backend_names,
    make_arch,
    register_backend,
)
from repro.edgetpu.hostcpu import HostCpuArch
from repro.edgetpu.neuromorphic import NeuromorphicArch
from repro.edgetpu.systolic import SystolicArray, systolic_cycles
from repro.edgetpu.compiler import (
    CompileError,
    CompiledModel,
    OpPlan,
    compile_model,
    is_op_supported,
)
from repro.edgetpu.device import EdgeTpuDevice, InvokeResult
from repro.edgetpu.delegate import DelegatedExecutor, partition
from repro.edgetpu.multidevice import (
    DeviceFailedError,
    DevicePool,
    FailurePlan,
    ParallelEnsembleResult,
)
from repro.edgetpu.program import Instruction, Program, lower

__all__ = [
    "AcceleratorArch",
    "CompileError",
    "CompiledModel",
    "DelegatedExecutor",
    "DeviceFailedError",
    "DevicePool",
    "EdgeTpuArch",
    "EdgeTpuDevice",
    "FailurePlan",
    "HostCpuArch",
    "Instruction",
    "InvokeResult",
    "NeuromorphicArch",
    "OpPlan",
    "ParallelEnsembleResult",
    "Program",
    "SystolicArray",
    "backend_names",
    "compile_model",
    "is_op_supported",
    "lower",
    "make_arch",
    "partition",
    "register_backend",
    "systolic_cycles",
]
