"""Weight-stationary systolic-array model of the Edge TPU's MXU.

Two granularities:

- :class:`SystolicArray` — a genuine cycle-stepped register-level
  simulation of a weight-stationary array (inputs skewed in from the
  left, partial sums flowing down).  It is used in tests to validate that
  the dataflow computes exact matrix products and that the closed-form
  cycle count below matches the stepped machine cycle-for-cycle.
- :func:`systolic_cycles` — the closed-form latency the compiler uses
  for full-size layers (running a 64x64 stepped simulation for a
  10,000-wide layer would be pointlessly slow; the formula is exact for
  the same dataflow).

Dataflow (one R x C tile, batch of B input rows):

- weights ``W[r, c]`` are preloaded, one row per cycle (R cycles),
  hidden behind compute for every tile but the first by double
  buffering;
- input element ``x[b, r]`` enters row ``r`` at cycle ``b + r`` and
  moves right one PE per cycle;
- partial sums move down; output ``y[b, c]`` drains from the bottom of
  column ``c`` at cycle ``b + (R - 1) + c``.

So a tile takes ``B + R + C - 2`` cycles from first input to last
output, and consecutive tiles of the same layer overlap their fill, so a
layer with ``T`` tiles costs ``fill + T * B`` steady-state cycles.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SystolicArray", "systolic_cycles"]


class SystolicArray:
    """Cycle-stepped weight-stationary systolic array.

    Args:
        rows: PE rows (reduction/input-feature direction).
        cols: PE columns (output-feature direction).

    Use :meth:`load_weights` then :meth:`matmul`; both return cycle
    counts, and the array keeps cumulative statistics
    (``total_cycles``, ``total_macs``).
    """

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError(f"array dimensions must be >= 1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.weights: np.ndarray | None = None
        self.total_cycles = 0
        self.total_macs = 0

    def load_weights(self, weights: np.ndarray) -> int:
        """Preload a weight tile; returns the load cycle count (= rows).

        Args:
            weights: Tile of shape ``(rows, cols)``; int8 or float.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.rows, self.cols):
            raise ValueError(
                f"weight tile must be {self.rows}x{self.cols}, "
                f"got {weights.shape}"
            )
        self.weights = weights.astype(np.int64)
        self.total_cycles += self.rows
        return self.rows

    def matmul(self, x: np.ndarray) -> tuple[np.ndarray, int]:
        """Stream a batch through the array, cycle by cycle.

        Args:
            x: Input batch of shape ``(batch, rows)``; int8 or int.

        Returns:
            ``(y, cycles)`` where ``y = x @ W`` (int64, exact) and
            ``cycles`` is the number of simulated cycles from first
            input injection to last output drain.

        Raises:
            RuntimeError: If no weights are loaded.
        """
        if self.weights is None:
            raise RuntimeError("load_weights() before matmul()")
        x = np.asarray(x)
        if x.ndim != 2 or x.shape[1] != self.rows:
            raise ValueError(
                f"input must be (batch, {self.rows}), got shape {x.shape}"
            )
        batch = x.shape[0]
        if batch == 0:
            return np.zeros((0, self.cols), dtype=np.int64), 0

        x = x.astype(np.int64)
        rows, cols = self.rows, self.cols
        weights = self.weights
        # Register state: a[r, c] is the input value sitting in PE (r, c)
        # this cycle; p[r, c] the partial sum it just produced.  The
        # per-cycle scratch (the MAC products and the next partial-sum
        # grid) is preallocated once and reused — the loop body performs
        # no per-cycle array allocation.
        a = np.zeros((rows, cols), dtype=np.int64)
        p = np.zeros((rows, cols), dtype=np.int64)
        p_next = np.empty((rows, cols), dtype=np.int64)
        mac = np.empty((rows, cols), dtype=np.int64)
        output = np.zeros((batch, cols), dtype=np.int64)
        # Precomputed injection/drain index arrays: at cycle t, row r
        # injects x[t - r, r] (the input skew) and column c drains
        # output (t - (rows - 1) - c, c).  One extra zero row appended
        # to x lets out-of-range injections (clipped to the pad row on
        # either side) gather a harmless 0 instead of branching per row.
        inject_rows = np.arange(rows)
        inject_idx = np.empty(rows, dtype=np.intp)
        drain_cols = np.arange(cols)
        x_padded = np.vstack([x, np.zeros((1, rows), dtype=np.int64)])
        produced = 0
        cycle = 0
        total_cycles = batch + rows + cols - 1
        while produced < batch * cols:
            # Shift inputs one PE to the right; inject the skewed column 0.
            a[:, 1:] = a[:, :-1]
            np.subtract(cycle, inject_rows, out=inject_idx)
            # Row `batch` of x_padded is all zeros, reachable as index
            # -1 too, so clipping maps every out-of-range cycle to it.
            np.clip(inject_idx, -1, batch, out=inject_idx)
            a[:, 0] = x_padded[inject_idx, inject_rows]
            # Partial sums from the row above, plus this PE's MAC.
            np.multiply(a, weights, out=mac)
            np.add(p[:-1, :], mac[1:, :], out=p_next[1:, :])
            p_next[0, :] = mac[0, :]
            p, p_next = p_next, p
            # Bottom-row sums that correspond to a real (batch, col) pair
            # drain this cycle: output (b, c) completes at cycle b + rows
            # - 1 + c.
            drain_batch = cycle - (rows - 1) - drain_cols
            drain_valid = (drain_batch >= 0) & (drain_batch < batch)
            output[drain_batch[drain_valid], drain_cols[drain_valid]] = \
                p[rows - 1, drain_valid]
            produced += int(np.count_nonzero(drain_valid))
            cycle += 1
            if cycle > total_cycles + 1:
                raise RuntimeError(
                    "systolic simulation failed to drain (internal error)"
                )
        self.total_cycles += cycle
        self.total_macs += batch * rows * cols
        return output, cycle

    @property
    def utilization(self) -> float:
        """MACs performed per PE-cycle over the array's lifetime, in [0, 1]."""
        if self.total_cycles == 0:
            return 0.0
        return self.total_macs / (self.total_cycles * self.rows * self.cols)


def systolic_cycles(input_dim: int, output_dim: int, batch: int,
                    rows: int = 64, cols: int = 64,
                    include_fill: bool = True) -> int:
    """Closed-form cycle count for a dense layer on a tiled systolic MXU.

    The layer's ``input_dim x output_dim`` weight matrix is cut into
    ``ceil(input_dim/rows) * ceil(output_dim/cols)`` tiles.  With double
    buffering, tile weight loads and pipeline fills overlap compute, so
    the steady-state cost is ``batch`` cycles per tile, plus one initial
    weight load (``rows``) and one pipeline fill/drain
    (``rows + cols - 2``).

    For a single tile this reduces to the exact stepped count
    ``batch + rows + cols - 2`` (+ ``rows`` load), which the
    :class:`SystolicArray` tests verify cycle-for-cycle.

    Args:
        input_dim: Layer input width (reduction dimension).
        output_dim: Layer output width.
        batch: Input rows streamed per invocation.
        rows: MXU rows.
        cols: MXU columns.
        include_fill: Charge the initial load + fill; disable to get the
            marginal steady-state cost.

    Returns:
        Cycle count (int).
    """
    if min(input_dim, output_dim, batch, rows, cols) < 1:
        raise ValueError("all dimensions must be >= 1")
    row_tiles = -(-input_dim // rows)
    col_tiles = -(-output_dim // cols)
    tiles = row_tiles * col_tiles
    # Partial sums across row tiles are accumulated in the output
    # registers, costing one pass of `batch` cycles per tile.
    cycles = tiles * batch
    if include_fill:
        cycles += rows + (rows + cols - 2)
    return cycles
