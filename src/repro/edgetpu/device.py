"""The Edge TPU device simulator.

Functionally, the device executes the *same* int8 kernels as the
reference interpreter (so results are bit-identical); temporally, every
interaction advances a virtual clock according to the compiled latency
plan: model loads pay USB transfer + setup, invocations pay dispatch
overhead, activation transfers and MXU/vector compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.backend import AcceleratorArch
from repro.edgetpu.compiler import CompiledModel

__all__ = ["EdgeTpuDevice", "InvokeResult"]


@dataclass(frozen=True)
class InvokeResult:
    """Output and timing of one device invocation.

    Attributes:
        outputs: Raw output of the last *TPU* op (int8 activations; any
            CPU-fallback ops are the delegate's job).
        elapsed_s: Modeled seconds for this invocation.
        breakdown: Per-term seconds: ``overhead``, ``input_transfer``,
            ``weight_streaming``, ``compute``, ``output_transfer``.
        bytes_in: Activation bytes shipped to the device this invoke.
        bytes_out: Activation bytes returned by the device this invoke.
    """

    outputs: np.ndarray
    elapsed_s: float
    breakdown: dict
    bytes_in: int = 0
    bytes_out: int = 0


@dataclass
class DeviceStats:
    """Cumulative device counters."""

    invocations: int = 0
    models_loaded: int = 0
    busy_seconds: float = 0.0
    bytes_in: int = 0
    bytes_out: int = 0
    samples: int = 0
    breakdown: dict = field(default_factory=dict)


class EdgeTpuDevice:
    """A simulated attached accelerator device (any registered backend).

    Example::

        device = EdgeTpuDevice()
        load_time = device.load_model(compiled)
        result = device.invoke(quantized_batch)

    Attributes:
        arch: The device architecture.
        stats: Cumulative counters (invocations, busy time, bytes moved).
    """

    def __init__(self, arch: AcceleratorArch | None = None):
        self.arch = arch if arch is not None else EdgeTpuArch()
        self.compiled: CompiledModel | None = None
        self.stats = DeviceStats()
        self._stages: list = []
        # Co-resident models (serving tiers): id(compiled) -> (model,
        # fused stages).  Residents survive load_model — a hot swap of
        # the primary must not evict the degradation ladder.
        self._resident: dict[int, tuple[CompiledModel, list]] = {}
        # invoke_cost results per (model identity, batch): the modeled
        # cost is a pure function of both, so the cluster fast path's
        # per-batch charge reduces to stats accounting plus a dict hit.
        # The cached tuple pins the compiled model, keeping id() stable.
        self._cost_cache: dict[
            tuple[int, int],
            tuple[CompiledModel, "InvokeResult", tuple],
        ] = {}

    def load_model(self, compiled: CompiledModel) -> float:
        """Load a compiled model; returns the modeled load time in seconds.

        Co-resident models (:meth:`load_resident`) stay loaded.

        Raises:
            ValueError: If the model was compiled for a different
                architecture configuration.
        """
        if compiled.arch != self.arch:
            raise ValueError(
                "model was compiled for a different EdgeTpuArch; recompile"
            )
        self.compiled = compiled
        # The op chain compiles once into fused stages (shared across
        # every device running this model), and the latency plan is
        # re-derived per batch size, not per invocation.
        self._stages = compiled.stages()
        seconds = compiled.load_seconds()
        self.stats.models_loaded += 1
        self.stats.busy_seconds += seconds
        self.stats.bytes_in += compiled.model.size_bytes()
        return seconds

    def load_resident(self, compiled: CompiledModel) -> float:
        """Co-load a second model next to the primary; returns load time.

        Most Edge TPUs serve one model at a time, but Coral's runtime
        supports model *co-tenancy* with parameter-cache partitioning —
        this models that: the resident model pays its own load transfer
        once and can then be invoked by passing it to :meth:`invoke`,
        without evicting the primary.  Loading the same object again is
        free (it is already on the device).
        """
        if compiled.arch != self.arch:
            raise ValueError(
                "model was compiled for a different EdgeTpuArch; recompile"
            )
        if id(compiled) in self._resident:
            return 0.0
        self._resident[id(compiled)] = (compiled, compiled.stages())
        seconds = compiled.load_seconds()
        self.stats.models_loaded += 1
        self.stats.busy_seconds += seconds
        self.stats.bytes_in += compiled.model.size_bytes()
        return seconds

    def invoke(self, x: np.ndarray,
               compiled: CompiledModel | None = None,
               executor=None) -> InvokeResult:
        """Run one batch through the TPU subgraph.

        Args:
            x: int8 input of shape ``(batch, input_dim)``.
            compiled: Which loaded model to run — the primary when
                omitted, else a model made co-resident with
                :meth:`load_resident`.
            executor: Optional callable ``executor(x) -> int8 outputs``
                replacing the interpreted stage loop — the hook a
                precompiled :class:`~repro.runtime.plan.ModelPlan` uses
                to run its arena-backed kernels under the *same* device
                timing model.  The executor must be bit-identical to
                the stage loop; latency charging is unchanged.

        Returns:
            The :class:`InvokeResult` with outputs of the last TPU op.

        Raises:
            RuntimeError: If no model is loaded (or the requested model
                is not resident on this device).
        """
        if compiled is None or compiled is self.compiled:
            if self.compiled is None:
                raise RuntimeError(
                    "no model loaded; call load_model() first"
                )
            compiled = self.compiled
            stages = self._stages
        else:
            entry = self._resident.get(id(compiled))
            if entry is None:
                raise RuntimeError(
                    "model is not resident on this device; call "
                    "load_resident() first"
                )
            stages = entry[1]
        x = np.asarray(x)
        if x.dtype != np.int8:
            raise TypeError(f"device input must be int8, got {x.dtype}")
        if x.ndim != 2:
            raise ValueError(f"device input must be 2-D, got shape {x.shape}")
        expected = compiled.model.input_spec.size
        if x.shape[1] != expected:
            raise ValueError(
                f"expected input width {expected}, got {x.shape[1]}"
            )
        batch = x.shape[0]
        if batch == 0:
            raise ValueError("cannot invoke with an empty batch")

        if executor is not None:
            out = executor(x)
        else:
            out = x
            for stage in stages:
                out = stage(out)

        # Callers receive a private copy (InvokeResult exposes the dict);
        # the latency plan itself is memoized on the compiled model and
        # shared by every device running it.
        breakdown = dict(compiled.invoke_breakdown(batch))
        elapsed = sum(breakdown.values())

        bytes_in = batch * compiled.tpu_input_bytes
        bytes_out = batch * compiled.tpu_output_bytes
        self.stats.invocations += 1
        self.stats.samples += batch
        self.stats.busy_seconds += elapsed
        self.stats.bytes_in += bytes_in
        self.stats.bytes_out += bytes_out
        for key, value in breakdown.items():
            self.stats.breakdown[key] = self.stats.breakdown.get(key, 0.0) + value
        return InvokeResult(outputs=out, elapsed_s=elapsed, breakdown=breakdown,
                            bytes_in=bytes_in, bytes_out=bytes_out)

    def invoke_cost(self, batch: int,
                    compiled: CompiledModel | None = None) -> InvokeResult:
        """Charge one invoke without computing outputs.

        The timing-only twin of :meth:`invoke` for callers that defer
        the arithmetic (the cluster fast path batches all predictions
        after the simulation): the modeled latency depends only on the
        batch size — ``invoke_breakdown`` is memoized per compiled
        model — so the elapsed time, byte counts and device stats here
        are bit-identical to running :meth:`invoke` on a real ``(batch,
        input_dim)`` int8 array.  ``outputs`` is ``None``.
        """
        if compiled is None or compiled is self.compiled:
            if self.compiled is None:
                raise RuntimeError(
                    "no model loaded; call load_model() first"
                )
            compiled = self.compiled
        elif id(compiled) not in self._resident:
            raise RuntimeError(
                "model is not resident on this device; call "
                "load_resident() first"
            )
        if batch < 1:
            raise ValueError("cannot invoke with an empty batch")

        cached = self._cost_cache.get((id(compiled), batch))
        if cached is None:
            breakdown = dict(compiled.invoke_breakdown(batch))
            elapsed = sum(breakdown.values())
            result = InvokeResult(
                outputs=None, elapsed_s=elapsed, breakdown=breakdown,
                bytes_in=batch * compiled.tpu_input_bytes,
                bytes_out=batch * compiled.tpu_output_bytes,
            )
            cached = (compiled, result, tuple(breakdown.items()))
            self._cost_cache[(id(compiled), batch)] = cached
        _, result, items = cached
        stats = self.stats
        stats.invocations += 1
        stats.samples += batch
        stats.busy_seconds += result.elapsed_s
        stats.bytes_in += result.bytes_in
        stats.bytes_out += result.bytes_out
        breakdown = stats.breakdown
        for key, value in items:
            breakdown[key] = breakdown.get(key, 0.0) + value
        # The same (shared, treat-as-read-only) InvokeResult is handed
        # back on every repeat charge.
        return result

    def energy_joules(self) -> float:
        """Energy consumed while busy (active power x busy time)."""
        return self.arch.active_power_w * self.stats.busy_seconds
