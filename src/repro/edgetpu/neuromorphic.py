"""An event-driven neuromorphic-style accelerator backend.

The XL-HD line of work maps HDC onto in-memory / spiking substrates
where cost scales with *events* (non-zero activations crossing the
synapse array), not with dense MAC counts, and spikehard shows the same
model restructured across smaller neuromorphic cores.  This backend
models that regime through the standard
:class:`~repro.edgetpu.backend.AcceleratorArch` protocol:

- a fully-connected layer costs ``input_dim * output_dim *
  event_rate`` synaptic events, processed ``cores *
  events_per_core_per_cycle`` per clock — no pipeline fill, because an
  event-driven fabric has no systolic wavefront to prime;
- activations are folded into the neuron update (one neuron per core
  pass), so tanh is nearly free;
- the attach link is a slow embedded serial bus, and power is an order
  of magnitude below the Edge TPU — the trade the placement optimizer
  exploits for narrow, latency-tolerant tenants.

**Functional results are unchanged**: like every backend, the device
executes the reference int8 kernels bit-identically; only the modeled
time/energy follows the event-driven cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edgetpu.backend import (
    AcceleratorArch,
    Instruction,
    OpPlan,
    register_backend,
)

__all__ = ["NeuromorphicArch"]


@dataclass(frozen=True)
class NeuromorphicArch(AcceleratorArch):
    """Parameters of the event-driven backend.

    Attributes:
        cores: Parallel neuron cores.
        events_per_core_per_cycle: Synaptic events one core retires per
            clock.
        event_rate: Mean fraction of synapses that see an event per
            sample (activation sparsity of the encoded HDC input).
        clock_hz: Core clock (event fabrics run slow and wide).
        parameter_buffer_bytes: On-chip synapse memory.
        link_bytes_per_s: Embedded serial attach link (~30 MB/s).
        invoke_overhead_s: Host dispatch cost per invocation — far below
            USB dispatch; there is no bulk-transfer round trip to set up.
        model_setup_s: One-time synapse-array programming cost.
        idle_power_w: Near-zero idle draw (event-driven fabrics gate
            their clocks).
        active_power_w: Power under load.
    """

    backend = "neuromorphic"

    cores: int = 128
    events_per_core_per_cycle: int = 4
    event_rate: float = 0.10
    clock_hz: float = 100e6
    parameter_buffer_bytes: int = 2 * 1024 * 1024
    link_bytes_per_s: float = 30e6
    invoke_overhead_s: float = 20e-6
    model_setup_s: float = 50e-3
    idle_power_w: float = 0.05
    active_power_w: float = 0.3

    def __post_init__(self) -> None:
        if self.cores < 1 or self.events_per_core_per_cycle < 1:
            raise ValueError("cores and events/core/cycle must be >= 1")
        if not 0.0 < self.event_rate <= 1.0:
            raise ValueError(
                f"event_rate must be in (0, 1], got {self.event_rate}"
            )
        if self.clock_hz <= 0 or self.link_bytes_per_s <= 0:
            raise ValueError("clock and link bandwidth must be > 0")
        if self.parameter_buffer_bytes < 0:
            raise ValueError("parameter buffer size must be >= 0")

    @property
    def events_per_cycle(self) -> float:
        """Aggregate synaptic-event throughput per clock."""
        return float(self.cores * self.events_per_core_per_cycle)

    def plan_op(self, op, input_dim: int) -> OpPlan:
        """Event-driven cycle plan: events / fabric throughput, no fill."""
        from repro.tflite.ops import FullyConnectedOp

        output_dim = op.output_dim(input_dim)
        if isinstance(op, FullyConnectedOp):
            events = op.input_dim * output_dim * self.event_rate
            per_row = -(-events // self.events_per_cycle)
            return OpPlan(
                name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
                input_dim=input_dim, output_dim=output_dim,
                fixed_cycles=0, cycles_per_row=float(per_row),
            )
        # Activation folds into the neuron update: one pass over the
        # neurons, `cores` of them per cycle.
        per_row = -(-output_dim // self.cores)
        return OpPlan(
            name=op.name, kind=op.kind, weight_bytes=op.weight_bytes,
            input_dim=input_dim, output_dim=output_dim,
            fixed_cycles=0, cycles_per_row=float(per_row),
        )

    def lower_op(self, op, width: int, batch: int) -> list[Instruction]:
        """Event-fabric lowering: route events, then update neurons."""
        from repro.tflite.ops import FullyConnectedOp

        plan = self.plan_op(op, width)
        if isinstance(op, FullyConnectedOp):
            return [Instruction(
                "ROUTE_EVENTS", f"{op.name} (rate={self.event_rate:g})",
                cycles=plan.cycles(batch),
            )]
        return [Instruction(
            "NEURON_UPDATE", f"{op.name} ({op.kind.lower()})",
            cycles=plan.cycles(batch),
        )]

    def describe(self) -> dict:
        payload = super().describe()
        payload["cores"] = self.cores
        payload["event_rate"] = self.event_rate
        payload["events_per_cycle"] = self.events_per_cycle
        return payload


register_backend("neuromorphic", NeuromorphicArch)
