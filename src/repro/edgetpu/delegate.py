"""Delegated execution: TPU subgraph + CPU-fallback tail.

The TFLite delegate mechanism: a compiled model's supported prefix runs
on the Edge TPU; remaining ops (for HDC models, the final ARGMAX) run on
the host CPU.  The executor keeps the two time accounts separate so the
pipelines can attribute costs per processing element.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.compiler import CompiledModel, compile_model
from repro.edgetpu.device import EdgeTpuDevice
from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import Op

__all__ = ["DelegatedExecutor", "partition"]

# Default host cost for fallback ops: a conservative elementwise rate for
# a mobile CPU (elements/second).  The runtime pipelines override this
# with their calibrated platform models.
_DEFAULT_CPU_ELEMENTS_PER_S = 2e9


def partition(model: FlatModel, arch: EdgeTpuArch | None = None
              ) -> tuple[list[Op], list[Op]]:
    """Split a model's ops into (TPU prefix, CPU tail).

    Convenience wrapper over :func:`compile_model` for callers that only
    want the partition.
    """
    compiled = compile_model(model, arch)
    return compiled.tpu_ops, compiled.cpu_ops


class DelegatedExecutor:
    """Runs a compiled model across the TPU device and the host CPU.

    Args:
        compiled: The compiled model (or build one with
            :func:`compile_model`).
        device: The device simulator; a fresh one is created when
            omitted.  The model is loaded on construction and the load
            time recorded in :attr:`model_load_seconds`.
        cpu_op_seconds: Callable ``(op, batch, input_dim) -> seconds``
            charging host time for fallback ops; a simple elementwise
            default is used when omitted.

    Attributes:
        tpu_seconds: Accumulated device time (excluding model load).
        cpu_seconds: Accumulated host time for fallback ops.
        model_load_seconds: One-time model push cost.
    """

    def __init__(self, compiled: CompiledModel,
                 device: EdgeTpuDevice | None = None,
                 cpu_op_seconds: Callable[[Op, int, int], float] | None = None):
        self.compiled = compiled
        self.device = device if device is not None else EdgeTpuDevice(compiled.arch)
        self.model_load_seconds = self.device.load_model(compiled)
        self._cpu_op_seconds = cpu_op_seconds
        self.tpu_seconds = 0.0
        self.cpu_seconds = 0.0

    def _charge_cpu(self, op: Op, batch: int, input_dim: int) -> float:
        if self._cpu_op_seconds is not None:
            return self._cpu_op_seconds(op, batch, input_dim)
        return batch * input_dim / _DEFAULT_CPU_ELEMENTS_PER_S

    def run_quantized(self, x: np.ndarray) -> np.ndarray:
        """Run an int8 batch through TPU prefix then CPU tail."""
        result = self.device.invoke(x)
        self.tpu_seconds += result.elapsed_s
        out = result.outputs
        width = self.compiled.plans[-1].output_dim if self.compiled.plans \
            else self.compiled.model.input_spec.size
        for op in self.compiled.cpu_ops:
            self.cpu_seconds += self._charge_cpu(op, len(out), width)
            out = op.run(out)
            width = op.output_dim(width)
        return out

    def run(self, x: np.ndarray) -> np.ndarray:
        """Float-in convenience: quantize, execute, decode.

        Returns int64 class indices for argmax models, dequantized float
        scores otherwise.
        """
        x = np.asarray(x, dtype=np.float32)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        model = self.compiled.model
        quantized = model.input_spec.qparams.quantize(x)
        out = self.run_quantized(quantized)
        if model.output_is_index:
            out = out[:, 0]
        else:
            out = model.output_spec.qparams.dequantize(out)
        return out[0] if single else out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for either model flavour."""
        out = self.run(x)
        if self.compiled.model.output_is_index:
            return np.asarray(out, dtype=np.int64)
        return np.argmax(out, axis=-1).astype(np.int64)

    @property
    def total_seconds(self) -> float:
        """TPU + CPU execution time (model load excluded)."""
        return self.tpu_seconds + self.cpu_seconds
