"""The accelerator compiler: legality checks, op mapping, latency plans.

Mirrors what ``edgetpu_compiler`` does to a ``.tflite`` file,
generalized over the :class:`~repro.edgetpu.backend.AcceleratorArch`
backend protocol:

- verifies ops are on the backend's supported-op list
  (:meth:`AcceleratorArch.supports` — int8 legality for every current
  backend);
- maps the maximal *prefix* of supported ops to the device (the real
  compiler creates a single device subgraph; anything after the first
  unsupported op stays on the CPU — for the paper's models that is only
  the final ARGMAX);
- checks whether the model's parameters fit the backend's on-device
  buffer (models that do not fit stream the excess over the attach link
  per invocation);
- produces per-op cycle plans from the backend's cost model
  (:meth:`AcceleratorArch.plan_op` — the systolic-array model for the
  Edge TPU backends, event routing for the neuromorphic backend).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.edgetpu.arch import EdgeTpuArch
from repro.edgetpu.backend import AcceleratorArch, OpPlan, default_supports
from repro.runtime.cache import LruCache
from repro.tflite.flatmodel import FlatModel
from repro.tflite.ops import Op, fused_stages

__all__ = [
    "CompileError",
    "CompiledModel",
    "OpPlan",
    "compile_model",
    "is_op_supported",
]


class CompileError(Exception):
    """Raised when a model cannot be mapped to the device at all."""


# Per-(compiled, batch) memo caches are bounded: a long-running server
# fed adversarial batch sizes must not grow them without limit.  The
# entries are pure recomputable derivations, so eviction only costs a
# recomputation, never correctness.  The bound comfortably covers the
# power-of-two bucket ladder the serving plan restricts batches to.
_MEMO_CACHE_SIZE = 64


def is_op_supported(op: Op) -> bool:
    """Whether the Edge TPU executes this op.

    Fully-connected and tanh are on the Edge TPU supported-ops list;
    ARGMAX is not and falls back to the host CPU (matching the real
    compiler's behaviour for the paper's classification models).  This
    is the shared int8 legality check every current backend uses;
    backends with a different surface override
    :meth:`AcceleratorArch.supports`.
    """
    return default_supports(op)


@dataclass
class CompiledModel:
    """A model after accelerator compilation.

    Attributes:
        model: The source flat model (kernels are shared — execution on
            the device is bit-identical to the reference interpreter).
        arch: Target architecture (any registered backend).
        tpu_ops: Ops mapped to the device (a prefix of ``model.ops``).
        cpu_ops: Trailing ops left on the host CPU.
        plans: One :class:`OpPlan` per device op.
    """

    model: FlatModel
    arch: AcceleratorArch
    tpu_ops: list[Op]
    cpu_ops: list[Op]
    plans: list[OpPlan] = field(default_factory=list)

    @property
    def fully_mapped(self) -> bool:
        """True when every op runs on the TPU."""
        return not self.cpu_ops

    @property
    def weight_bytes(self) -> int:
        """Parameter bytes the TPU subgraph needs resident."""
        return sum(plan.weight_bytes for plan in self.plans)

    @property
    def fits_on_chip(self) -> bool:
        """Whether all parameters fit the on-chip buffer."""
        return self.weight_bytes <= self.arch.parameter_buffer_bytes

    @property
    def streamed_bytes_per_invoke(self) -> int:
        """Parameter bytes re-streamed over USB on every invocation."""
        return max(0, self.weight_bytes - self.arch.parameter_buffer_bytes)

    @property
    def tpu_input_bytes(self) -> int:
        """int8 activation bytes sent to the device per sample."""
        return self.plans[0].input_dim if self.plans else 0

    @property
    def tpu_output_bytes(self) -> int:
        """int8 activation bytes returned from the device per sample."""
        return self.plans[-1].output_dim if self.plans else 0

    def compute_cycles(self, batch: int) -> float:
        """MXU + vector-unit cycles for one invocation of ``batch`` rows."""
        return sum(plan.cycles(batch) for plan in self.plans)

    def invoke_breakdown(self, batch: int) -> dict:
        """Per-term modeled seconds of one ``invoke()`` with ``batch`` rows.

        Keys (in accumulation order): ``overhead``, ``input_transfer``,
        ``weight_streaming``, ``compute``, ``output_transfer``.  This is
        the *shared* latency-plan cache — every device in a pool invokes
        through it, so loading the same compiled model onto eight
        devices derives each ``(model, batch)`` plan once, not eight
        times.  Memoized in a small LRU (the plan is immutable; evicted
        entries recompute bit-identically).  Treat the returned dict as
        read-only; callers that expose it must copy.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        cache: LruCache = self.__dict__.get("_breakdown_cache")
        if cache is None:
            cache = LruCache(_MEMO_CACHE_SIZE)
            self.__dict__["_breakdown_cache"] = cache
        breakdown = cache.get(batch)
        if breakdown is None:
            arch = self.arch
            breakdown = {
                "overhead": arch.invoke_overhead_s,
                "input_transfer": arch.transfer_time(
                    batch * self.tpu_input_bytes
                ),
                "weight_streaming": arch.transfer_time(
                    self.streamed_bytes_per_invoke
                ),
                "compute": arch.cycles_to_seconds(
                    self.compute_cycles(batch)
                ),
                "output_transfer": arch.transfer_time(
                    batch * self.tpu_output_bytes
                ),
            }
            cache.put(batch, breakdown)
        return breakdown

    def invoke_seconds(self, batch: int) -> float:
        """Modeled wall time of one ``invoke()`` with ``batch`` rows.

        The sum of :meth:`invoke_breakdown`'s terms (fixed dispatch
        overhead, input transfer, parameter streaming for oversized
        models, compute, output transfer).  Memoized per batch size in
        a bounded LRU — the plan is immutable — so per-batch callers
        (the device simulator, the serving event loop's
        ``service_estimate``) stop re-deriving the latency plan on
        every call.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        cache: LruCache = self.__dict__.get("_invoke_seconds_cache")
        if cache is None:
            cache = LruCache(_MEMO_CACHE_SIZE)
            self.__dict__["_invoke_seconds_cache"] = cache
        seconds = cache.get(batch)
        if seconds is None:
            seconds = sum(self.invoke_breakdown(batch).values())
            cache.put(batch, seconds)
        return seconds

    def stages(self) -> list:
        """Fused execution stages for the *device-mapped* ops.

        One list per compiled model, built on first use and reused by
        every executor that runs this model's TPU subgraph (each pool
        device, the serving plan) — ``fused_stages`` is documented as
        "build once and reuse", and this is the once.  The cache is
        keyed by the op-chain identity, so the unlikely event of the
        ``tpu_ops`` list being replaced rebuilds rather than serving a
        stale chain.
        """
        key = tuple(id(op) for op in self.tpu_ops)
        cached = self.__dict__.get("_stages")
        if cached is None or cached[0] != key:
            cached = (key, fused_stages(self.tpu_ops))
            self.__dict__["_stages"] = cached
        return cached[1]

    def host_stages(self) -> list:
        """Fused execution stages for the *whole* model on the host CPU.

        The serving CPU-fallback path runs ``tpu_ops + cpu_ops`` through
        the same fused kernels the device simulator uses, so degraded
        predictions stay bit-identical.  Built lazily once per compiled
        model (the op chain is immutable).
        """
        stages = self.__dict__.get("_host_stages")
        if stages is None:
            stages = fused_stages(list(self.tpu_ops) + list(self.cpu_ops))
            self.__dict__["_host_stages"] = stages
        return stages

    def load_seconds(self) -> float:
        """Modeled one-time cost of pushing the model to the device."""
        return (
            self.arch.model_setup_s
            + self.arch.transfer_time(self.model.size_bytes())
        )

    def summary(self) -> str:
        """Compiler report in the style of ``edgetpu_compiler`` logs."""
        lines = [
            f"Edge TPU compilation of {self.model.name!r}:",
            f"  ops mapped to TPU : {len(self.tpu_ops)}",
            f"  ops on CPU        : {len(self.cpu_ops)}"
            + (f" ({', '.join(op.kind for op in self.cpu_ops)})"
               if self.cpu_ops else ""),
            f"  parameter bytes   : {self.weight_bytes}"
            + ("" if self.fits_on_chip else
               f" (exceeds {self.arch.parameter_buffer_bytes} on-chip; "
               f"{self.streamed_bytes_per_invoke} streamed per invoke)"),
        ]
        for plan in self.plans:
            lines.append(
                f"    {plan.name:<16} {plan.kind:<16} "
                f"{plan.input_dim:>6} -> {plan.output_dim:<6} "
                f"fixed={plan.fixed_cycles} per-row={plan.cycles_per_row:.1f}"
            )
        return "\n".join(lines)


def compile_model(model: FlatModel, arch: AcceleratorArch | None = None
                  ) -> CompiledModel:
    """Compile a flat model for an accelerator backend.

    Args:
        model: The quantized model.
        arch: Target architecture (defaults to the standard USB Edge TPU).

    Returns:
        The compiled model with its device/CPU partition and latency
        plans (from ``arch.plan_op``).

    Raises:
        CompileError: If not even the first op can map to the device
            (the accelerator would contribute nothing).
    """
    if arch is None:
        arch = EdgeTpuArch()
    tpu_ops: list[Op] = []
    cpu_ops: list[Op] = []
    plans: list[OpPlan] = []
    width = model.input_spec.size
    mapping_to_tpu = True
    for op in model.ops:
        if mapping_to_tpu and arch.supports(op):
            plans.append(arch.plan_op(op, width))
            tpu_ops.append(op)
        else:
            mapping_to_tpu = False
            cpu_ops.append(op)
        width = op.output_dim(width)
    if not tpu_ops:
        first = model.ops[0]
        raise CompileError(
            f"no ops could be mapped to the Edge TPU (first op "
            f"{first.name!r} of kind {first.kind} is unsupported)"
        )
    return CompiledModel(model=model, arch=arch, tpu_ops=tpu_ops,
                         cpu_ops=cpu_ops, plans=plans)
