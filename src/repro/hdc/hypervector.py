"""Hypervector primitives: generation, bundling, and similarity metrics.

The paper's HDC variant works with *real-valued* hypervectors: base
hypervectors are drawn i.i.d. from N(0, 1) so that any two are nearly
orthogonal in expectation (Sec. III-A), and class hypervectors are real
accumulations of encoded samples.  Bipolar (+1/-1) helpers are included
for the associative-memory ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bipolarize",
    "bundle",
    "cosine_similarity",
    "dot_similarity",
    "generate_base_hypervectors",
    "hamming_similarity",
]


def generate_base_hypervectors(num_features: int, dimension: int,
                               rng: np.random.Generator | int | None = None,
                               dtype=np.float32) -> np.ndarray:
    """Draw the ``num_features x dimension`` base-hypervector matrix.

    Components are i.i.d. standard normal (``mu=0, sigma=1``), the
    distribution the paper uses so that distinct base hypervectors have
    near-zero dot products ("near orthogonal").

    Args:
        num_features: Number of input features ``n`` (one base HV each).
        dimension: Hypervector width ``d``.
        rng: A :class:`numpy.random.Generator`, an integer seed, or
            ``None`` for nondeterministic generation.
        dtype: Output dtype (``float32`` keeps the hyper-wide weight
            matrices at half the memory of float64 with no accuracy cost).

    Returns:
        Array of shape ``(num_features, dimension)``.
    """
    if num_features < 1:
        raise ValueError(f"num_features must be >= 1, got {num_features}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return rng.standard_normal((num_features, dimension)).astype(dtype)


def bundle(hypervectors: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Bundle (elementwise-add) a stack of hypervectors into one.

    Bundling is HDC's superposition operator: the result stays similar to
    every bundled input.  With ``weights`` this computes the weighted sum
    ``sum_i w_i * hv_i``, which is exactly the encoding aggregation
    ``f_1*B_1 + ... + f_n*B_n`` of the paper.

    Args:
        hypervectors: Shape ``(count, dimension)``.
        weights: Optional shape ``(count,)`` scaling factors.

    Returns:
        Shape ``(dimension,)`` bundled hypervector.
    """
    hypervectors = np.asarray(hypervectors)
    if hypervectors.ndim != 2:
        raise ValueError(
            f"expected a (count, dimension) stack, got shape {hypervectors.shape}"
        )
    if weights is None:
        return hypervectors.sum(axis=0)
    weights = np.asarray(weights)
    if weights.shape != (len(hypervectors),):
        raise ValueError(
            f"weights shape {weights.shape} does not match "
            f"{len(hypervectors)} hypervectors"
        )
    return weights @ hypervectors


def dot_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Dot-product similarity between query and reference hypervectors.

    This is the accelerator-friendly approximation the paper substitutes
    for cosine similarity: ``delta(E, C) = E . C`` (Sec. III-A), which
    maps to a single fully-connected layer on the Edge TPU.

    Args:
        queries: Shape ``(num_queries, dimension)`` or ``(dimension,)``.
        references: Shape ``(num_refs, dimension)``.

    Returns:
        Shape ``(num_queries, num_refs)`` (or ``(num_refs,)`` for a single
        query).
    """
    queries = np.asarray(queries)
    references = np.asarray(references)
    return queries @ references.T


def cosine_similarity(queries: np.ndarray, references: np.ndarray,
                      eps: float = 1e-12) -> np.ndarray:
    """Cosine similarity between query and reference hypervectors.

    The exact associative-search metric; zero vectors are treated as
    having zero similarity to everything rather than dividing by zero.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    references = np.atleast_2d(np.asarray(references, dtype=np.float64))
    q_norm = np.linalg.norm(queries, axis=1, keepdims=True)
    r_norm = np.linalg.norm(references, axis=1, keepdims=True)
    sims = (queries @ references.T) / np.maximum(q_norm @ r_norm.T, eps)
    if sims.shape[0] == 1 and np.asarray(queries).ndim == 1:
        return sims[0]
    return sims


def bipolarize(hypervectors: np.ndarray) -> np.ndarray:
    """Quantize hypervectors to bipolar {-1, +1} (sign, with +1 at zero).

    Bipolar models shrink associative memories 32x and enable Hamming
    search; used by the binary-model ablation.
    """
    return np.where(np.asarray(hypervectors) >= 0, 1, -1).astype(np.int8)


def hamming_similarity(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Normalized Hamming similarity between bipolar hypervectors.

    Returns the fraction of matching components in ``[0, 1]``; equals
    ``(1 + cosine) / 2`` for exactly bipolar inputs.

    Args:
        queries: Bipolar array of shape ``(num_queries, dimension)``.
        references: Bipolar array of shape ``(num_refs, dimension)``.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    references = np.atleast_2d(np.asarray(references, dtype=np.float32))
    if queries.shape[-1] != references.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {queries.shape[-1]} vs {references.shape[-1]}"
        )
    dimension = queries.shape[-1]
    dots = queries @ references.T
    return (1.0 + dots / dimension) / 2.0
