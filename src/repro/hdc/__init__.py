"""Hyperdimensional-computing core: the paper's learning algorithm.

This package implements the three HDC primitives the paper maps onto the
Edge TPU (Sec. III-A) plus the bagging training optimization (Sec. III-B):

- **Encoding** (:mod:`repro.hdc.encoder`): nonlinear random projection of
  an ``n``-feature sample into a ``d``-dimensional hypervector,
  ``E = tanh(F @ B)`` with base hypervectors ``B ~ N(0, 1)``.
- **Class-hypervector training** (:mod:`repro.hdc.model`): mistake-driven
  bundling/detaching updates ``C_a += lr * E``, ``C_b -= lr * E``.
- **Classification**: dot-product (or cosine) associative search over the
  class hypervectors.
- **Bagging** (:mod:`repro.hdc.bagging`): ``M`` narrow sub-models trained
  on bootstrap subsets and fused into one full-width inference model.
"""

from repro.hdc.hypervector import (
    bipolarize,
    bundle,
    cosine_similarity,
    dot_similarity,
    generate_base_hypervectors,
    hamming_similarity,
)
from repro.hdc.encoder import Encoder, IdLevelEncoder, LinearEncoder, NonlinearEncoder
from repro.hdc.model import HDCClassifier, TrainingHistory
from repro.hdc.bagging import BaggingConfig, BaggingHDCTrainer, FusedHDCModel
from repro.hdc.adaptive import AdaptiveHDCClassifier
from repro.hdc.associative import BipolarAssociativeMemory
from repro.hdc.regression import HDCRegressor, RegressionHistory
from repro.hdc.sequence import SequenceEncoder, bind, permute
from repro.hdc.metrics import (
    accuracy,
    confusion_matrix,
    per_class_accuracy,
    weight_update_cost_ratio,
)

__all__ = [
    "AdaptiveHDCClassifier",
    "BaggingConfig",
    "BaggingHDCTrainer",
    "BipolarAssociativeMemory",
    "Encoder",
    "FusedHDCModel",
    "HDCClassifier",
    "HDCRegressor",
    "IdLevelEncoder",
    "RegressionHistory",
    "LinearEncoder",
    "NonlinearEncoder",
    "SequenceEncoder",
    "TrainingHistory",
    "accuracy",
    "bind",
    "bipolarize",
    "bundle",
    "permute",
    "confusion_matrix",
    "cosine_similarity",
    "dot_similarity",
    "generate_base_hypervectors",
    "hamming_similarity",
    "per_class_accuracy",
    "weight_update_cost_ratio",
]
