"""Bipolar associative memory (extension beyond the paper).

The paper keeps class hypervectors in float and searches with dot
products because that is what the Edge TPU accelerates.  Much HDC
hardware instead *binarizes* the trained model to a bipolar {-1, +1}
associative memory searched by Hamming distance — 32x smaller and
XNOR-popcount friendly.  This module provides that deployment format so
the trade-off (memory vs. accuracy) can be measured against the paper's
float/int8 path (see ``benchmarks/test_ablation_binary.py``).
"""

from __future__ import annotations

import numpy as np

from repro.hdc.encoder import Encoder
from repro.hdc.hypervector import bipolarize, hamming_similarity
from repro.hdc.model import HDCClassifier

__all__ = ["BipolarAssociativeMemory"]


class BipolarAssociativeMemory:
    """A binarized HDC model: bipolar class HVs + Hamming search.

    Build one from a trained classifier with :meth:`from_classifier`.
    Queries are encoded with the *original* encoder, then binarized, and
    classified by normalized Hamming similarity.

    Args:
        class_hypervectors: Bipolar int8 array ``(num_classes, dimension)``.
        encoder: The encoder used for queries.
    """

    def __init__(self, class_hypervectors: np.ndarray, encoder: Encoder):
        class_hypervectors = np.asarray(class_hypervectors)
        if class_hypervectors.ndim != 2:
            raise ValueError(
                f"class hypervectors must be 2-D, got shape "
                f"{class_hypervectors.shape}"
            )
        if not np.isin(class_hypervectors, (-1, 1)).all():
            raise ValueError("class hypervectors must be bipolar (-1/+1)")
        if encoder.dimension != class_hypervectors.shape[1]:
            raise ValueError(
                f"encoder dimension {encoder.dimension} does not match "
                f"memory width {class_hypervectors.shape[1]}"
            )
        self.class_hypervectors = class_hypervectors.astype(np.int8)
        self.encoder = encoder

    @classmethod
    def from_classifier(cls, model: HDCClassifier) -> "BipolarAssociativeMemory":
        """Binarize a trained :class:`HDCClassifier`.

        Raises:
            ValueError: If the classifier is untrained.
        """
        if model.class_hypervectors is None:
            raise ValueError("classifier has no trained class hypervectors")
        return cls(bipolarize(model.class_hypervectors), model.encoder)

    @property
    def num_classes(self) -> int:
        """Number of stored class hypervectors."""
        return self.class_hypervectors.shape[0]

    @property
    def dimension(self) -> int:
        """Hypervector width ``d``."""
        return self.class_hypervectors.shape[1]

    def memory_bytes(self) -> int:
        """Associative-memory size at 1 bit per component."""
        return (self.num_classes * self.dimension + 7) // 8

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Normalized Hamming similarity of each sample to each class."""
        encoded = bipolarize(self.encoder.encode(x))
        return hamming_similarity(encoded, self.class_hypervectors)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest class by Hamming similarity."""
        return np.argmax(self.scores(x), axis=-1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy against labels ``y``."""
        y = np.asarray(y, dtype=np.int64)
        predictions = self.predict(x)
        if len(predictions) != len(y):
            raise ValueError(f"{len(predictions)} predictions but {len(y)} labels")
        return float(np.mean(predictions == y))
