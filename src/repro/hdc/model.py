"""The HDC classifier: class-hypervector training and associative search.

Training follows the paper's mistake-driven rule (Sec. III-A).  Class
hypervectors start at zero; for every training sample whose encoded
hypervector ``E`` (true class ``a``) is misclassified as ``b``:

    bundling:  ``C_a = C_a + lr * E``
    detaching: ``C_b = C_b - lr * E``

Classification is the associative search ``argmax_k delta(E, C_k)``,
where ``delta`` is the dot product (the paper's accelerator-friendly
approximation) or exact cosine similarity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdc import kernels
from repro.hdc.encoder import Encoder, NonlinearEncoder
from repro.hdc.hypervector import cosine_similarity, dot_similarity

__all__ = ["HDCClassifier", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-iteration training statistics.

    Attributes:
        train_accuracy: Accuracy on the training set, measured *during*
            each pass (fraction of samples classified correctly before
            their update) — the quantity plotted in the paper's Fig. 4.
        validation_accuracy: Accuracy on the held-out set after each
            pass; empty if no validation data was supplied.
        updates: Number of mistake-driven updates per pass.  Each update
            touches two class hypervectors (bundle + detach); the count
            feeds the CPU cost model for the update phase.
        samples_seen: Number of training samples processed per pass.
    """

    train_accuracy: list[float] = field(default_factory=list)
    validation_accuracy: list[float] = field(default_factory=list)
    updates: list[int] = field(default_factory=list)
    samples_seen: list[int] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed training passes."""
        return len(self.train_accuracy)


class HDCClassifier:
    """Hyperdimensional classifier with mistake-driven training.

    Args:
        dimension: Hypervector width ``d`` (paper default 10,000).
        encoder: An :class:`~repro.hdc.encoder.Encoder`, or ``None`` to
            build the paper's :class:`NonlinearEncoder` lazily on the
            first :meth:`fit` call (when the feature count is known).
        learning_rate: The update scale ``lr`` (the paper's lambda).
        similarity: ``"dot"`` (paper's accelerated metric) or ``"cosine"``.
        chunk_size: Samples per update mini-batch.  ``1`` reproduces the
            paper's strictly-online rule; larger values score a chunk
            against momentarily-stale class hypervectors and then apply
            the per-sample updates, which is dramatically faster and
            converges indistinguishably in practice.
        update_kernel: How a chunk's updates are applied — one of
            :func:`repro.hdc.kernels.class_update`'s kernels (``"auto"``,
            ``"loop"``, ``"scatter"``, ``"matmul"``).  All preserve the
            chunked stale-scores semantics and the ``updates`` /
            ``train_accuracy`` bookkeeping; ``"loop"`` and ``"scatter"``
            are bit-identical, ``"matmul"`` (the ``"auto"`` fast path)
            matches up to float association order.
        seed: Seed for the lazily-built encoder and per-epoch shuffling.

    Attributes:
        class_hypervectors: ``(num_classes, dimension)`` trained weights,
            available after :meth:`fit` / :meth:`partial_fit`.
    """

    def __init__(self, dimension: int = 10_000, encoder: Encoder | None = None,
                 learning_rate: float = 0.035, similarity: str = "dot",
                 chunk_size: int = 64, update_kernel: str = "auto",
                 seed: np.random.Generator | int | None = None):
        if similarity not in ("dot", "cosine"):
            raise ValueError(f"similarity must be 'dot' or 'cosine', got {similarity!r}")
        if update_kernel not in ("auto", "loop", "scatter", "matmul"):
            raise ValueError(
                f"update_kernel must be 'auto', 'loop', 'scatter' or "
                f"'matmul', got {update_kernel!r}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if encoder is not None and encoder.dimension != dimension:
            raise ValueError(
                f"encoder dimension {encoder.dimension} does not match "
                f"classifier dimension {dimension}"
            )
        self.dimension = int(dimension)
        self.encoder = encoder
        self.learning_rate = float(learning_rate)
        self.similarity = similarity
        self.chunk_size = int(chunk_size)
        self.update_kernel = update_kernel
        self._rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.class_hypervectors: np.ndarray | None = None
        self.num_classes: int | None = None
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, iterations: int = 20,
            num_classes: int | None = None,
            validation: tuple[np.ndarray, np.ndarray] | None = None,
            shuffle: bool = True, encoded: bool = False) -> TrainingHistory:
        """Train class hypervectors for ``iterations`` passes.

        Args:
            x: Samples ``(num_samples, num_features)`` — or already
                encoded hypervectors ``(num_samples, dimension)`` when
                ``encoded=True`` (the co-design pipeline encodes on the
                accelerator and hands hypervectors to the host trainer).
            y: Integer labels in ``[0, num_classes)``.
            iterations: Training passes (the paper uses 20 for the fully
                trained baseline, 6 for bagging sub-models).
            num_classes: Class count; inferred as ``max(y) + 1`` when
                omitted.
            validation: Optional ``(val_x, val_y)`` measured after every
                pass (raw features, or hypervectors when ``encoded``).
            shuffle: Reshuffle sample order every pass.
            encoded: Treat ``x`` (and validation samples) as hypervectors.

        Returns:
            The accumulated :class:`TrainingHistory`.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        hypervectors = self._ensure_encoded(x, encoded)
        y = np.asarray(y, dtype=np.int64)
        if len(hypervectors) != len(y):
            raise ValueError(f"{len(hypervectors)} samples but {len(y)} labels")
        self._init_classes(y, num_classes)

        val_hv = val_y = None
        if validation is not None:
            val_hv = self._ensure_encoded(validation[0], encoded)
            val_y = np.asarray(validation[1], dtype=np.int64)

        for _ in range(iterations):
            order = self._rng.permutation(len(y)) if shuffle else np.arange(len(y))
            correct, updates = self._train_pass(hypervectors[order], y[order])
            self.history.train_accuracy.append(correct / max(1, len(y)))
            self.history.updates.append(updates)
            self.history.samples_seen.append(len(y))
            if val_hv is not None:
                predictions = self._classify(val_hv)
                self.history.validation_accuracy.append(
                    float(np.mean(predictions == val_y))
                )
        return self.history

    def partial_fit(self, x: np.ndarray, y: np.ndarray,
                    num_classes: int | None = None,
                    encoded: bool = False) -> "HDCClassifier":
        """Run a single training pass (no shuffle) — streaming updates."""
        hypervectors = self._ensure_encoded(x, encoded)
        y = np.asarray(y, dtype=np.int64)
        self._init_classes(y, num_classes)
        correct, updates = self._train_pass(hypervectors, y)
        self.history.train_accuracy.append(correct / max(1, len(y)))
        self.history.updates.append(updates)
        self.history.samples_seen.append(len(y))
        return self

    def _init_classes(self, y: np.ndarray, num_classes: int | None) -> None:
        if num_classes is None:
            num_classes = int(y.max()) + 1 if len(y) else 0
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        if self.class_hypervectors is None:
            self.num_classes = num_classes
            self.class_hypervectors = np.zeros(
                (num_classes, self.dimension), dtype=np.float32
            )
        elif num_classes > self.num_classes:
            raise ValueError(
                f"model was initialized with {self.num_classes} classes; "
                f"cannot grow to {num_classes}"
            )

    def _train_pass(self, hypervectors: np.ndarray,
                    y: np.ndarray) -> tuple[int, int]:
        """One pass of mistake-driven updates.  Returns (correct, updates)."""
        classes = self.class_hypervectors
        lr = self.learning_rate
        correct = 0
        updates = 0
        for start in range(0, len(y), self.chunk_size):
            chunk = hypervectors[start:start + self.chunk_size]
            labels = y[start:start + self.chunk_size]
            predictions = self._classify(chunk)
            wrong = np.nonzero(predictions != labels)[0]
            correct += int(len(labels) - len(wrong))
            # Apply the paper's bundling/detaching for each misclassified
            # sample in the chunk (vectorized; see repro.hdc.kernels).
            if len(wrong):
                kernels.class_update(
                    classes, chunk[wrong], labels[wrong], predictions[wrong],
                    lr, kernel=self.update_kernel,
                )
                updates += len(wrong)
        return correct, updates

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def scores(self, x: np.ndarray, encoded: bool = False) -> np.ndarray:
        """Similarity of each sample to each class, ``(num_samples, k)``."""
        self._check_trained()
        hypervectors = self._ensure_encoded(x, encoded)
        return self._similarity(hypervectors)

    def predict(self, x: np.ndarray, encoded: bool = False) -> np.ndarray:
        """Predicted class labels, shape ``(num_samples,)``."""
        self._check_trained()
        hypervectors = self._ensure_encoded(x, encoded)
        return self._classify(hypervectors)

    def score(self, x: np.ndarray, y: np.ndarray, encoded: bool = False) -> float:
        """Mean accuracy of :meth:`predict` against labels ``y``."""
        predictions = self.predict(x, encoded=encoded)
        y = np.asarray(y, dtype=np.int64)
        if len(predictions) != len(y):
            raise ValueError(f"{len(predictions)} predictions but {len(y)} labels")
        return float(np.mean(predictions == y))

    def _similarity(self, hypervectors: np.ndarray) -> np.ndarray:
        if self.similarity == "dot":
            return dot_similarity(hypervectors, self.class_hypervectors)
        return np.atleast_2d(
            cosine_similarity(hypervectors, self.class_hypervectors)
        )

    def _classify(self, hypervectors: np.ndarray) -> np.ndarray:
        return np.argmax(self._similarity(hypervectors), axis=-1)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _ensure_encoded(self, x: np.ndarray, encoded: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if encoded:
            if x.shape[1] != self.dimension:
                raise ValueError(
                    f"encoded input width {x.shape[1]} does not match "
                    f"dimension {self.dimension}"
                )
            return x
        if self.encoder is None:
            self.encoder = NonlinearEncoder(
                num_features=x.shape[1], dimension=self.dimension, seed=self._rng
            )
        return self.encoder.encode(x)

    def _check_trained(self) -> None:
        if self.class_hypervectors is None:
            raise RuntimeError("model has not been trained; call fit() first")
