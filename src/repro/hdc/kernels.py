"""Vectorized host-side kernels for the HDC training hot path.

The paper's point (Sec. III-B) is that the host-CPU update phase
dominates HDC training cost, so the reproduction's own update loop
should not be an interpreter-bound Python loop.  This module collects
the update-phase kernels in one place with explicit numerical contracts:

- :func:`loop_class_update` — the seed per-sample loop.  Reference
  semantics: every other kernel is tested against it.
- :func:`scatter_class_update` — ``np.add.at`` over an interleaved
  (bundle, detach) index/delta stream.  **Bit-identical** to the loop
  for any input (``ufunc.at`` applies duplicate indices sequentially in
  stream order, and IEEE-754 guarantees ``c - x == c + (-x)``), but the
  2-D row-indexed ``add.at`` has no fast path in numpy and is slower
  than the loop on most builds — it is kept as a verification oracle.
- :func:`matmul_class_update` — the fast path: scatter the signed
  per-sample learning rates into a ``(num_classes, wrong)`` one-hot
  matrix and apply all updates as one BLAS matmul,
  ``classes += M @ hypervectors``, column-blocked to stay cache
  resident.  This regroups the per-row additions, so results match the
  loop up to float association order (~1 ulp per touched element) in
  general, and **exactly** when the arithmetic is exact — e.g. bipolar
  ``+/-1`` hypervectors with a power-of-two learning rate and classes
  accumulated from zero (training's actual start state), or chunks
  with at most one mistake (``chunk_size=1``, the paper's strictly-
  online rule).
- :func:`id_level_encode` — memory-bounded chunked gather/bind/bundle
  for :class:`~repro.hdc.encoder.IdLevelEncoder`; bit-identical to the
  per-row loop (each output row is the same ``sum`` over the feature
  axis, association order unchanged).

:func:`class_update` dispatches between them: tiny mistake counts go to
the loop (two row-ops beat a full ``(k, d)`` matmul), everything else
to the matmul kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "class_update",
    "id_level_encode",
    "loop_class_update",
    "matmul_class_update",
    "scatter_class_update",
]

# Columns per matmul block.  Small enough that the (wrong, block) operand
# slab and the (num_classes, block) delta stay cache-resident on modest
# cores; large enough to amortize BLAS dispatch.  1024 measured fastest
# across single-core and desktop-class hosts (see benchmarks/test_kernels).
MATMUL_COL_BLOCK = 1024

# Below this many misclassified samples the two-row loop update is
# cheaper than writing the full (num_classes, dimension) delta.
_LOOP_CUTOVER = 2

# Chunk budget (bytes) for the id/level gather; keeps the transient
# (rows, num_features, dimension) slab inside L2-sized working sets.
ID_LEVEL_CHUNK_BYTES = 1 << 20


def loop_class_update(classes: np.ndarray, hypervectors: np.ndarray,
                      true_labels: np.ndarray, predicted_labels: np.ndarray,
                      learning_rate: float) -> None:
    """Per-sample bundle/detach loop (the reference implementation).

    Args:
        classes: ``(num_classes, dimension)`` class hypervectors,
            updated in place.
        hypervectors: ``(wrong, dimension)`` misclassified encodings.
        true_labels: ``(wrong,)`` true class indices.
        predicted_labels: ``(wrong,)`` predicted (wrong) class indices.
        learning_rate: Update scale ``lr``.
    """
    for hv, true_label, predicted in zip(
        hypervectors, true_labels, predicted_labels
    ):
        classes[true_label] += learning_rate * hv
        classes[predicted] -= learning_rate * hv


def scatter_class_update(classes: np.ndarray, hypervectors: np.ndarray,
                         true_labels: np.ndarray,
                         predicted_labels: np.ndarray,
                         learning_rate: float) -> None:
    """Exact-order vectorized update via ``np.add.at``.

    Builds the interleaved stream ``(+lr*hv_0 -> true_0,
    -lr*hv_0 -> pred_0, +lr*hv_1 -> true_1, ...)`` and scatter-adds it
    in one call.  ``ufunc.at`` applies duplicate row indices
    sequentially in stream order, so the result is bit-identical to
    :func:`loop_class_update`.
    """
    wrong = len(true_labels)
    if wrong == 0:
        return
    scaled = learning_rate * np.asarray(hypervectors, dtype=classes.dtype)
    rows = np.empty(2 * wrong, dtype=np.intp)
    rows[0::2] = true_labels
    rows[1::2] = predicted_labels
    deltas = np.empty((2 * wrong, classes.shape[1]), dtype=classes.dtype)
    deltas[0::2] = scaled
    np.negative(scaled, out=deltas[1::2])
    np.add.at(classes, rows, deltas)


def matmul_class_update(classes: np.ndarray, hypervectors: np.ndarray,
                        true_labels: np.ndarray,
                        predicted_labels: np.ndarray,
                        learning_rate: float,
                        col_block: int = MATMUL_COL_BLOCK) -> None:
    """Fast vectorized update: one signed one-hot matmul per chunk.

    ``M[c, s]`` holds ``+lr`` where sample ``s``'s true class is ``c``
    and ``-lr`` where its (distinct) predicted class is ``c``; then
    ``classes += M @ hypervectors`` applies every bundle and detach at
    once.  Column blocking keeps each BLAS call's working set small.

    Matches the loop up to float association order; exact when the
    per-sample products are exactly representable (see module docs).
    """
    wrong = len(true_labels)
    if wrong == 0:
        return
    num_classes, dimension = classes.shape
    signed = np.zeros((num_classes, wrong), dtype=classes.dtype)
    cols = np.arange(wrong)
    # Each column is one sample, so the (row, col) pairs are unique per
    # assignment; true != predicted for misclassified samples.
    signed[true_labels, cols] = learning_rate
    signed[predicted_labels, cols] = -learning_rate
    if dimension <= col_block:
        classes += signed @ hypervectors
        return
    for start in range(0, dimension, col_block):
        stop = min(start + col_block, dimension)
        classes[:, start:stop] += signed @ hypervectors[:, start:stop]


def class_update(classes: np.ndarray, hypervectors: np.ndarray,
                 true_labels: np.ndarray, predicted_labels: np.ndarray,
                 learning_rate: float, kernel: str = "auto") -> None:
    """Apply one chunk of mistake-driven updates with the chosen kernel.

    Args:
        kernel: ``"auto"`` (loop for tiny chunks, matmul otherwise),
            ``"loop"``, ``"scatter"``, or ``"matmul"``.
    """
    if kernel == "auto":
        kernel = "loop" if len(true_labels) <= _LOOP_CUTOVER else "matmul"
    if kernel == "loop":
        loop_class_update(classes, hypervectors, true_labels,
                          predicted_labels, learning_rate)
    elif kernel == "scatter":
        scatter_class_update(classes, hypervectors, true_labels,
                             predicted_labels, learning_rate)
    elif kernel == "matmul":
        matmul_class_update(classes, hypervectors, true_labels,
                            predicted_labels, learning_rate)
    else:
        raise ValueError(
            f"unknown update kernel {kernel!r}; choose from "
            f"'auto', 'loop', 'scatter', 'matmul'"
        )


def id_level_encode(id_hypervectors: np.ndarray,
                    level_hypervectors: np.ndarray,
                    level_indices: np.ndarray,
                    max_chunk_bytes: int = ID_LEVEL_CHUNK_BYTES
                    ) -> np.ndarray:
    """Chunked record-based encoding ``E_s = sum_i ID_i * L[idx_s_i]``.

    Gathers and binds a block of samples at a time so the transient
    ``(rows, num_features, dimension)`` slab never exceeds
    ``max_chunk_bytes``; a full-dataset gather would not fit in memory
    for hyper-wide ``d``, and an unbounded one thrashes the cache.
    Bit-identical to the per-row loop: every output row is the same
    left-to-right sum over the feature axis.

    Args:
        id_hypervectors: ``(num_features, dimension)`` bipolar IDs.
        level_hypervectors: ``(num_levels, dimension)`` level HVs.
        level_indices: ``(num_samples, num_features)`` quantized levels.
        max_chunk_bytes: Budget for the gathered slab.

    Returns:
        ``(num_samples, dimension)`` float32 encodings.
    """
    num_features, dimension = id_hypervectors.shape
    out = np.empty((len(level_indices), dimension), dtype=np.float32)
    slab_row_bytes = num_features * dimension * 4
    rows = max(1, int(max_chunk_bytes // max(1, slab_row_bytes)))
    for start in range(0, len(level_indices), rows):
        idx = level_indices[start:start + rows]
        bound = level_hypervectors[idx]          # (rows, n, d) gather
        np.multiply(bound, id_hypervectors, out=bound)
        np.sum(bound, axis=1, out=out[start:start + len(idx)])
    return out
