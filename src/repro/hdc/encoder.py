"""Encoders: mapping ``n``-feature samples into ``d``-dimensional space.

The paper's encoder (Sec. III-A) is a nonlinear random projection:

    ``E = tanh(f_1 * B_1 + f_2 * B_2 + ... + f_n * B_n) = tanh(F @ B)``

with base hypervectors ``B_i ~ N(0, 1)``.  Because the aggregation is a
single vector-matrix multiply, the encoder *is* the first fully-connected
layer of the paper's wide-NN interpretation (Fig. 2), which is what makes
it compilable to the Edge TPU.

Two ablation encoders are included: :class:`LinearEncoder` (same
projection without tanh — most prior HDC work) and
:class:`IdLevelEncoder` (classical record-based ID/level binding, which
is *not* a single matmul and therefore does not map to a dense
accelerator — the contrast motivates the paper's choice).
"""

from __future__ import annotations

import numpy as np

from repro.hdc import kernels
from repro.hdc.hypervector import generate_base_hypervectors

__all__ = ["Encoder", "IdLevelEncoder", "LinearEncoder", "NonlinearEncoder"]


class Encoder:
    """Interface for HDC encoders.

    Attributes:
        num_features: Input feature count ``n``.
        dimension: Hypervector width ``d``.
    """

    num_features: int
    dimension: int

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Encode samples into hypervectors.

        Args:
            x: Shape ``(num_samples, num_features)`` or ``(num_features,)``.

        Returns:
            Shape ``(num_samples, dimension)`` (or ``(dimension,)`` for a
            single sample), dtype ``float32``.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.encode(x)

    def _check_input(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        """Coerce input to 2-D float32 and validate the feature count."""
        x = np.asarray(x, dtype=np.float32)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.ndim != 2:
            raise ValueError(f"expected 1-D or 2-D input, got shape {x.shape}")
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"encoder expects {self.num_features} features, got {x.shape[1]}"
            )
        return x, single


class NonlinearEncoder(Encoder):
    """The paper's encoder: ``E = tanh(F @ B)`` with Gaussian ``B``.

    The tanh maps linearly inseparable inputs to a (near-)linearly
    separable high-dimensional representation, and doubles as the hidden
    layer activation when the encoder is compiled to a neural network.

    Args:
        num_features: Input feature count ``n``.
        dimension: Hypervector width ``d`` (paper default 10,000).
        seed: Seed (or Generator) for the base hypervectors.
        feature_mask: Optional boolean mask of shape ``(num_features,)``.
            Rows of ``B`` for masked-out features are zeroed — this is
            exactly how the paper folds bagging's *feature sampling* into
            the fused inference model ("some of the columns are set to
            zero", Sec. III-B).
        phase: Add a random per-dimension bias inside the tanh,
            ``E = tanh(F @ B + p)`` with ``p ~ N(0, 1)``.  The paper's
            encoder has none (default off) — but without it the encoding
            is an *odd* function of the input (``E(-F) = -E(F)``) and
            cannot represent even function components, which matters for
            regression (see :mod:`repro.hdc.regression`).
    """

    def __init__(self, num_features: int, dimension: int = 10_000,
                 seed: np.random.Generator | int | None = None,
                 feature_mask: np.ndarray | None = None,
                 phase: bool = False):
        self.num_features = int(num_features)
        self.dimension = int(dimension)
        if not isinstance(seed, np.random.Generator):
            seed = np.random.default_rng(seed)
        self.base_hypervectors = generate_base_hypervectors(
            self.num_features, self.dimension, rng=seed
        )
        self.phases = None
        if phase:
            self.phases = seed.standard_normal(self.dimension).astype(
                np.float32
            )
        if feature_mask is not None:
            feature_mask = np.asarray(feature_mask, dtype=bool)
            if feature_mask.shape != (self.num_features,):
                raise ValueError(
                    f"feature_mask shape {feature_mask.shape} does not match "
                    f"num_features={self.num_features}"
                )
            self.base_hypervectors = self.base_hypervectors * feature_mask[:, None]
        self.feature_mask = feature_mask

    def encode(self, x: np.ndarray) -> np.ndarray:
        x, single = self._check_input(x)
        projected = x @ self.base_hypervectors
        if self.phases is not None:
            projected = projected + self.phases
        encoded = np.tanh(projected)
        return encoded[0] if single else encoded

    def projection(self, x: np.ndarray) -> np.ndarray:
        """The pre-activation ``F @ B (+ p)`` (hidden layer before tanh)."""
        x, single = self._check_input(x)
        projected = x @ self.base_hypervectors
        if self.phases is not None:
            projected = projected + self.phases
        return projected[0] if single else projected


class LinearEncoder(Encoder):
    """Linear random projection ``E = F @ B`` (no activation).

    The encoding used by most prior HDC work; kept as an ablation
    baseline for the paper's claim that the nonlinear variant "achieves
    higher learning accuracy".
    """

    def __init__(self, num_features: int, dimension: int = 10_000,
                 seed: np.random.Generator | int | None = None):
        self.num_features = int(num_features)
        self.dimension = int(dimension)
        self.base_hypervectors = generate_base_hypervectors(
            self.num_features, self.dimension, rng=seed
        )

    def encode(self, x: np.ndarray) -> np.ndarray:
        x, single = self._check_input(x)
        encoded = (x @ self.base_hypervectors).astype(np.float32)
        return encoded[0] if single else encoded


class IdLevelEncoder(Encoder):
    """Classical record-based encoding: ``E = sum_i ID_i * L(q(f_i))``.

    Each feature position gets a random bipolar *ID* hypervector; feature
    values are quantized into ``num_levels`` bins whose *level*
    hypervectors interpolate between two random endpoint hypervectors (so
    nearby values stay similar).  Binding is elementwise multiplication.

    This encoder is intentionally *not* expressible as one dense matmul —
    the quantization gather breaks the wide-NN mapping — which is why the
    paper's accelerator path uses the projection encoders instead.

    Args:
        num_features: Input feature count ``n``.
        dimension: Hypervector width ``d``.
        num_levels: Number of quantization levels for feature values.
        value_range: ``(low, high)`` clipping range for feature values;
            values outside are clamped to the nearest level.
        seed: Seed (or Generator) for ID/level hypervectors.
    """

    def __init__(self, num_features: int, dimension: int = 10_000,
                 num_levels: int = 64,
                 value_range: tuple[float, float] = (-3.0, 3.0),
                 seed: np.random.Generator | int | None = None):
        if num_levels < 2:
            raise ValueError(f"num_levels must be >= 2, got {num_levels}")
        low, high = value_range
        if not low < high:
            raise ValueError(f"value_range must satisfy low < high, got {value_range}")
        self.num_features = int(num_features)
        self.dimension = int(dimension)
        self.num_levels = int(num_levels)
        self.value_range = (float(low), float(high))
        if not isinstance(seed, np.random.Generator):
            seed = np.random.default_rng(seed)
        self.id_hypervectors = np.where(
            seed.random((self.num_features, self.dimension)) < 0.5, -1.0, 1.0
        ).astype(np.float32)
        # Level hypervectors: start from a random bipolar HV and flip a
        # progressively larger random subset, so L(0) and L(num_levels-1)
        # are near-orthogonal while neighbours are highly similar.
        base = np.where(seed.random(self.dimension) < 0.5, -1.0, 1.0)
        flip_order = seed.permutation(self.dimension)
        levels = np.empty((self.num_levels, self.dimension), dtype=np.float32)
        flips_per_level = self.dimension // (2 * max(1, self.num_levels - 1))
        if flips_per_level >= 1:
            boundaries = flips_per_level * np.arange(self.num_levels)
        else:
            # Degenerate regime (num_levels - 1 > dimension / 2): a
            # constant per-level flip count floors to 0 and every level
            # collapses onto the base HV.  Spread the dimension/2 total
            # flips as evenly as possible instead, so the extremes stay
            # near-orthogonal even though some neighbours coincide.
            boundaries = np.round(
                np.linspace(0.0, self.dimension // 2, self.num_levels)
            ).astype(np.int64)
        current = base.copy()
        levels[0] = current
        for level in range(1, self.num_levels):
            start = boundaries[level - 1]
            stop = boundaries[level]
            current = current.copy()
            current[flip_order[start:stop]] *= -1.0
            levels[level] = current
        self.level_hypervectors = levels

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Map feature values to integer level indices in ``[0, num_levels)``."""
        low, high = self.value_range
        scaled = (np.asarray(x, dtype=np.float64) - low) / (high - low)
        idx = np.floor(scaled * self.num_levels).astype(np.int64)
        return np.clip(idx, 0, self.num_levels - 1)

    def encode(self, x: np.ndarray) -> np.ndarray:
        x, single = self._check_input(x)
        level_idx = self.quantize(x)
        encoded = kernels.id_level_encode(
            self.id_hypervectors, self.level_hypervectors, level_idx,
        )
        return encoded[0] if single else encoded
