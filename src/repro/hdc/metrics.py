"""Classification metrics and the paper's training-cost ratio.

Small, dependency-free helpers shared by experiments and tests.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "weight_update_cost_ratio",
]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of predictions equal to labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero predictions")
    return float(np.mean(predictions == labels))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int | None = None) -> np.ndarray:
    """Confusion matrix ``m[true, predicted]`` of raw counts."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, labels: np.ndarray,
                       num_classes: int | None = None) -> np.ndarray:
    """Recall for each class; NaN for classes absent from ``labels``."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    support = matrix.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(support > 0, np.diag(matrix) / support, np.nan)


def weight_update_cost_ratio(num_models: int, sub_dimension: int, dimension: int,
                             sub_iterations: int, iterations: int,
                             dataset_ratio: float, feature_ratio: float = 1.0) -> float:
    """The paper's weight-update cost model ``C'/C`` (Sec. III-B).

    ``C' = C * M * (d'/d) * (I'/I) * alpha * beta`` — the factor by which
    bagging shrinks the host-CPU class-hypervector-update cost.  With the
    paper's settings (M=4, d'=d/4, I'=6 of I=20, alpha=0.6, beta=1) this
    evaluates to 0.18, i.e. a ~5.6x algorithmic reduction; the paper
    measures up to 4.74x after overheads.

    Returns:
        The dimensionless ratio ``C'/C`` (smaller is cheaper).
    """
    if min(num_models, sub_dimension, dimension, sub_iterations, iterations) < 1:
        raise ValueError("all counts must be >= 1")
    if not 0.0 < dataset_ratio <= 1.0:
        raise ValueError(f"dataset_ratio must be in (0, 1], got {dataset_ratio}")
    if not 0.0 < feature_ratio <= 1.0:
        raise ValueError(f"feature_ratio must be in (0, 1], got {feature_ratio}")
    return (
        num_models
        * (sub_dimension / dimension)
        * (sub_iterations / iterations)
        * dataset_ratio
        * feature_ratio
    )
