"""Bagging-accelerated HDC training and fused-model generation.

This is the paper's second contribution (Sec. III-B).  Instead of one
full-width model trained for many iterations, train ``M`` *narrow*
sub-models (width ``d' = d / M``) for fewer iterations on bootstrap
subsets of the training data, then **fuse** them into a single full-width
inference model:

- encoding matrices stacked horizontally:
  ``B = [B^1  B^2 ... B^M]`` (shape ``n x d``), with rows zeroed for
  features a sub-model did not sample;
- class matrices stacked vertically:
  ``C = [C^1; C^2; ...; C^M]`` (shape ``d x k``).

Because tanh is elementwise, ``tanh(F @ B)`` equals the concatenation of
the sub-model encodings, and ``E @ C`` equals the *sum* of the
sub-models' similarity scores — so the fused model computes exactly the
ensemble's consensus in one matmul pair, with zero inference overhead
relative to a non-bagged model of the same width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdc.encoder import NonlinearEncoder
from repro.hdc.model import HDCClassifier, TrainingHistory
from repro.runtime.executor import (
    ExecutorConfig,
    SharedArray,
    WorkerPool,
    resolve_shared,
    spawn_rngs,
)

__all__ = ["BaggingConfig", "BaggingHDCTrainer", "FusedHDCModel"]


@dataclass(frozen=True)
class BaggingConfig:
    """Hyper-parameters for bagging-accelerated training.

    Defaults are the paper's Sec. IV-A choices: 4 sub-models of width
    2500 (fused width 10,000), 6 training iterations, dataset sampling
    ratio 0.6, feature sampling disabled.

    Attributes:
        num_models: Ensemble size ``M``.
        dimension: Fused inference-model width ``d``.
        sub_dimension: Per-sub-model width ``d'``; defaults to ``d / M``
            (the paper's choice, so the fused model matches the
            non-bagged model's size).
        iterations: Sub-model training passes ``I'``.
        dataset_ratio: Fraction ``alpha`` of training samples drawn for
            each sub-model's bootstrap subset.
        feature_ratio: Fraction ``beta`` of features each sub-model keeps
            (1.0 disables feature sampling, as the paper concludes).
        replace: Draw bootstrap samples with replacement (classical
            bagging) or without (the paper's "using 60% of the training
            dataset" reading).  Default False.
        learning_rate: Update scale for each sub-model.
        chunk_size: Update mini-batch size (see :class:`HDCClassifier`).
    """

    num_models: int = 4
    dimension: int = 10_000
    sub_dimension: int | None = None
    iterations: int = 6
    dataset_ratio: float = 0.6
    feature_ratio: float = 1.0
    replace: bool = False
    learning_rate: float = 0.035
    chunk_size: int = 64

    def __post_init__(self) -> None:
        if self.num_models < 1:
            raise ValueError(f"num_models must be >= 1, got {self.num_models}")
        if self.dimension < self.num_models:
            raise ValueError(
                f"dimension {self.dimension} smaller than num_models "
                f"{self.num_models}"
            )
        if not 0.0 < self.dataset_ratio <= 1.0:
            raise ValueError(
                f"dataset_ratio must be in (0, 1], got {self.dataset_ratio}"
            )
        if not 0.0 < self.feature_ratio <= 1.0:
            raise ValueError(
                f"feature_ratio must be in (0, 1], got {self.feature_ratio}"
            )
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.sub_dimension is not None and self.sub_dimension < 1:
            raise ValueError(
                f"sub_dimension must be >= 1, got {self.sub_dimension}"
            )

    @property
    def effective_sub_dimension(self) -> int:
        """``d'`` after applying the default ``d / M`` rule."""
        if self.sub_dimension is not None:
            return self.sub_dimension
        return self.dimension // self.num_models

    @property
    def fused_dimension(self) -> int:
        """Width of the fused inference model, ``M * d'``."""
        return self.num_models * self.effective_sub_dimension


@dataclass
class FusedHDCModel:
    """The single full-width inference model produced by fusion.

    Attributes:
        base_matrix: ``(num_features, fused_dimension)`` encoding weights
            (horizontally stacked sub-model base hypervectors).
        class_matrix: ``(fused_dimension, num_classes)`` classification
            weights (vertically stacked sub-model class hypervectors).
        num_classes: Class count ``k``.
        sub_widths: Width of each sub-model's slice, for bookkeeping.
    """

    base_matrix: np.ndarray
    class_matrix: np.ndarray
    num_classes: int
    sub_widths: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.base_matrix.ndim != 2 or self.class_matrix.ndim != 2:
            raise ValueError("base_matrix and class_matrix must be 2-D")
        if self.base_matrix.shape[1] != self.class_matrix.shape[0]:
            raise ValueError(
                f"width mismatch: base {self.base_matrix.shape} vs "
                f"class {self.class_matrix.shape}"
            )
        if self.class_matrix.shape[1] != self.num_classes:
            raise ValueError(
                f"class_matrix has {self.class_matrix.shape[1]} columns but "
                f"num_classes={self.num_classes}"
            )

    @property
    def num_features(self) -> int:
        """Input feature count ``n``."""
        return self.base_matrix.shape[0]

    @property
    def dimension(self) -> int:
        """Fused hypervector width ``d``."""
        return self.base_matrix.shape[1]

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Fused encoding ``tanh(F @ B)`` — concatenated sub-encodings."""
        x = np.asarray(x, dtype=np.float32)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} features, got {x.shape[1]}"
            )
        return np.tanh(x @ self.base_matrix)

    def scores(self, x: np.ndarray) -> np.ndarray:
        """Ensemble similarity scores ``tanh(F @ B) @ C``."""
        return self.encode(x) @ self.class_matrix

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Consensus class prediction ``argmax_i O_i``."""
        return np.argmax(self.scores(x), axis=-1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy against labels ``y``."""
        y = np.asarray(y, dtype=np.int64)
        predictions = self.predict(x)
        if len(predictions) != len(y):
            raise ValueError(f"{len(predictions)} predictions but {len(y)} labels")
        return float(np.mean(predictions == y))


def draw_bootstrap_subset(rng: np.random.Generator, population: int,
                          size: int, replace: bool) -> np.ndarray:
    """Draw one sub-model's bootstrap sample indices."""
    if replace:
        return rng.integers(0, population, size=size)
    return rng.choice(population, size=min(size, population), replace=False)


def draw_feature_mask(rng: np.random.Generator, num_features: int,
                      kept: int) -> np.ndarray:
    """Draw one sub-model's boolean feature-sampling mask."""
    mask = np.zeros(num_features, dtype=bool)
    if kept >= num_features:
        mask[:] = True
        return mask
    chosen = rng.choice(num_features, size=kept, replace=False)
    mask[chosen] = True
    return mask


@dataclass
class _SubModelTask:
    """One sub-model's training job: picklable for process workers.

    Every random quantity the sub-model needs — bootstrap indices,
    feature mask, base hypervectors, epoch shuffles — is drawn from
    ``rng``, a child generator spawned for this task index.  The task
    is therefore a pure function of its payload, independent of which
    worker runs it and when: the parallel determinism contract.

    ``x``/``y`` may be :class:`~repro.runtime.executor.SharedArray`
    handles (process backend): every task then pickles a few dozen
    bytes instead of the full training set, and workers attach to one
    shared copy.  Values are identical either way.
    """

    rng: np.random.Generator
    x: np.ndarray | SharedArray
    y: np.ndarray | SharedArray
    config: BaggingConfig
    num_classes: int
    subset_size: int
    kept_features: int
    validation: tuple[np.ndarray, np.ndarray] | None


def _train_sub_model(task: _SubModelTask):
    """Train one bagging sub-model (module-level: process-pool safe)."""
    rng = task.rng
    config = task.config
    x = resolve_shared(task.x)
    y = resolve_shared(task.y)
    num_features = x.shape[1]
    indices = draw_bootstrap_subset(
        rng, len(x), task.subset_size, config.replace,
    )
    mask = draw_feature_mask(rng, num_features, task.kept_features)
    encoder = NonlinearEncoder(
        num_features=num_features,
        dimension=config.effective_sub_dimension,
        seed=rng,
        feature_mask=None if mask.all() else mask,
    )
    model = HDCClassifier(
        dimension=config.effective_sub_dimension,
        encoder=encoder,
        learning_rate=config.learning_rate,
        chunk_size=config.chunk_size,
        seed=rng,
    )
    history = model.fit(
        x[indices], y[indices],
        iterations=config.iterations,
        num_classes=task.num_classes,
        validation=task.validation,
    )
    return model, history, indices, mask


class BaggingHDCTrainer:
    """Trains ``M`` narrow HDC sub-models and fuses them for inference.

    Usage::

        trainer = BaggingHDCTrainer(BaggingConfig(), seed=7)
        trainer.fit(train_x, train_y)
        fused = trainer.fuse()
        predictions = fused.predict(test_x)

    Sub-models are independent learners (bootstrap subsets, separate
    hypervector spaces), so :meth:`fit` trains them on a
    :class:`~repro.runtime.executor.WorkerPool`.  Each sub-model draws
    all of its randomness from a child generator spawned from the
    trainer's seed, so the trained weights are **bit-identical for any
    worker count** — ``executor=ExecutorConfig(workers=4)`` produces
    exactly the fused model that the default sequential run does.

    Args:
        config: Bagging hyper-parameters.
        seed: Root seed (int, Generator or None) for all sub-model
            randomness, via seed spawning.
        executor: Parallelism knobs — an
            :class:`~repro.runtime.executor.ExecutorConfig`, a plain
            worker count, or ``None`` for sequential training.

    Attributes:
        sub_models: The trained :class:`HDCClassifier` instances.
        histories: One :class:`TrainingHistory` per sub-model.
        sample_indices: The bootstrap index arrays actually drawn, for
            profiling (their sizes drive the encoding cost model).
        feature_masks: The boolean feature masks per sub-model (all-true
            when feature sampling is disabled).
        last_parallel_report: The
            :class:`~repro.runtime.executor.ParallelReport` of the most
            recent :meth:`fit` (per-task seconds, modeled makespan).
    """

    def __init__(self, config: BaggingConfig | None = None,
                 seed: np.random.Generator | int | None = None,
                 executor: ExecutorConfig | int | None = None):
        self.config = config if config is not None else BaggingConfig()
        self._rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.executor = ExecutorConfig.coerce(executor)
        self.sub_models: list[HDCClassifier] = []
        self.histories: list[TrainingHistory] = []
        self.sample_indices: list[np.ndarray] = []
        self.feature_masks: list[np.ndarray] = []
        self.num_classes: int | None = None
        self.last_parallel_report = None

    def fit(self, x: np.ndarray, y: np.ndarray,
            num_classes: int | None = None,
            validation: tuple[np.ndarray, np.ndarray] | None = None
            ) -> "BaggingHDCTrainer":
        """Train all sub-models on bootstrap subsets of ``(x, y)``.

        Sub-models train concurrently when ``executor.workers > 1``;
        results are identical to sequential training either way (the
        child-seed spawning contract).

        Args:
            x: Training samples ``(num_samples, num_features)``.
            y: Integer labels.
            num_classes: Class count; inferred when omitted.
            validation: Optional held-out split recorded per sub-model.
        """
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} samples but {len(y)} labels")
        if num_classes is None:
            num_classes = int(y.max()) + 1
        self.num_classes = num_classes
        config = self.config
        num_features = x.shape[1]
        subset_size = max(1, int(round(config.dataset_ratio * len(x))))
        kept_features = max(1, int(round(config.feature_ratio * num_features)))

        # Process workers would pickle the full training set once per
        # task; publish it as one shared-memory copy instead.  Falls
        # back to plain arrays where shared memory is unavailable.
        task_x, task_y = x, y
        shared: list[SharedArray] = []
        if (self.executor.backend == "process"
                and self.executor.workers > 1 and config.num_models > 1):
            try:
                task_x = SharedArray.create(x)
                task_y = SharedArray.create(y)
                shared = [task_x, task_y]
            except OSError:
                if isinstance(task_x, SharedArray):
                    task_x.unlink()
                task_x, task_y = x, y
                shared = []
        tasks = [
            _SubModelTask(
                rng=rng, x=task_x, y=task_y, config=config,
                num_classes=num_classes,
                subset_size=subset_size, kept_features=kept_features,
                validation=validation,
            )
            for rng in spawn_rngs(self._rng, config.num_models)
        ]
        try:
            pool = WorkerPool(self.executor.workers, self.executor.backend)
            results = pool.map(_train_sub_model, tasks)
        finally:
            for handle in shared:
                handle.unlink()
        self.last_parallel_report = pool.last_report

        self.sub_models = [model for model, _, _, _ in results]
        self.histories = [history for _, history, _, _ in results]
        self.sample_indices = [indices for _, _, indices, _ in results]
        self.feature_masks = [mask for _, _, _, mask in results]
        return self

    def fuse(self) -> FusedHDCModel:
        """Stack sub-model weights into the single inference model.

        Raises:
            RuntimeError: If :meth:`fit` has not been called.
        """
        if not self.sub_models:
            raise RuntimeError("no trained sub-models; call fit() first")
        base = np.hstack([m.encoder.base_hypervectors for m in self.sub_models])
        classes = np.vstack([m.class_hypervectors.T for m in self.sub_models])
        return FusedHDCModel(
            base_matrix=base.astype(np.float32, copy=False),
            class_matrix=classes.astype(np.float32, copy=False),
            num_classes=self.num_classes,
            sub_widths=[m.dimension for m in self.sub_models],
        )

    def ensemble_scores(self, x: np.ndarray) -> np.ndarray:
        """Sum of per-sub-model similarity scores (the fused semantics).

        Provided for verification: equals :meth:`FusedHDCModel.scores`
        up to floating-point association order.
        """
        if not self.sub_models:
            raise RuntimeError("no trained sub-models; call fit() first")
        total = None
        for model in self.sub_models:
            scores = model.scores(x)
            if total is None:
                total = scores
            else:
                total += scores
        return total

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Consensus prediction via summed sub-model scores."""
        return np.argmax(self.ensemble_scores(x), axis=-1)
