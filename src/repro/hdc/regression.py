"""HDC regression (RegHD-style; the paper's reference [28]).

Regression in hyperdimensional space: encode the input with the same
nonlinear random projection the classifier uses, hold a single *model
hypervector* ``M``, predict ``y_hat = (E . M) / d``, and nudge ``M``
toward the residual:

    ``M = M + lr * (y - y_hat) * E``

Because the tanh encoding is a random-feature map, this is online
learning of a nonlinear regressor with the same lightweight, gradient-
free update structure as HDC classification — and the same wide-NN /
Edge TPU deployment story (prediction is one dense layer after the
encoder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdc.encoder import Encoder, NonlinearEncoder

__all__ = ["HDCRegressor", "RegressionHistory"]


@dataclass
class RegressionHistory:
    """Per-iteration training statistics.

    Attributes:
        train_mse: Mean squared error over each pass (prediction made
            before each sample's update).
        validation_mse: Held-out MSE after each pass, if supplied.
    """

    train_mse: list = field(default_factory=list)
    validation_mse: list = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Completed passes."""
        return len(self.train_mse)


class HDCRegressor:
    """Single-model hyperdimensional regressor.

    Unlike classification, regression needs the encoder to span *even*
    function components and a constant: the default encoder therefore
    enables random phases (``tanh(F @ B + p)``) and the regressor fits an
    intercept (the target mean).

    Args:
        dimension: Hypervector width ``d``.
        encoder: Input encoder; a phase-enabled nonlinear projection is
            built lazily when omitted.
        learning_rate: Residual step size.
        input_scale: Inputs are multiplied by this before encoding —
            tune so pre-activations stay in tanh's responsive range
            (roughly ``1 / sqrt(num_features)`` for standardized
            features).  ``None`` applies that default automatically.
        chunk_size: Samples per update mini-batch (1 = strictly online).
        seed: Seed for the lazy encoder and shuffling.
    """

    def __init__(self, dimension: int = 10_000, encoder: Encoder | None = None,
                 learning_rate: float = 0.2, input_scale: float | None = None,
                 chunk_size: int = 8,
                 seed: np.random.Generator | int | None = None):
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be > 0, got {learning_rate}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if input_scale is not None and input_scale <= 0:
            raise ValueError(f"input_scale must be > 0, got {input_scale}")
        if encoder is not None and encoder.dimension != dimension:
            raise ValueError(
                f"encoder dimension {encoder.dimension} does not match "
                f"regressor dimension {dimension}"
            )
        self.dimension = int(dimension)
        self.encoder = encoder
        self.learning_rate = float(learning_rate)
        self.input_scale = input_scale
        self.chunk_size = int(chunk_size)
        self._rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.model_hypervector: np.ndarray | None = None
        self.intercept = 0.0
        self.history = RegressionHistory()

    def fit(self, x: np.ndarray, y: np.ndarray, iterations: int = 10,
            validation: tuple[np.ndarray, np.ndarray] | None = None,
            shuffle: bool = True) -> RegressionHistory:
        """Train for ``iterations`` residual-update passes.

        Args:
            x: Samples ``(num_samples, num_features)``.
            y: Continuous targets ``(num_samples,)``.
            iterations: Training passes.
            validation: Optional held-out ``(val_x, val_y)``.
            shuffle: Reshuffle sample order every pass.
        """
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} samples but {len(y)} targets")
        encoded = self._encode(x)
        if self.model_hypervector is None:
            self.model_hypervector = np.zeros(self.dimension, dtype=np.float64)
            self.intercept = float(y.mean())

        val_encoded = val_y = None
        if validation is not None:
            val_encoded = self._encode(np.asarray(validation[0],
                                                  dtype=np.float32))
            val_y = np.asarray(validation[1], dtype=np.float64)

        # Normalizing the step by the mean squared feature magnitude makes
        # the per-sample correction fraction ~ learning_rate, independent
        # of d and the tanh saturation level.
        feature_power = max(float(np.mean(encoded ** 2)), 1e-12)
        step = self.learning_rate / (self.dimension * feature_power)
        for _ in range(iterations):
            order = self._rng.permutation(len(y)) if shuffle \
                else np.arange(len(y))
            squared_error = 0.0
            for start in range(0, len(y), self.chunk_size):
                idx = order[start:start + self.chunk_size]
                chunk = encoded[idx]
                targets = y[idx]
                predictions = (
                    chunk @ self.model_hypervector / self.dimension
                    + self.intercept
                )
                residuals = targets - predictions
                squared_error += float(np.square(residuals).sum())
                self.model_hypervector += (
                    step * self.dimension * (residuals @ chunk)
                )
            self.history.train_mse.append(squared_error / len(y))
            if val_encoded is not None:
                val_pred = (
                    val_encoded @ self.model_hypervector / self.dimension
                    + self.intercept
                )
                self.history.validation_mse.append(
                    float(np.mean((val_y - val_pred) ** 2))
                )
        return self.history

    def fit_ridge(self, x: np.ndarray, y: np.ndarray,
                  regularization: float = 0.1) -> "HDCRegressor":
        """Closed-form (kernel ridge) fit — the offline alternative.

        Solves the dual ridge problem on the encoded features, exact for
        the same model class the iterative rule approaches.  Cost is
        ``O(num_samples^2 * d)`` — fine for a few thousand samples.

        Args:
            x: Samples ``(num_samples, num_features)``.
            y: Continuous targets.
            regularization: Ridge penalty ``lambda``.
        """
        if regularization <= 0:
            raise ValueError(
                f"regularization must be > 0, got {regularization}"
            )
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected 2-D samples, got shape {x.shape}")
        if len(x) != len(y):
            raise ValueError(f"{len(x)} samples but {len(y)} targets")
        encoded = self._encode(x)
        self.intercept = float(y.mean())
        centered = y - self.intercept
        kernel = encoded @ encoded.T / self.dimension
        alpha = np.linalg.solve(
            kernel + regularization * np.eye(len(y)), centered,
        )
        self.model_hypervector = encoded.T @ alpha
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Continuous predictions, shape ``(num_samples,)``."""
        if self.model_hypervector is None:
            raise RuntimeError("model has not been trained; call fit() first")
        encoded = self._encode(np.asarray(x, dtype=np.float32))
        return (
            encoded @ self.model_hypervector / self.dimension
            + self.intercept
        ).astype(np.float64)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2 (1.0 = perfect)."""
        y = np.asarray(y, dtype=np.float64)
        predictions = self.predict(x)
        if len(predictions) != len(y):
            raise ValueError(f"{len(predictions)} predictions but {len(y)} targets")
        residual = float(np.square(y - predictions).sum())
        total = float(np.square(y - y.mean()).sum())
        if total == 0.0:
            return 1.0 if residual == 0.0 else 0.0
        return 1.0 - residual / total

    def _encode(self, x: np.ndarray) -> np.ndarray:
        if x.ndim == 1:
            x = x[None, :]
        if self.encoder is None:
            if self.input_scale is None:
                self.input_scale = 1.0 / np.sqrt(x.shape[1])
            self.encoder = NonlinearEncoder(
                num_features=x.shape[1], dimension=self.dimension,
                seed=self._rng, phase=True,
            )
        scale = self.input_scale if self.input_scale is not None else 1.0
        return self.encoder.encode(x * scale).astype(np.float64)
