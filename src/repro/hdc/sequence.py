"""Sequence encoding with binding and permutation (HDC completeness).

The paper's related work spans HDC applications beyond tabular
classification — DNA pattern matching (GenieHD), gesture sequences —
which rest on two operators this module adds to the library:

- **binding** (elementwise multiplication): associates two hypervectors
  into one dissimilar to both; self-inverse for bipolar vectors;
- **permutation** (cyclic shift ``rho``): encodes *position*, so the
  sequence "AB" binds to ``rho(A) * B`` and differs from "BA".

:class:`SequenceEncoder` composes them into the classic n-gram sequence
encoding: each symbol gets a random bipolar item hypervector; an n-gram
is the binding of successively-permuted item vectors; a sequence is the
bundle of its n-grams.  Similar sequences (sharing n-grams) encode to
similar hypervectors, so the existing :class:`~repro.hdc.model.HDCClassifier`
classifies symbol sequences unchanged — and, because the encoding output
is just a ``d``-vector, the Edge TPU similarity-search path applies.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SequenceEncoder", "bind", "permute"]


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two hypervectors elementwise (``a * b``).

    For bipolar inputs binding is its own inverse:
    ``bind(bind(a, b), b) == a``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[-1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[-1]} vs {b.shape[-1]}"
        )
    return a * b


def permute(hv: np.ndarray, shifts: int = 1) -> np.ndarray:
    """The permutation operator ``rho``: cyclic shift along the last axis.

    Permutation preserves norms but decorrelates: ``rho(x)`` is nearly
    orthogonal to ``x`` for random ``x``, which is what makes it usable
    as a position marker.
    """
    return np.roll(np.asarray(hv), shifts, axis=-1)


class SequenceEncoder:
    """n-gram sequence encoder over a finite symbol alphabet.

    The encoding of a sequence ``s`` is::

        E(s) = sum over i of  rho^{n-1}(I[s_i]) * rho^{n-2}(I[s_i+1])
                              * ... * I[s_i+n-1]

    with random bipolar item hypervectors ``I`` and cyclic-shift
    permutation ``rho``.

    Args:
        alphabet_size: Number of distinct symbols.
        dimension: Hypervector width ``d``.
        ngram: n-gram length (3 is the classic choice for text/DNA).
        seed: Seed for the item hypervectors.
    """

    def __init__(self, alphabet_size: int, dimension: int = 10_000,
                 ngram: int = 3,
                 seed: np.random.Generator | int | None = None):
        if alphabet_size < 2:
            raise ValueError(f"alphabet_size must be >= 2, got {alphabet_size}")
        if ngram < 1:
            raise ValueError(f"ngram must be >= 1, got {ngram}")
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        self.alphabet_size = alphabet_size
        self.dimension = dimension
        self.ngram = ngram
        rng = seed if isinstance(seed, np.random.Generator) \
            else np.random.default_rng(seed)
        self.item_hypervectors = np.where(
            rng.random((alphabet_size, dimension)) < 0.5, -1.0, 1.0
        ).astype(np.float32)
        # Precompute each item vector at every permutation depth used by
        # the n-gram window, so encoding is pure gathers + products.
        self._shifted = np.stack([
            np.roll(self.item_hypervectors, self.ngram - 1 - pos, axis=1)
            for pos in range(self.ngram)
        ])  # (ngram, alphabet, dimension)

    def encode(self, sequence: np.ndarray) -> np.ndarray:
        """Encode one symbol sequence into a ``(dimension,)`` hypervector.

        Args:
            sequence: 1-D integer array of symbols in
                ``[0, alphabet_size)``; must be at least ``ngram`` long.
        """
        sequence = np.asarray(sequence, dtype=np.int64)
        if sequence.ndim != 1:
            raise ValueError(f"expected a 1-D sequence, got shape {sequence.shape}")
        if len(sequence) < self.ngram:
            raise ValueError(
                f"sequence of length {len(sequence)} shorter than "
                f"ngram={self.ngram}"
            )
        if sequence.min() < 0 or sequence.max() >= self.alphabet_size:
            raise ValueError(
                f"symbols out of range [0, {self.alphabet_size})"
            )
        windows = len(sequence) - self.ngram + 1
        # grams[w] = product over pos of shifted[pos][sequence[w + pos]]
        grams = np.ones((windows, self.dimension), dtype=np.float32)
        for pos in range(self.ngram):
            grams *= self._shifted[pos][sequence[pos:pos + windows]]
        return grams.sum(axis=0)

    def encode_batch(self, sequences: list) -> np.ndarray:
        """Encode many sequences; returns ``(len(sequences), dimension)``."""
        if not len(sequences):
            raise ValueError("no sequences to encode")
        return np.stack([self.encode(seq) for seq in sequences])
