"""OnlineHD-style adaptive training (extension beyond the paper).

The paper's update rule adds/subtracts a fixed ``lr * E``.  OnlineHD
(Hernandez-Cane et al., DAC 2021 — the paper's reference [17]) scales
each update by *how wrong* the model was, which converges in fewer
passes — attractive for exactly the host-CPU update phase this paper
optimizes.  We include it as the natural extension the paper's related
work points at:

    ``C_true += lr * (1 - delta_true) * E``
    ``C_pred -= lr * (1 - delta_pred) * E``

where ``delta`` is cosine similarity in ``[-1, 1]`` (so confident
mistakes produce large corrections and near-misses small ones).
"""

from __future__ import annotations

import numpy as np

from repro.hdc.model import HDCClassifier

__all__ = ["AdaptiveHDCClassifier"]


class AdaptiveHDCClassifier(HDCClassifier):
    """HDC classifier with similarity-scaled (OnlineHD-style) updates.

    Accepts the same constructor arguments as :class:`HDCClassifier`.
    Only the per-pass update rule differs; inference is identical.
    """

    def _train_pass(self, hypervectors: np.ndarray,
                    y: np.ndarray) -> tuple[int, int]:
        classes = self.class_hypervectors
        lr = self.learning_rate
        correct = 0
        updates = 0
        eps = 1e-12
        for start in range(0, len(y), self.chunk_size):
            chunk = hypervectors[start:start + self.chunk_size]
            labels = y[start:start + self.chunk_size]
            # Cosine similarities for the adaptive weights.
            class_norms = np.linalg.norm(classes, axis=1)
            chunk_norms = np.linalg.norm(chunk, axis=1)
            sims = (chunk @ classes.T) / np.maximum(
                np.outer(chunk_norms, class_norms), eps
            )
            predictions = np.argmax(sims, axis=1)
            wrong = predictions != labels
            correct += int(len(labels) - wrong.sum())
            rows = np.nonzero(wrong)[0]
            for row in rows:
                hv = chunk[row]
                true_label = labels[row]
                predicted = predictions[row]
                weight_true = 1.0 - sims[row, true_label]
                weight_pred = 1.0 - sims[row, predicted]
                classes[true_label] += lr * weight_true * hv
                classes[predicted] -= lr * weight_pred * hv
                updates += 1
        return correct, updates
