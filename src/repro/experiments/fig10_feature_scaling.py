"""Fig. 10: encoding speedup vs input feature count.

The paper constructs synthetic datasets with 20 to 700 features and
measures the Edge TPU encoding speedup over the CPU baseline: ~1.06x at
20 features rising to ~8.25x at 700.  The mechanism: per-sample TPU cost
is dominated by fixed terms (USB transfer of the d-wide encoded output,
dispatch overhead) while CPU cost grows with ``n * d`` — so wide inputs
amortize the accelerator's overheads.

This is the explanation for the PAMAP2 (27 features) counterexample,
and for the paper's decision to disable bagging's feature sampling
(shrinking ``n`` pushes datasets toward the flat end of this curve).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.runtime import CostModel

__all__ = ["FeatureScalingPoint", "format_result", "run"]

FEATURE_COUNTS = (20, 50, 100, 200, 300, 400, 500, 600, 700)
_NUM_SAMPLES = 10_000
_DIMENSION = 10_000


@dataclass(frozen=True)
class FeatureScalingPoint:
    """One point of the Fig. 10 curve.

    Attributes:
        num_features: Synthetic input width ``n``.
        cpu_seconds: Modeled CPU encoding time.
        tpu_seconds: Modeled Edge TPU encoding time.
    """

    num_features: int
    cpu_seconds: float
    tpu_seconds: float

    @property
    def speedup(self) -> float:
        """CPU / TPU encoding time."""
        return self.cpu_seconds / self.tpu_seconds


def run(feature_counts: tuple = FEATURE_COUNTS,
        num_samples: int = _NUM_SAMPLES, dimension: int = _DIMENSION,
        cost_model: CostModel | None = None) -> list[FeatureScalingPoint]:
    """Evaluate the encoding-speedup curve."""
    cm = cost_model if cost_model is not None else CostModel()
    return [
        FeatureScalingPoint(
            num_features=n,
            cpu_seconds=cm.cpu_encode_seconds(num_samples, n, dimension),
            tpu_seconds=cm.tpu_encode_seconds(num_samples, n, dimension),
        )
        for n in feature_counts
    ]


def format_result(points: list[FeatureScalingPoint]) -> str:
    headers = ["features", "CPU (s)", "TPU (s)", "speedup"]
    rows = [
        [p.num_features, p.cpu_seconds, p.tpu_seconds, p.speedup]
        for p in points
    ]
    return format_table(
        headers, rows,
        title="Fig. 10 — Edge TPU encoding speedup vs feature count",
    )
