"""Fig. 5: training-runtime breakdown — CPU vs TPU vs TPU_B.

For each Table-I dataset the paper stacks encoding / class-hypervector
update / TPU-model-generation time for three settings, normalized to the
CPU baseline within each dataset:

- **CPU**: float HDC entirely on the host CPU (20 iterations);
- **TPU**: the framework without bagging — encoding on the Edge TPU;
- **TPU_B**: the full framework — bagging (M=4, d'=2500, I'=6,
  alpha=0.6) plus Edge TPU encoding.

This driver evaluates the analytic cost models at the *full* Table-I
shapes (no data materialization needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import specs
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig
from repro.runtime import CostModel, HdcTrainingConfig, PhaseBreakdown, Workload

__all__ = ["TrainingRuntimeResult", "format_result", "run"]


@dataclass(frozen=True)
class TrainingRuntimeResult:
    """Per-dataset phase breakdowns for the three settings.

    Attributes:
        dataset: Dataset name.
        cpu: CPU-baseline breakdown (seconds).
        tpu: TPU-without-bagging breakdown.
        tpu_bagged: Full-framework breakdown.
    """

    dataset: str
    cpu: PhaseBreakdown
    tpu: PhaseBreakdown
    tpu_bagged: PhaseBreakdown

    @property
    def tpu_speedup(self) -> float:
        """CPU total / TPU total."""
        return self.tpu.speedup_over(self.cpu)

    @property
    def tpu_bagged_speedup(self) -> float:
        """CPU total / TPU_B total (the paper's headline per-dataset number)."""
        return self.tpu_bagged.speedup_over(self.cpu)

    @property
    def encoding_speedup(self) -> float:
        """CPU encode / TPU encode (paper: up to 9.37x on MNIST)."""
        return self.cpu.encode / self.tpu.encode

    @property
    def update_speedup(self) -> float:
        """CPU update / TPU_B update (paper: up to 4.74x)."""
        return self.cpu.update / self.tpu_bagged.update


def run(config: HdcTrainingConfig | None = None,
        bagging: BaggingConfig | None = None,
        cost_model: CostModel | None = None) -> list[TrainingRuntimeResult]:
    """Evaluate the three settings for all five Table-I datasets."""
    config = config if config is not None else HdcTrainingConfig()
    bagging = bagging if bagging is not None else BaggingConfig(
        dimension=config.dimension,
    )
    cm = cost_model if cost_model is not None else CostModel()
    results = []
    for spec in specs():
        workload = Workload.from_spec(spec)
        results.append(TrainingRuntimeResult(
            dataset=spec.name,
            cpu=cm.cpu_training(workload, config),
            tpu=cm.tpu_training(workload, config),
            tpu_bagged=cm.tpu_bagged_training(workload, config, bagging),
        ))
    return results


def format_result(results: list[TrainingRuntimeResult]) -> str:
    """The Fig. 5 bars as normalized numbers (CPU total = 1.0)."""
    headers = [
        "dataset", "setting", "encode", "update", "modelgen", "total",
        "speedup",
    ]
    rows = []
    for result in results:
        base = result.cpu.total
        for label, breakdown in (
            ("CPU", result.cpu), ("TPU", result.tpu),
            ("TPU_B", result.tpu_bagged),
        ):
            rows.append([
                result.dataset, label,
                breakdown.encode / base, breakdown.update / base,
                breakdown.modelgen / base, breakdown.total / base,
                base / breakdown.total,
            ])
    return format_table(
        headers, rows,
        title="Fig. 5 — training runtime, normalized to the CPU baseline",
    )
