"""Plain-text table formatting shared by the experiment drivers."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None, float_format: str = "{:.3f}"
                 ) -> str:
    """Render rows as an aligned text table.

    Args:
        headers: Column names.
        rows: Row values; floats are formatted with ``float_format``,
            everything else with ``str``.
        title: Optional title line.
        float_format: Format spec applied to float cells.

    Returns:
        The table as a single string.
    """
    if not headers:
        raise ValueError("need at least one column")

    def render(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} columns"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in rendered)) if rendered
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
