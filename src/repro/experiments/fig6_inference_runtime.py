"""Fig. 6: inference-runtime comparison — CPU vs TPU vs TPU_B.

Per-dataset inference time over the test split, normalized to the CPU
baseline.  The TPU runs at the real-time batch size (1 sample per
invocation); the fused bagged model has exactly the same layer shapes as
the non-bagged model, so TPU and TPU_B coincide by construction — the
paper's "no extra overhead" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import specs
from repro.experiments.report import format_table
from repro.runtime import CostModel, HdcTrainingConfig, Workload

__all__ = ["InferenceRuntimeResult", "format_result", "run"]


@dataclass(frozen=True)
class InferenceRuntimeResult:
    """Per-dataset inference times (seconds over the full test split).

    Attributes:
        dataset: Dataset name.
        cpu_seconds: Float inference on the host CPU (batched).
        tpu_seconds: Quantized inference on the Edge TPU (batch 1).
        tpu_bagged_seconds: Same, with the fused bagged model (equal to
            ``tpu_seconds`` by construction).
    """

    dataset: str
    cpu_seconds: float
    tpu_seconds: float
    tpu_bagged_seconds: float

    @property
    def speedup(self) -> float:
        """CPU / TPU inference time (the paper's Fig. 6 bar ratio)."""
        return self.cpu_seconds / self.tpu_seconds


def run(config: HdcTrainingConfig | None = None,
        cost_model: CostModel | None = None) -> list[InferenceRuntimeResult]:
    """Evaluate inference runtimes for all five Table-I datasets."""
    config = config if config is not None else HdcTrainingConfig()
    cm = cost_model if cost_model is not None else CostModel()
    results = []
    for spec in specs():
        workload = Workload.from_spec(spec)
        tpu = cm.tpu_inference(workload, config)
        results.append(InferenceRuntimeResult(
            dataset=spec.name,
            cpu_seconds=cm.cpu_inference(workload, config),
            tpu_seconds=tpu,
            # The fused model's layers are (n, d) and (d, k) — identical
            # shapes, identical modeled time.
            tpu_bagged_seconds=tpu,
        ))
    return results


def format_result(results: list[InferenceRuntimeResult]) -> str:
    """The Fig. 6 bars as normalized numbers (CPU = 1.0)."""
    headers = ["dataset", "CPU", "TPU", "TPU_B", "speedup"]
    rows = [
        [
            result.dataset, 1.0,
            result.tpu_seconds / result.cpu_seconds,
            result.tpu_bagged_seconds / result.cpu_seconds,
            result.speedup,
        ]
        for result in results
    ]
    return format_table(
        headers, rows,
        title="Fig. 6 — inference runtime, normalized to the CPU baseline",
    )
