"""Fig. 7: inference accuracy across the three framework settings.

Trains real models on the dataset surrogates and measures:

- **CPU**: float HDC, fully trained (the accuracy reference);
- **TPU**: the same model after int8 post-training quantization,
  executed by the (bit-exact) Edge TPU path;
- **TPU_B**: the bagged ensemble — M narrow sub-models fused into one
  full-width model — quantized and executed the same way.

The paper's claims: quantized accuracy is similar to float, and the
bagged model is similar to (sometimes better than) the fully-trained
full model despite its much cheaper training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import load
from repro.data.datasets import TABLE_I
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.hdc import BaggingConfig, BaggingHDCTrainer, HDCClassifier
from repro.nn import from_classifier, from_fused
from repro.tflite import Interpreter, convert

__all__ = ["AccuracyResult", "format_result", "run"]

DATASETS = tuple(TABLE_I)
_CALIBRATION = 256


@dataclass(frozen=True)
class AccuracyResult:
    """Per-dataset accuracies for the three settings.

    Attributes:
        dataset: Dataset name.
        cpu: Float HDC accuracy.
        tpu: int8-quantized full-model accuracy.
        tpu_bagged: int8-quantized fused bagged-model accuracy.
    """

    dataset: str
    cpu: float
    tpu: float
    tpu_bagged: float

    @property
    def quantization_drop(self) -> float:
        """Accuracy lost to int8 quantization (can be negative)."""
        return self.cpu - self.tpu

    @property
    def bagging_drop(self) -> float:
        """Accuracy difference bagged vs full quantized model."""
        return self.tpu - self.tpu_bagged


def run(scale: ExperimentScale = DEFAULT,
        datasets: tuple = DATASETS) -> list[AccuracyResult]:
    """Train, quantize and evaluate each dataset at the given scale."""
    results = []
    for name in datasets:
        ds = load(name, max_samples=scale.max_samples, seed=scale.seed)
        ds = ds.normalized()

        full = HDCClassifier(dimension=scale.dimension, seed=scale.seed)
        full.fit(ds.train_x, ds.train_y, iterations=scale.iterations,
                 num_classes=ds.num_classes)
        cpu_accuracy = full.score(ds.test_x, ds.test_y)

        quantized = convert(from_classifier(full),
                            ds.train_x[:_CALIBRATION])
        tpu_accuracy = float(
            (Interpreter(quantized).predict(ds.test_x) == ds.test_y).mean()
        )

        bagging = BaggingConfig(
            num_models=4, dimension=scale.dimension,
            iterations=scale.bagging_iterations, dataset_ratio=0.6,
        )
        trainer = BaggingHDCTrainer(bagging, seed=scale.seed)
        trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
        fused = trainer.fuse()
        fused_quantized = convert(from_fused(fused),
                                  ds.train_x[:_CALIBRATION])
        bagged_accuracy = float(
            (Interpreter(fused_quantized).predict(ds.test_x)
             == ds.test_y).mean()
        )

        results.append(AccuracyResult(
            dataset=name, cpu=cpu_accuracy, tpu=tpu_accuracy,
            tpu_bagged=bagged_accuracy,
        ))
    return results


def format_result(results: list[AccuracyResult]) -> str:
    headers = ["dataset", "CPU (float)", "TPU (int8)", "TPU_B (int8)",
               "quant drop", "bagging drop"]
    rows = [
        [r.dataset, r.cpu, r.tpu, r.tpu_bagged, r.quantization_drop,
         r.bagging_drop]
        for r in results
    ]
    return format_table(
        headers, rows,
        title="Fig. 7 — inference accuracy per framework setting",
    )
