"""Fig. 9: sub-model training iterations sweep on ISOLET.

With the sampling ratios fixed at the paper's choices (alpha = 0.6,
beta disabled), the sub-model iteration count ``I'`` is swept from 3 to
8.  Only the host-CPU update phase depends on ``I'``; the paper picks 6
iterations (4-6 save ~20% runtime vs 8 with similar accuracy).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import TABLE_I, load
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.runtime import CostModel, HdcTrainingConfig, Workload

__all__ = ["IterationPoint", "format_result", "run"]

ITERATIONS = (3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class IterationPoint:
    """One sweep point.

    Attributes:
        iterations: Sub-model training passes ``I'``.
        accuracy: Fused-model test accuracy.
        normalized_runtime: Modeled recurring training time (encoding +
            update, excluding the sweep-invariant one-time model
            generation) over the time at the largest swept iteration
            count.
        update_seconds: Modeled host update-phase seconds (the only
            phase that changes, per the paper).
    """

    iterations: int
    accuracy: float
    normalized_runtime: float
    update_seconds: float


def run(scale: ExperimentScale = DEFAULT,
        iterations: tuple = ITERATIONS,
        cost_model: CostModel | None = None) -> list[IterationPoint]:
    """Sweep sub-model iterations on ISOLET."""
    cm = cost_model if cost_model is not None else CostModel()
    ds = load("isolet", max_samples=scale.max_samples,
              seed=scale.seed).normalized()
    workload = Workload.from_spec(TABLE_I["isolet"])
    config = HdcTrainingConfig(dimension=10_000, iterations=20)

    breakdowns = {}
    accuracies = {}
    for count in iterations:
        bagging = BaggingConfig(num_models=4, dimension=scale.dimension,
                                iterations=count, dataset_ratio=0.6)
        trainer = BaggingHDCTrainer(bagging, seed=scale.seed)
        trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
        accuracies[count] = trainer.fuse().score(ds.test_x, ds.test_y)
        modeled = BaggingConfig(num_models=4, dimension=10_000,
                                iterations=count, dataset_ratio=0.6)
        breakdowns[count] = cm.tpu_bagged_training(workload, config, modeled)

    largest = breakdowns[max(iterations)]
    reference = largest.encode + largest.update
    return [
        IterationPoint(
            iterations=count,
            accuracy=accuracies[count],
            normalized_runtime=(
                (breakdowns[count].encode + breakdowns[count].update)
                / reference
            ),
            update_seconds=breakdowns[count].update,
        )
        for count in iterations
    ]


def format_result(points: list[IterationPoint]) -> str:
    headers = ["iterations", "accuracy", "runtime (norm.)", "update (s)"]
    rows = [
        [p.iterations, p.accuracy, p.normalized_runtime, p.update_seconds]
        for p in points
    ]
    return format_table(
        headers, rows,
        title="Fig. 9 — sub-model iteration sweep (ISOLET, alpha=0.6)",
    )
