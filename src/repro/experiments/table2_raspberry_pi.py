"""Table II: the Edge TPU framework vs a Raspberry Pi 3.

The paper compares its framework (bagged training + Edge TPU, hosted on
the laptop CPU) against the same HDC workload running entirely on a
Raspberry Pi 3 — an embedded CPU with "similar average power
consumption" to the accelerator.  Reported as per-dataset training and
inference time ratios (Pi time / framework time).

Paper values: training 15.6x-23.6x (avg 19.4x), inference 6.8x-11.4x
(avg 8.9x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import specs
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig
from repro.platforms import EnergyReport, RaspberryPi3
from repro.runtime import CostModel, HdcTrainingConfig, Workload

__all__ = ["PiComparisonResult", "format_result", "run"]


@dataclass(frozen=True)
class PiComparisonResult:
    """Per-dataset Pi-vs-framework ratios.

    Attributes:
        dataset: Dataset name.
        training_ratio: Pi training time / framework (TPU_B) training time.
        inference_ratio: Pi inference time / framework inference time.
        pi_training_energy_j: Pi training energy (power x time).
        framework_training_energy_j: Framework training energy, charging
            the host CPU share plus the device's active power.
    """

    dataset: str
    training_ratio: float
    inference_ratio: float
    pi_training_energy_j: float
    framework_training_energy_j: float


def run(config: HdcTrainingConfig | None = None,
        bagging: BaggingConfig | None = None,
        cost_model: CostModel | None = None) -> list[PiComparisonResult]:
    """Evaluate the Table II comparison for all five datasets."""
    config = config if config is not None else HdcTrainingConfig()
    bagging = bagging if bagging is not None else BaggingConfig(
        dimension=config.dimension,
    )
    cm = cost_model if cost_model is not None else CostModel()
    pi = RaspberryPi3()
    results = []
    for spec in specs():
        workload = Workload.from_spec(spec)
        pi_train = cm.cpu_training(workload, config, platform=pi).total
        pi_infer = cm.cpu_inference(workload, config, platform=pi)
        framework_train = cm.tpu_bagged_training(workload, config,
                                                 bagging).total
        framework_infer = cm.tpu_inference(workload, config)
        pi_energy = EnergyReport("pi3", pi_train, pi.power_w)
        framework_energy = EnergyReport(
            "edge-tpu-framework", framework_train, cm.tpu.power_w,
        )
        results.append(PiComparisonResult(
            dataset=spec.name,
            training_ratio=pi_train / framework_train,
            inference_ratio=pi_infer / framework_infer,
            pi_training_energy_j=pi_energy.joules,
            framework_training_energy_j=framework_energy.joules,
        ))
    return results


def format_result(results: list[PiComparisonResult]) -> str:
    headers = ["dataset", "training x", "inference x", "Pi energy (J)",
               "framework energy (J)"]
    rows = [
        [r.dataset, r.training_ratio, r.inference_ratio,
         r.pi_training_energy_j, r.framework_training_energy_j]
        for r in results
    ]
    mean_train = sum(r.training_ratio for r in results) / len(results)
    mean_infer = sum(r.inference_ratio for r in results) / len(results)
    rows.append(["mean", mean_train, mean_infer, float("nan"), float("nan")])
    return format_table(
        headers, rows,
        title="Table II — Edge TPU framework vs Raspberry Pi 3",
        float_format="{:.1f}",
    )
