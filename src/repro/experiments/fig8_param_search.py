"""Fig. 8: bagging sampling-ratio search on ISOLET.

The paper sweeps the dataset sampling ratio ``alpha`` and the feature
sampling ratio ``beta`` (with short 6-iteration sub-model training) and
reports inference accuracy plus training runtime normalized to
``alpha = beta = 1``.  Conclusions reproduced here:

- ``alpha = 0.6`` cuts training time to ~70% with no accuracy loss;
- feature sampling does not buy enough runtime to justify its accuracy
  cost once ``beta`` drops to ~0.6, so the paper disables it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import TABLE_I, load
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.hdc import BaggingConfig, BaggingHDCTrainer
from repro.runtime import CostModel, HdcTrainingConfig, Workload

__all__ = ["RatioPoint", "format_result", "run"]

RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass(frozen=True)
class RatioPoint:
    """One sweep point.

    Attributes:
        parameter: ``"alpha"`` (dataset ratio) or ``"beta"`` (feature
            ratio).
        ratio: The swept value (the other ratio is held at 1.0).
        accuracy: Fused-model test accuracy at this setting.
        normalized_runtime: Modeled recurring training time (encoding +
            update; the one-time model-generation cost is
            sweep-invariant and excluded) over the time at ratio 1.0,
            at the full-scale ISOLET shape.
    """

    parameter: str
    ratio: float
    accuracy: float
    normalized_runtime: float


def _modeled_training_seconds(ratio: float, parameter: str,
                              scale: ExperimentScale,
                              cost_model: CostModel) -> float:
    workload = Workload.from_spec(TABLE_I["isolet"])
    config = HdcTrainingConfig(dimension=10_000, iterations=20)
    bagging = BaggingConfig(
        num_models=4, dimension=10_000,
        iterations=scale.bagging_iterations,
        dataset_ratio=ratio if parameter == "alpha" else 1.0,
        feature_ratio=ratio if parameter == "beta" else 1.0,
    )
    breakdown = cost_model.tpu_bagged_training(workload, config, bagging)
    return breakdown.encode + breakdown.update


def _measured_accuracy(ratio: float, parameter: str,
                       scale: ExperimentScale, ds) -> float:
    bagging = BaggingConfig(
        num_models=4, dimension=scale.dimension,
        iterations=scale.bagging_iterations,
        dataset_ratio=ratio if parameter == "alpha" else 1.0,
        feature_ratio=ratio if parameter == "beta" else 1.0,
    )
    trainer = BaggingHDCTrainer(bagging, seed=scale.seed)
    trainer.fit(ds.train_x, ds.train_y, num_classes=ds.num_classes)
    return trainer.fuse().score(ds.test_x, ds.test_y)


def run(scale: ExperimentScale = DEFAULT,
        ratios: tuple = RATIOS,
        cost_model: CostModel | None = None) -> list[RatioPoint]:
    """Sweep alpha and beta on ISOLET."""
    cm = cost_model if cost_model is not None else CostModel()
    ds = load("isolet", max_samples=scale.max_samples,
              seed=scale.seed).normalized()
    baseline = {
        parameter: _modeled_training_seconds(1.0, parameter, scale, cm)
        for parameter in ("alpha", "beta")
    }
    points = []
    for parameter in ("alpha", "beta"):
        for ratio in ratios:
            points.append(RatioPoint(
                parameter=parameter,
                ratio=ratio,
                accuracy=_measured_accuracy(ratio, parameter, scale, ds),
                normalized_runtime=(
                    _modeled_training_seconds(ratio, parameter, scale, cm)
                    / baseline[parameter]
                ),
            ))
    return points


def format_result(points: list[RatioPoint]) -> str:
    headers = ["parameter", "ratio", "accuracy", "runtime (norm.)"]
    rows = [
        [p.parameter, p.ratio, p.accuracy, p.normalized_runtime]
        for p in points
    ]
    return format_table(
        headers, rows,
        title="Fig. 8 — bagging sampling-ratio search (ISOLET)",
    )
