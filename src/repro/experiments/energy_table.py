"""Energy comparison across platforms (extension of Table II).

The paper frames the Raspberry Pi comparison as "similar average power
consumption" but reports only time ratios.  This experiment makes the
energy side explicit: modeled training/inference *energy* per dataset on
the host mobile CPU, the Raspberry Pi 3, and the co-design framework
(host CPU share for updates plus the ~2 W Edge TPU for encoding and
inference).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import specs
from repro.experiments.report import format_table
from repro.hdc import BaggingConfig
from repro.platforms import MobileCpu, RaspberryPi3, energy_joules
from repro.runtime import CostModel, HdcTrainingConfig, Workload

__all__ = ["EnergyRow", "format_result", "run"]


@dataclass(frozen=True)
class EnergyRow:
    """Per-dataset modeled energy (joules).

    Attributes:
        dataset: Dataset name.
        host_training_j: Full training on the mobile host CPU.
        pi_training_j: Full training on the Raspberry Pi 3.
        framework_training_j: The co-design framework — update phase on
            the host CPU, encoding on the Edge TPU (its active power),
            model generation on the host.
        host_inference_j: Test-set inference on the host CPU.
        pi_inference_j: Test-set inference on the Pi.
        framework_inference_j: Test-set inference on the Edge TPU.
    """

    dataset: str
    host_training_j: float
    pi_training_j: float
    framework_training_j: float
    host_inference_j: float
    pi_inference_j: float
    framework_inference_j: float

    @property
    def training_efficiency_vs_pi(self) -> float:
        """Pi training energy over framework training energy."""
        return self.pi_training_j / self.framework_training_j


def run(config: HdcTrainingConfig | None = None,
        bagging: BaggingConfig | None = None,
        cost_model: CostModel | None = None) -> list[EnergyRow]:
    """Evaluate modeled energy for all five Table-I datasets."""
    config = config if config is not None else HdcTrainingConfig()
    bagging = bagging if bagging is not None else BaggingConfig(
        dimension=config.dimension,
    )
    cm = cost_model if cost_model is not None else CostModel()
    host = MobileCpu()
    pi = RaspberryPi3()
    tpu_power = cm.tpu.power_w
    rows = []
    for spec in specs():
        workload = Workload.from_spec(spec)
        host_train = cm.cpu_training(workload, config).total
        pi_train = cm.cpu_training(workload, config, platform=pi).total
        framework = cm.tpu_bagged_training(workload, config, bagging)
        framework_train_j = (
            energy_joules(tpu_power, framework.encode)
            + energy_joules(host.power_w, framework.update)
            + energy_joules(host.power_w, framework.modelgen)
        )
        host_infer = cm.cpu_inference(workload, config)
        pi_infer = cm.cpu_inference(workload, config, platform=pi)
        framework_infer = cm.tpu_inference(workload, config)
        rows.append(EnergyRow(
            dataset=spec.name,
            host_training_j=energy_joules(host.power_w, host_train),
            pi_training_j=energy_joules(pi.power_w, pi_train),
            framework_training_j=framework_train_j,
            host_inference_j=energy_joules(host.power_w, host_infer),
            pi_inference_j=energy_joules(pi.power_w, pi_infer),
            framework_inference_j=energy_joules(tpu_power, framework_infer),
        ))
    return rows


def format_result(rows: list[EnergyRow]) -> str:
    headers = ["dataset", "host train (J)", "Pi train (J)",
               "framework train (J)", "host inf (J)", "Pi inf (J)",
               "framework inf (J)"]
    table = [
        [r.dataset, r.host_training_j, r.pi_training_j,
         r.framework_training_j, r.host_inference_j, r.pi_inference_j,
         r.framework_inference_j]
        for r in rows
    ]
    return format_table(
        headers, table,
        title="Energy — modeled joules per platform (extension)",
        float_format="{:.1f}",
    )
