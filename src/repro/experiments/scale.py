"""Experiment scale presets.

Accuracy experiments retrain HDC models, which at the paper's full scale
(d = 10,000, up to 80k samples) takes minutes per dataset in numpy.  The
scale object trades sample count and hypervector width for speed while
preserving every qualitative result; runtime experiments are analytic
and always run at full Table-I scale regardless.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT", "ExperimentScale", "PAPER", "QUICK"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs for accuracy-experiment cost.

    Attributes:
        name: Preset name.
        max_samples: Cap on materialized samples per dataset.
        dimension: Hypervector width ``d`` used for accuracy runs.
        iterations: Full-model training passes (the paper uses 20).
        bagging_iterations: Sub-model passes with bagging (paper: 6).
        seed: Base seed for data and models.
    """

    name: str
    max_samples: int | None
    dimension: int
    iterations: int
    bagging_iterations: int
    seed: int = 7

    def __post_init__(self) -> None:
        if self.dimension < 4:
            raise ValueError(f"dimension too small: {self.dimension}")
        if self.iterations < 1 or self.bagging_iterations < 1:
            raise ValueError("iteration counts must be >= 1")


QUICK = ExperimentScale(
    name="quick", max_samples=1200, dimension=2048, iterations=8,
    bagging_iterations=3,
)

DEFAULT = ExperimentScale(
    name="default", max_samples=4000, dimension=4096, iterations=12,
    bagging_iterations=5,
)

PAPER = ExperimentScale(
    name="paper", max_samples=None, dimension=10_000, iterations=20,
    bagging_iterations=6,
)

PRESETS = {scale.name: scale for scale in (QUICK, DEFAULT, PAPER)}
