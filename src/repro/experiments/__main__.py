"""Command-line entry point: run any paper experiment from the shell.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig10
    python -m repro.experiments all --scale quick
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    energy_table,
    fig4_convergence,
    fig5_training_runtime,
    fig6_inference_runtime,
    fig7_accuracy,
    fig8_param_search,
    fig9_iterations,
    fig10_feature_scaling,
    table1_datasets,
    table2_raspberry_pi,
)
from repro.experiments.scale import PRESETS

_SCALED = {"fig4", "fig7", "fig8", "fig9"}
_EXPERIMENTS = {
    "energy": energy_table,
    "table1": table1_datasets,
    "fig4": fig4_convergence,
    "fig5": fig5_training_runtime,
    "fig6": fig6_inference_runtime,
    "fig7": fig7_accuracy,
    "table2": table2_raspberry_pi,
    "fig8": fig8_param_search,
    "fig9": fig9_iterations,
    "fig10": fig10_feature_scaling,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale", choices=sorted(PRESETS), default="default",
        help="accuracy-experiment scale (runtime experiments always use "
             "full Table-I shapes)",
    )
    args = parser.parse_args(argv)
    scale = PRESETS[args.scale]

    names = sorted(_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        module = _EXPERIMENTS[name]
        if name in _SCALED:
            result = module.run(scale=scale)
        else:
            result = module.run()
        print(module.format_result(result))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
