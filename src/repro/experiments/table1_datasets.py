"""Table I: the dataset inventory.

Prints the five evaluation datasets with their shapes, as in the paper,
plus the surrogate-generation parameters used by this reproduction.
"""

from __future__ import annotations

from repro.data import specs
from repro.experiments.report import format_table

__all__ = ["format_result", "run"]


def run() -> list:
    """Return the Table-I specs (paper row order)."""
    return specs()


def format_result(rows) -> str:
    headers = ["dataset", "# samples", "# features", "# classes",
               "description"]
    table = [
        [spec.name.upper(), spec.num_samples, spec.num_features,
         spec.num_classes, spec.description]
        for spec in rows
    ]
    return format_table(headers, table, title="Table I — evaluation datasets")
