"""Fig. 4: training and validation accuracy over training iterations.

The paper trains float HDC on the host CPU for 20 iterations and plots
per-epoch training/validation accuracy for all five datasets, motivating
both the "20 iterations = fully trained" baseline and the later choice
of ~6 iterations for the bagging sub-models (accuracy is already near
its plateau well before 20).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data import load
from repro.data.datasets import TABLE_I
from repro.experiments.report import format_table
from repro.experiments.scale import DEFAULT, ExperimentScale
from repro.hdc import HDCClassifier

__all__ = ["ConvergenceResult", "format_result", "run"]

DATASETS = tuple(TABLE_I)


@dataclass(frozen=True)
class ConvergenceResult:
    """Per-dataset accuracy curves.

    Attributes:
        dataset: Dataset name.
        train_accuracy: Per-iteration training accuracy.
        validation_accuracy: Per-iteration held-out accuracy.
    """

    dataset: str
    train_accuracy: list
    validation_accuracy: list

    @property
    def plateau_iteration(self) -> int:
        """First iteration whose validation accuracy is within 1 point of
        the final value — the paper's justification for short sub-model
        training."""
        final = self.validation_accuracy[-1]
        for index, accuracy in enumerate(self.validation_accuracy):
            if accuracy >= final - 0.01:
                return index + 1
        return len(self.validation_accuracy)


def run(scale: ExperimentScale = DEFAULT,
        datasets: tuple = DATASETS) -> list[ConvergenceResult]:
    """Train each dataset and record the Fig. 4 curves."""
    results = []
    for name in datasets:
        ds = load(name, max_samples=scale.max_samples, seed=scale.seed)
        ds = ds.normalized()
        model = HDCClassifier(dimension=scale.dimension, seed=scale.seed)
        history = model.fit(
            ds.train_x, ds.train_y, iterations=scale.iterations,
            validation=(ds.test_x, ds.test_y),
        )
        results.append(ConvergenceResult(
            dataset=name,
            train_accuracy=list(history.train_accuracy),
            validation_accuracy=list(history.validation_accuracy),
        ))
    return results


def format_result(results: list[ConvergenceResult]) -> str:
    """Render the curves as a table (iterations as columns)."""
    iterations = len(results[0].train_accuracy)
    headers = ["dataset", "curve"] + [f"it{i+1}" for i in range(iterations)]
    rows = []
    for result in results:
        rows.append([result.dataset, "train"] + result.train_accuracy)
        rows.append([result.dataset, "valid"] + result.validation_accuracy)
    return format_table(
        headers, rows,
        title="Fig. 4 — accuracy vs training iteration",
        float_format="{:.3f}",
    )
