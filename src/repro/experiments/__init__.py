"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning a result object and a
``format_result(...)`` producing the text table the benchmarks print.
Accuracy experiments (Figs. 4, 7, 8, 9) train real models on the
synthetic surrogates at a configurable scale; runtime experiments
(Figs. 5, 6, 10 and Table II) evaluate the analytic cost models at the
full Table-I scale.

Command line::

    python -m repro.experiments fig5
    python -m repro.experiments all --scale quick
"""

from repro.experiments.scale import ExperimentScale, QUICK, DEFAULT, PAPER

__all__ = ["DEFAULT", "ExperimentScale", "PAPER", "QUICK"]
