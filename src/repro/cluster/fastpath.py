"""The cluster simulation fast path: chunked intake, deferred math.

After PR 8 the 10⁶-request cluster bench was bound by per-request
Python, not by the modeled kernels: every arrival cost a traffic heap
pop, a `Request` allocation, a router pick, a per-field row append and
a cancel-and-reinsert of the batch dispatch.  This module amortizes
all of it into per-chunk numpy work while leaving every modeled time,
report column and prediction byte-identical to the scalar path (the
contract ``tests/cluster/test_equivalence.py`` pins):

- :class:`FastArrivalPump` pulls merged
  :class:`~repro.cluster.traffic.TrafficChunk` columns, routes each
  chunk in one :meth:`~repro.cluster.router.Router.route_chunk` call,
  bulk-appends every replica's rows
  (:meth:`~repro.cluster.replica._Rows.bulk_append`) and then
  *macro-steps* the engine: consecutive arrivals are processed inline
  — advancing the virtual clock directly — for as long as no other
  pending event would fire first, so the common steady state (arrival
  after arrival with the batch dispatch elided) costs no heap traffic
  at all.  The hand-off rules below make the fired-event order
  provably identical to the scalar one-event-per-arrival pump.
- :class:`DeferredPredictions` collects ``(compiled model, row ids)``
  per dispatched batch and computes *all* predictions after the
  simulation in one vectorized pass.  This is sound because modeled
  latency depends only on the charged row count, never on predicted
  values, and the int8 op chain is exactly integer per row (float64 /
  int64 accumulation), so batch composition cannot change any output
  bit.  When nothing observes per-request state mid-run (no
  autoscaler, no metrics registry, no tiers) the sink also defers the
  per-batch latency bookkeeping (:attr:`DeferredPredictions.full`):
  the dispatch path records only ``(ids, completion)`` and the
  latency scatter, histogram ingest and deadline-miss count all
  happen in one pass at resolve time — bit-identical because
  ``completion - arrival`` is elementwise and
  :meth:`~repro.observability.metrics.LatencyTracker.record_many` is
  a pure order-preserving extend.

Macro-stepping equivalence.  The scalar pump schedules exactly one
arrival event ahead; at arrival *k* it (1) schedules arrival *k+1*
(sequence number ``mark``), then (2) submits *k*, whose dispatch
reschedule allocates newer sequence numbers.  The pump therefore
processes arrival *k+1* inline — without scheduling it — exactly when
the earliest pending event either fires strictly after *k+1*'s
(clamped) time, or ties it with a sequence number ``>= mark`` (i.e. it
was inserted during submit *k*, and the arrival's older ``mark`` would
have beaten it anyway).  Otherwise it yields: arrival *k+1* becomes a
real event, and if submit *k*'s own dispatch landed on the same
instant it is cancel-and-reinserted after the arrival, restoring the
exact ``older-events < arrival < dispatch`` tie order the scalar pump
produces.

Eligibility is decided by :class:`~repro.cluster.cluster.Cluster`
(``ClusterConfig.fast``): the ``least_queue`` policy routes on queue
depths each pick mutates, mixed tenant feature widths have no columnar
chunk form, and non-stock batchers have no inline trigger — those runs
fall back to the scalar pump unchanged.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.cluster import Cluster
    from repro.cluster.replica import _Rows
    from repro.cluster.traffic import MultiTenantTraffic
    from repro.edgetpu.compiler import CompiledModel
    from repro.serving.server import ServeReport

__all__ = ["DeferredPredictions", "FastArrivalPump"]

# Rows per vectorized prediction slice: large enough to amortize the
# Python stage dispatch, small enough to keep the intermediate
# activations cache-resident.
_RESOLVE_SLICE = 8192


class DeferredPredictions:
    """Per-replica sink for post-simulation prediction batches.

    :meth:`~repro.serving.server.InferenceServer._dispatch_columns`
    hands over ``(compiled, ids)`` for every batch it serves on the
    deferred path; :meth:`resolve` then runs each model's fused host
    stages — the same kernels the CPU-fallback path uses, bit-identical
    to the device simulator — over all of its rows at once.

    Args:
        full: Also defer the per-batch latency bookkeeping (scatter,
            histogram ingest, deadline misses).  Only sound when
            nothing reads per-request report state mid-run — the
            cluster enables it exactly when there is no autoscaler, no
            metrics registry and no tier ladder.
    """

    def __init__(self, full: bool = False):
        self.full = full
        # id(compiled) -> (compiled, [id arrays in dispatch order])
        self._groups: dict[int, tuple["CompiledModel", list]] = {}
        # Dispatch-order (ids, completion) pairs, full mode only.
        self._book_ids: list[np.ndarray] = []
        self._book_completions: list[float] = []

    def add(self, compiled: "CompiledModel", ids: np.ndarray) -> None:
        """Record that ``ids`` were served by ``compiled``."""
        group = self._groups.get(id(compiled))
        if group is None:
            self._groups[id(compiled)] = (compiled, [ids])
        else:
            group[1].append(ids)

    def book(self, ids: np.ndarray, completion: float) -> None:
        """Full mode: record one batch's completion for the deferred
        latency bookkeeping (called once per dispatched batch, in
        dispatch order)."""
        self._book_ids.append(ids)
        self._book_completions.append(completion)

    def resolve(self, rows: "_Rows", report: "ServeReport") -> None:
        """Run every deferred computation against the report.

        Predictions scatter into ``report.predictions`` (rows never
        dispatched — drops — keep their ``-1``).  Row order within a
        slice is dispatch order, but every op is per-row exact, so
        grouping is free to differ from the serving batches.  In full
        mode the latency bookkeeping replays in dispatch order too:
        one subtract, one scatter, one histogram extend and one miss
        count, elementwise-identical to the per-batch epilogue.
        """
        features = rows.features
        predictions = report.predictions
        for compiled, blocks in self._groups.values():
            ids = (blocks[0] if len(blocks) == 1
                   else np.concatenate(blocks))
            qparams = compiled.model.input_spec.qparams
            stages = compiled.host_stages()
            output_is_index = compiled.model.output_is_index
            for start in range(0, len(ids), _RESOLVE_SLICE):
                part = ids[start:start + _RESOLVE_SLICE]
                out = qparams.quantize(features[part])
                for stage in stages:
                    out = stage(out)
                predictions[part] = (out[:, 0] if output_is_index
                                     else np.argmax(out, axis=-1))
        self._groups.clear()
        if self._book_ids:
            ids = (self._book_ids[0] if len(self._book_ids) == 1
                   else np.concatenate(self._book_ids))
            sizes = np.fromiter(
                (len(block) for block in self._book_ids),
                dtype=np.int64, count=len(self._book_ids),
            )
            completions = np.repeat(
                np.array(self._book_completions), sizes
            )
            latencies = completions - rows.arrivals[ids]
            report.latencies[ids] = latencies
            report.latency.record_many(latencies)
            report.deadline_misses += int(
                np.count_nonzero(rows.deadlines[ids] < completions)
            )
            self._book_ids.clear()
            self._book_completions.clear()


class FastArrivalPump:
    """Chunked traffic → batched routing → macro-stepped arrivals.

    One chunk at a time: route the whole chunk, bulk-append each
    replica's rows, precompute per-row scalars (arrival time, replica,
    local id, next-arrival-to-the-same-replica lookahead), then drive
    the clock through :meth:`_on_run` — inline while nothing else is
    due, one scheduled event whenever a dispatch or autoscaler tick
    must interleave (see the module docstring for the exact hand-off
    rules).
    """

    def __init__(self, cluster: "Cluster",
                 traffic: "MultiTenantTraffic"):
        self.cluster = cluster
        self.engine = cluster.engine
        self.router = cluster.router
        self.replicas = cluster.replicas
        self._chunks = traffic.chunks()
        self._times: list[float] = []
        self._replica_of: list[int] = []
        self._local: list[int] = []
        self._next_same: list[float] = []
        self._row = 0
        self._size = 0

    def start(self) -> None:
        """Schedule the first arrival (or finish an empty trace)."""
        chunk = next(self._chunks, None)
        if chunk is None:  # pragma: no cover - total_requests >= 1
            self.cluster._traffic_done = True
            for replica in self.replicas:
                replica.end_of_trace()
            return
        self._prepare(chunk)
        engine = self.engine
        time_s = self._times[0]
        engine.at(time_s if time_s > engine.now else engine.now,
                  self._on_run)

    def _prepare(self, chunk) -> None:
        """Route one chunk and land its rows on the replicas."""
        times = chunk.times
        count = len(times)
        indices = self.router.route_chunk(chunk.tenants)
        local = np.empty(count, dtype=np.int64)
        # nan = "no known next arrival to this replica in the chunk":
        # any comparison is false, so elision stays off across chunk
        # boundaries (~1 conservative dispatch per replica per chunk).
        next_same = np.full(count, math.nan)
        for index, replica in enumerate(self.replicas):
            positions = np.nonzero(indices == index)[0]
            routed = len(positions)
            if routed == 0:
                continue
            base = replica._rows.bulk_append(
                times[positions], chunk.deadlines[positions],
                chunk.tenants[positions], chunk.labels[positions],
                chunk.features[positions],
            )
            local[positions] = base + np.arange(routed)
            if routed > 1:
                next_same[positions[:-1]] = times[positions[1:]]
        self._times = times.tolist()
        self._replica_of = indices.tolist()
        self._local = local.tolist()
        self._next_same = next_same.tolist()
        self._row = 0
        self._size = count

    def _on_run(self) -> None:
        """Process arrivals from ``self._row`` on, inline while safe.

        Invariant on entry (and on every loop iteration): the engine
        clock stands at the current arrival's clamped time — either
        because this event was scheduled there, or because the previous
        iteration advanced the clock inline.
        """
        engine = self.engine
        cluster = self.cluster
        replicas = self.replicas
        metrics = cluster.metrics
        peek = engine.peek
        times = self._times
        replica_of = self._replica_of
        local = self._local
        next_same = self._next_same
        size = self._size
        while True:
            row = self._row
            index = replica_of[row]
            local_id = local[row]
            lookahead = next_same[row]
            # --- the scalar pump's _advance: establish the next
            # arrival (pulling a chunk as needed) or end the trace,
            # *before* submitting the current one ---
            nrow = row + 1
            if nrow == size:
                chunk = next(self._chunks, None)
                if chunk is None:
                    cluster._traffic_done = True
                    for replica in replicas:
                        replica.end_of_trace()
                    if metrics is not None:
                        metrics.counter("cluster.routed").inc()
                    replicas[index]._submit_fast(local_id, lookahead)
                    return
                self._prepare(chunk)
                times = self._times
                replica_of = self._replica_of
                local = self._local
                next_same = self._next_same
                size = self._size
                nrow = 0
            t_next = times[nrow]
            # The sequence number the scalar pump's arrival event would
            # carry: anything scheduled from here on (the submit's
            # dispatch reschedule) is newer and loses ties to it.
            mark = engine._seq
            # --- submit the current arrival ---
            if metrics is not None:
                metrics.counter("cluster.routed").inc()
            replica = replicas[index]
            replica._submit_fast(local_id, lookahead)
            # --- macro-step or yield ---
            now = engine.now
            t_eff = t_next if t_next > now else now
            bound = peek()
            if (bound is None or bound[0] > t_eff
                    or (bound[0] == t_eff and bound[1] >= mark)):
                # Nothing fires before the next arrival (ties only
                # against events this submit just scheduled, which the
                # arrival's older mark would beat): take it inline.
                engine.now = t_eff
                self._row = nrow
                continue
            # An event from before this submit is due first: yield.
            self._row = nrow
            engine.at(t_eff, self._on_run)
            dispatch = replica._dispatch_event
            if (dispatch is not None and dispatch.time_s == t_eff
                    and dispatch.seq > mark):
                # Submit's own dispatch tied the arrival instant; its
                # sequence is now older than the just-scheduled arrival
                # event, inverting the scalar order.  Reinsert it after.
                engine.cancel(dispatch)
                replica._dispatch_event = engine.at(
                    t_eff, replica._on_dispatch_fast
                )
            return
