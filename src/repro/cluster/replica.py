"""The serving loop re-expressed as discrete events: one replica actor.

:class:`Replica` runs an :class:`~repro.serving.server.InferenceServer`
*on* an :class:`~repro.cluster.engine.EventEngine` instead of the old
materialize-sort-scan loop.  The translation is exact — the engine
fires the same admits and dispatches at the same virtual times in the
same order, so a single-replica run reproduces the old loop's
:class:`~repro.serving.server.ServeReport` byte for byte (asserted
against the frozen :func:`repro.serving._reference.serve_reference`
oracle in ``tests/cluster/test_equivalence.py``).

Two details carry the equivalence:

- **Arrivals win ties.**  The old loop admitted whenever
  ``next_arrival <= ready``.  Here, every event handler schedules the
  next arrival *before* rescheduling the batch dispatch, and the
  dispatch is always cancel-and-reinsert (never reused), so its
  insertion sequence is always the newest — at equal times the engine's
  deterministic ``(time, seq)`` order fires the arrival first.
- **The batch trigger is re-evaluated after every event.**  The old
  loop called ``batcher.ready_at`` once per iteration with the time of
  the last event; :meth:`Replica._reschedule` does the same after each
  admit and each dispatch, so a pure policy sees identical inputs.

The actor serves either mode the cluster needs:

- **Standalone** (:meth:`bind`): the replica owns the trace — a list
  (the exact, byte-identical path) or any iterator (the streamed path:
  requests are pulled lazily, report rows live in growable arrays, and
  a 10⁶-request trace never exists in memory).
- **Routed** (:meth:`open` / :meth:`submit` / :meth:`end_of_trace`):
  a :class:`~repro.cluster.router.Router` pushes requests in; the
  replica renumbers them to replica-local ids and keeps per-row
  arrival/deadline/tenant columns for the cluster report's per-tenant
  SLA accounting.

Elastic capacity (:meth:`add_device` / :meth:`retire_device`) extends
the per-device accounting arrays in step with the pool and keeps
device online spans, so the autoscaler's device-seconds bill is exact.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace
from typing import Iterable, Iterator

import numpy as np

from repro.cluster.engine import Event, EventEngine
from repro.runtime.profiler import LatencyTracker
from repro.serving.arrivals import Request
from repro.serving.server import InferenceServer, ServeReport

__all__ = ["Replica"]


class _Rows:
    """Growable request-order columns backing a streamed ServeReport.

    The exact (list-input) path preallocates the report arrays to the
    trace length, exactly as the old loop did.  The streamed path does
    not know the length, so the per-request columns live here in
    doubling arrays; the report's ``predictions``/``latencies`` (and
    ``request_tiers`` when tiered) *are* these arrays — regrown copies
    are written back so the dispatch path always indexes live storage.
    ``trim`` slices everything to the final count.

    Beyond the report's own columns this keeps ``arrivals``,
    ``deadlines`` and ``tenants``: the cluster report needs them for
    per-tenant latency splits and SLA attainment, and the makespan
    needs arrivals (the old loop re-read them from the request list,
    which no longer exists).
    """

    __slots__ = ("count", "capacity", "report", "tiered", "has_labels",
                 "arrivals", "deadlines", "tenants", "labels", "features")

    _INITIAL = 1024

    def __init__(self, report: ServeReport, tiered: bool):
        capacity = self._INITIAL
        self.count = 0
        self.capacity = capacity
        self.report = report
        self.tiered = tiered
        self.has_labels: bool | None = None
        self.arrivals = np.zeros(capacity)
        self.deadlines = np.zeros(capacity)
        self.tenants = np.full(capacity, -1, dtype=np.int64)
        self.labels: np.ndarray | None = None
        # Fast-path only: the raw payload rows, kept so predictions can
        # be computed in one vectorized pass after the simulation.
        self.features: np.ndarray | None = None
        report.predictions = np.full(capacity, -1, dtype=np.int64)
        report.latencies = np.full(capacity, np.nan)
        if tiered:
            report.request_tiers = np.full(capacity, -1, dtype=np.int64)

    @staticmethod
    def _extend(array: np.ndarray, capacity: int, fill) -> np.ndarray:
        grown = np.full(capacity, fill, dtype=array.dtype)
        grown[:len(array)] = array
        return grown

    def _grow(self) -> None:
        capacity = self.capacity * 2
        report = self.report
        self.arrivals = self._extend(self.arrivals, capacity, 0.0)
        self.deadlines = self._extend(self.deadlines, capacity, 0.0)
        self.tenants = self._extend(self.tenants, capacity, -1)
        if self.labels is not None:
            self.labels = self._extend(self.labels, capacity, -1)
        if self.features is not None:
            grown = np.empty((capacity, self.features.shape[1]),
                             dtype=self.features.dtype)
            grown[:len(self.features)] = self.features
            self.features = grown
        report.predictions = self._extend(report.predictions, capacity, -1)
        report.latencies = self._extend(report.latencies, capacity, np.nan)
        if self.tiered:
            report.request_tiers = self._extend(
                report.request_tiers, capacity, -1
            )
        self.capacity = capacity

    def append(self, request: Request) -> Request:
        """Record one request's columns; returns it renumbered to the
        replica-local id (a no-op for an already-local trace)."""
        count = self.count
        if count == self.capacity:
            self._grow()
        if self.has_labels is None:
            self.has_labels = request.label is not None
            if self.has_labels:
                self.labels = np.full(self.capacity, -1, dtype=np.int64)
        self.arrivals[count] = request.arrival_s
        self.deadlines[count] = request.deadline_s
        if request.tenant is not None:
            self.tenants[count] = request.tenant
        if self.has_labels:
            self.labels[count] = request.label
        if request.request_id != count:
            request = replace(request, request_id=count)
        self.count = count + 1
        return request

    def bulk_append(self, arrivals: np.ndarray, deadlines: np.ndarray,
                    tenants: np.ndarray, labels: np.ndarray,
                    features: np.ndarray) -> int:
        """Append one routed block of rows in one slice write per
        column; returns the base replica-local id of the block.

        The cluster fast path calls this once per ``(chunk, replica)``
        with the chunk rows routed here, *before* their arrival events
        fire — the columns end up byte-identical to ``len(arrivals)``
        in-order :meth:`append` calls because routing never feeds back
        into generation and nothing reads a row before its arrival.
        """
        count = self.count
        total = count + len(arrivals)
        while total > self.capacity:
            self._grow()
        if self.has_labels is None:
            self.has_labels = True
            self.labels = np.full(self.capacity, -1, dtype=np.int64)
        if self.features is None:
            self.features = np.empty((self.capacity, features.shape[1]),
                                     dtype=features.dtype)
        self.arrivals[count:total] = arrivals
        self.deadlines[count:total] = deadlines
        self.tenants[count:total] = tenants
        self.labels[count:total] = labels
        self.features[count:total] = features
        self.count = total
        return count

    def trim(self) -> None:
        count = self.count
        report = self.report
        report.num_requests = count
        report.predictions = report.predictions[:count]
        report.latencies = report.latencies[:count]
        if self.has_labels:
            report.labels = self.labels[:count]
        if self.tiered:
            report.request_tiers = report.request_tiers[:count]
        self.arrivals = self.arrivals[:count]
        self.deadlines = self.deadlines[:count]
        self.tenants = self.tenants[:count]
        if self.features is not None:
            self.features = self.features[:count]


class Replica:
    """One inference server as an actor on the event engine.

    Args:
        server: The :class:`~repro.serving.server.InferenceServer` to
            run.  The replica owns the simulation state the old loop
            kept in locals (queue, per-device free/busy/swap times,
            host-free time) — the server contributes policies, cost
            models and the dispatch path.
        engine: The shared :class:`EventEngine`.
        replica_id: Identity in a cluster (0 for standalone serving).
    """

    def __init__(self, server: InferenceServer, engine: EventEngine,
                 replica_id: int = 0):
        self.server = server
        self.engine = engine
        self.replica_id = replica_id
        self.queue: deque[Request] = deque()
        num_devices = server.pool.num_devices
        self.device_free = [0.0] * num_devices
        self.device_busy = [0.0] * num_devices
        self.device_swap = [0.0] * num_devices
        self.host_free = 0.0
        # Every pre-existing device has been online since t=0; entries
        # are [start, end] with end None while the device is in service.
        self.online_spans: list[list] = [[0.0, None]
                                         for _ in range(num_devices)]
        self.report: ServeReport | None = None
        self._root = None
        self._dispatch_event: Event | None = None
        self._source: Iterator[Request] | None = None
        self._source_done = False
        self._prev_arrival = -math.inf
        self._exact_requests: list[Request] | None = None
        self._rows: _Rows | None = None
        self._finalized = False
        # Fast-path state (see enable_fast); inert in scalar mode.
        self._fast = False
        self._defer = None
        self._lookahead = math.nan
        self._fast_dynamic = False
        self._fast_max_batch = 0
        self._fast_slack = 0.0
        self._fast_timeout = math.inf
        self._fast_est: list[float | None] = []
        self._defer_full = False

    # ------------------------------------------------------------------
    # Trace binding
    # ------------------------------------------------------------------

    def bind(self, requests: Iterable[Request]) -> None:
        """Attach a standalone trace; the replica schedules its own
        arrival events.

        A list (or tuple) takes the exact path — report arrays
        preallocated to the trace length, arrival order validated up
        front, byte-identical to the old loop.  Any other iterable is
        streamed: requests are pulled one at a time as their arrival
        events fire, so the trace never has to exist in memory.
        """
        if self.report is not None:
            raise RuntimeError("replica already has a trace bound")
        if isinstance(requests, (list, tuple)):
            self._bind_list(list(requests))
        else:
            self._bind_stream(iter(requests))

    def _bind_list(self, requests: list[Request]) -> None:
        num_requests = len(requests)
        report = ServeReport(num_requests=num_requests)
        report.predictions = np.full(num_requests, -1, dtype=np.int64)
        report.latencies = np.full(num_requests, np.nan)
        if num_requests and requests[0].label is not None:
            report.labels = np.array(
                [r.label for r in requests], dtype=np.int64
            )
        for left, right in zip(requests, requests[1:]):
            if right.arrival_s < left.arrival_s:
                raise ValueError("requests must be in arrival order")
        self.report = report
        self._exact_requests = requests
        self._begin(trace_requests=num_requests)
        self._source = iter(requests)
        self._schedule_next_arrival()

    def _bind_stream(self, requests: Iterator[Request]) -> None:
        self.report = ServeReport(num_requests=0)
        self._rows = _Rows(self.report,
                           tiered=self.server._tiers is not None)
        self._begin(trace_requests=None)
        self._source = requests
        self._schedule_next_arrival()

    def open(self) -> None:
        """Prepare for routed traffic: requests arrive via
        :meth:`submit` and the router signals :meth:`end_of_trace`."""
        if self.report is not None:
            raise RuntimeError("replica already has a trace bound")
        self.report = ServeReport(num_requests=0)
        self._rows = _Rows(self.report,
                           tiered=self.server._tiers is not None)
        self._begin(trace_requests=None)

    def _begin(self, trace_requests: int | None) -> None:
        """The old loop's preamble: root span, tier accounting reset."""
        server = self.server
        report = self.report
        tracer = server.tracer
        metrics = server.metrics
        self._root = (tracer.add("serve", 0.0, 0.0,
                                 requests=trace_requests,
                                 devices=server.pool.num_devices)
                      if tracer is not None else None)
        server._active_tier = 0
        if server._tiers is not None:
            report.tier_names = [t.name for t in server._tiers]
            report.tier_batches = [0] * len(server._tiers)
            report.tier_served = [0] * len(server._tiers)
            report.tier_build_accuracy = [t.build_accuracy
                                          for t in server._tiers]
            if self._rows is None:
                report.request_tiers = np.full(report.num_requests, -1,
                                               dtype=np.int64)
            report.tier_latency = [LatencyTracker()
                                   for _ in server._tiers]
            if metrics is not None:
                metrics.gauge("serve.tier_active").set(0)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        try:
            request = next(self._source)
        except StopIteration:
            self._source = None
            self._source_done = True
            return
        if self._rows is not None:
            # The exact path validated the whole list up front; the
            # streamed path validates as it pulls.
            if request.arrival_s < self._prev_arrival:
                raise ValueError("requests must be in arrival order")
            self._prev_arrival = request.arrival_s
        self.engine.at(max(self.engine.now, request.arrival_s),
                       self._on_arrival, request)

    def _on_arrival(self, request: Request) -> None:
        # Next arrival first, then the dispatch reschedule: at equal
        # times the arrival's older sequence number fires first, which
        # is exactly the old loop's ``next_arrival <= ready`` tie.
        self._schedule_next_arrival()
        self.submit(request)

    def submit(self, request: Request) -> None:
        """Admit (or drop) one request at the current virtual time.

        This is the old loop's admission block verbatim; in routed mode
        the router calls it directly at the request's arrival event.
        """
        server = self.server
        report = self.report
        metrics = server.metrics
        tracer = server.tracer
        queue = self.queue
        if self._rows is not None:
            request = self._rows.append(request)
        if metrics is not None:
            metrics.counter("serve.requests").inc()
        if len(queue) >= server.max_queue:
            report.dropped += 1
            if tracer is not None:
                # Zero-duration marker: the request arrived and was
                # rejected at the same virtual instant.
                tracer.add("request", request.arrival_s,
                           request.arrival_s, parent_id=self._root,
                           tags=("dropped",),
                           request_id=request.request_id)
            if metrics is not None:
                metrics.counter("serve.dropped").inc()
        else:
            queue.append(request)
        if metrics is not None:
            metrics.gauge("serve.queue_depth").set(len(queue))
        self._reschedule()

    def end_of_trace(self) -> None:
        """Routed mode: no more submits are coming — arm the flush rule
        so a queue the policy would hold forever dispatches now."""
        self._source_done = True
        if self._fast:
            self._reschedule_fast(math.nan)
        else:
            self._reschedule()

    def _reschedule(self) -> None:
        """Re-evaluate the batch trigger (the old loop's per-iteration
        ``ready_at`` call) and move the pending dispatch event.

        Always cancel-and-reinsert: the dispatch event's sequence
        number must be newer than any pending arrival's so arrivals win
        ties.
        """
        engine = self.engine
        if self._dispatch_event is not None:
            engine.cancel(self._dispatch_event)
            self._dispatch_event = None
        server = self.server
        queue = self.queue
        ready = server.batcher.ready_at(queue, engine.now,
                                        server.service_estimate)
        if math.isinf(ready):
            if not (self._source_done and queue):
                return
            # Trace over, policy would wait forever: flush.
            ready = engine.now
        self._dispatch_event = engine.at(max(engine.now, ready),
                                         self._on_dispatch)

    def _on_dispatch(self) -> None:
        self._dispatch_event = None
        server = self.server
        queue = self.queue
        batch = [queue.popleft()
                 for _ in range(min(server.batcher.max_batch,
                                    len(queue)))]
        if server.metrics is not None:
            server.metrics.gauge("serve.queue_depth").set(len(queue))
        self.host_free = server._dispatch_batch(
            batch, self.engine.now, self.device_free, self.device_busy,
            self.device_swap, self.host_free, self.report,
            server.tracer, self._root, queue_depth=len(queue),
        )
        self._reschedule()

    # ------------------------------------------------------------------
    # The vectorized fast path (cluster intake without Request objects)
    # ------------------------------------------------------------------

    def enable_fast(self, defer) -> None:
        """Switch the routed intake to the cluster fast path.

        In fast mode the queue holds replica-local integer ids instead
        of :class:`Request` objects, arrivals land as per-chunk column
        blocks (:meth:`_Rows.bulk_append` from the pump), the batch
        trigger is evaluated inline from the columns, and predictions
        are deferred to ``defer`` (a
        :class:`~repro.cluster.fastpath.DeferredPredictions` sink) —
        every modeled time and report column stays bit-identical to the
        scalar path (``tests/cluster/test_equivalence.py``).

        Requires a routed replica (:meth:`open`), an untraced server,
        and one of the two stock batchers, whose trigger math is
        reproduced inline.
        """
        from repro.serving.batcher import DynamicBatcher, FixedSizeBatcher
        if self._rows is None or self._source is not None:
            raise RuntimeError("fast mode requires an open() replica")
        server = self.server
        if server.tracer is not None:
            raise ValueError("fast mode does not record request spans; "
                             "use the scalar path when tracing a replica")
        if server.swapper is not None:
            # A hot swap would invalidate the inline estimate cache.
            raise ValueError("fast mode does not support a swapper")
        batcher = server.batcher
        if isinstance(batcher, DynamicBatcher):
            self._fast_dynamic = True
            self._fast_slack = batcher.slack_s
        elif isinstance(batcher, FixedSizeBatcher):
            self._fast_dynamic = False
            self._fast_timeout = batcher.timeout_s
        else:
            raise ValueError(
                f"no inline trigger for {type(batcher).__name__}; "
                "use the scalar path"
            )
        self._fast_max_batch = batcher.max_batch
        self._fast_est = [None] * batcher.max_batch
        self._defer = defer
        self._defer_full = bool(getattr(defer, "full", False))
        self._fast = True

    def _submit_fast(self, local_id: int, lookahead: float) -> None:
        """Admit (or drop) one pre-appended row — the fast twin of
        :meth:`submit`.

        ``lookahead`` is the arrival time of the *next* request routed
        to this replica (``nan`` when unknown, e.g. across a chunk
        boundary); it drives the dispatch-elision rule in
        :meth:`_reschedule_fast`.
        """
        server = self.server
        metrics = server.metrics
        queue = self.queue
        if metrics is not None:
            metrics.counter("serve.requests").inc()
        if len(queue) >= server.max_queue:
            self.report.dropped += 1
            if metrics is not None:
                metrics.counter("serve.dropped").inc()
        else:
            queue.append(local_id)
        if metrics is not None:
            metrics.gauge("serve.queue_depth").set(len(queue))
        self._lookahead = lookahead
        self._reschedule_fast(lookahead)

    def _reschedule_fast(self, lookahead: float) -> None:
        """Inline batch trigger with dispatch elision.

        Reproduces :meth:`~repro.serving.batcher.DynamicBatcher.ready_at`
        (or the fixed batcher's) bit-for-bit from the column store, then
        skips scheduling entirely when ``ready`` falls strictly after
        the next arrival bound for this replica: that arrival would
        cancel-and-reinsert the dispatch before it could fire (the
        scalar path does exactly that on *every* submit), so the event
        is pure heap churn.  A ``nan`` lookahead disables elision (any
        comparison with it is false) and the dispatch is scheduled
        conservatively, which is always correct.
        """
        engine = self.engine
        if self._dispatch_event is not None:
            engine.cancel(self._dispatch_event)
            self._dispatch_event = None
        queue = self.queue
        size = len(queue)
        if size == 0:
            return
        now = engine.now
        if size >= self._fast_max_batch:
            ready = now
        elif self._fast_dynamic:
            estimate = self._fast_est[size]
            if estimate is None:
                estimate = self.server.service_estimate(size)
                self._fast_est[size] = estimate
            ready = (self._rows.deadlines[queue[0]]
                     - self._fast_slack - estimate)
            if ready < now:
                ready = now
        else:
            timeout = self._fast_timeout
            if math.isinf(timeout):
                if not self._source_done:
                    return
                ready = now
            else:
                ready = self._rows.arrivals[queue[0]] + timeout
                if ready < now:
                    ready = now
        if ready > lookahead:
            # The next arrival to this replica lands strictly before
            # the trigger and will re-evaluate it; skip the heap
            # round-trip.  (At exact equality the event is scheduled:
            # whether the pending arrival or this dispatch wins the tie
            # depends on insertion order, and scheduling preserves the
            # scalar path's order exactly.)
            return
        self._dispatch_event = engine.at(ready, self._on_dispatch_fast)

    def _on_dispatch_fast(self) -> None:
        """Close and serve one batch of queued row ids — the fast twin
        of :meth:`_on_dispatch` (columns in, deferred predictions out).
        """
        self._dispatch_event = None
        server = self.server
        queue = self.queue
        count = min(self._fast_max_batch, len(queue))
        ids = np.empty(count, dtype=np.int64)
        for k in range(count):
            ids[k] = queue.popleft()
        depth = len(queue)
        if server.metrics is not None:
            server.metrics.gauge("serve.queue_depth").set(depth)
        rows = self._rows
        if self._defer_full:
            # Fully deferred bookkeeping: the dispatch core never
            # touches per-request columns, so skip the gathers too.
            arrivals = deadlines = None
        else:
            arrivals = rows.arrivals[ids]
            deadlines = rows.deadlines[ids]
        self.host_free = server._dispatch_columns(
            ids, arrivals, deadlines, None,
            self.engine.now, self.device_free, self.device_busy,
            self.device_swap, self.host_free, self.report,
            queue_depth=depth, defer=self._defer,
        )
        self._reschedule_fast(self._lookahead)

    def resolve_deferred(self) -> None:
        """Replay every deferred computation — predictions and (in full
        mode) the latency bookkeeping — in one vectorized pass.  Call
        after the engine drains, before :meth:`finalize` (the makespan
        reads the latency column); a no-op in scalar mode."""
        if self._defer is not None:
            self._defer.resolve(self._rows, self.report)

    # ------------------------------------------------------------------
    # Elastic capacity (the autoscaler's knobs)
    # ------------------------------------------------------------------

    def add_device(self) -> int:
        """Attach one device, load the current model set onto it, and
        extend the accounting arrays; returns the pool index.

        The device becomes dispatchable once its model load completes
        (``device_free`` starts at now + load), mirroring a real
        attach-then-deploy.  Provisioning lead time is the autoscaler's
        to charge — it schedules the add event in the future.
        """
        server = self.server
        pool = server.pool
        index = pool.add_device()
        load = pool.reload(index, server._compiled)
        if server._tiers is not None:
            for tier in server._tiers[1:]:
                load = max(load,
                           pool.devices[index].load_resident(tier.compiled))
        now = self.engine.now
        self.device_free.append(now + load)
        self.device_busy.append(0.0)
        self.device_swap.append(0.0)
        self.online_spans.append([now, None])
        return index

    def retire_device(self, index: int) -> None:
        """Take device ``index`` out of service and close its online
        span.  In-flight work finishes; no new batches land on it."""
        self.server.pool.retire(index)
        span = self.online_spans[index]
        if span[1] is None:
            span[1] = self.engine.now

    def device_seconds(self, until_s: float) -> float:
        """Total device-online seconds through ``until_s`` — the
        provisioning bill the autoscaler benchmark compares against
        static fleets."""
        total = 0.0
        for start, end in self.online_spans:
            total += (until_s if end is None else end) - start
        return total

    @property
    def queue_depth(self) -> int:
        """Current admission-queue depth (an autoscaler signal)."""
        return len(self.queue)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def finalize(self) -> ServeReport:
        """The old loop's epilogue; call once, after the engine drains."""
        if self._finalized:
            raise RuntimeError("replica already finalized")
        self._finalized = True
        server = self.server
        report = self.report
        now = self.engine.now
        if self._rows is not None:
            self._rows.trim()
            arrivals = self._rows.arrivals
        else:
            arrivals = np.array(
                [r.arrival_s for r in self._exact_requests]
            )
        report.served = report.num_requests - report.dropped
        if report.served:
            report.makespan_s = float(
                np.nanmax(report.latencies + arrivals)
            )
        else:
            # Every request dropped (e.g. ``max_queue=0``) or an empty
            # trace: the latency vector is all-NaN, so nanmax would
            # warn and return NaN — the makespan is just the virtual
            # clock at the last event.
            report.makespan_s = float(now)
        report.device_busy_seconds = [float(b) for b in self.device_busy]
        report.device_swap_seconds = [float(s) for s in self.device_swap]
        report.device_idle_seconds = [
            max(0.0, report.makespan_s - b - s)
            for b, s in zip(self.device_busy, self.device_swap)
        ]
        report.device_energy_j = [
            device.energy_joules() for device in server.pool.devices
        ]
        report.failed_devices = sorted(server.pool.failed)
        if server.swapper is not None:
            report.swap_records = list(server.swapper.records)
        tracer = server.tracer
        if tracer is not None:
            tracer.finish(self._root, report.makespan_s)
            tracer.advance(report.makespan_s)
            report.trace = tracer if tracer.enabled else None
        metrics = server.metrics
        if metrics is not None:
            metrics.counter("serve.batches").inc(report.num_batches)
            metrics.counter("serve.retries").inc(report.retried_batches)
            metrics.counter("serve.fallbacks").inc(
                report.fallback_batches
            )
            metrics.counter("serve.deadline_misses").inc(
                report.deadline_misses
            )
        if server.profiler is not None:
            server.profiler.charge("inference", report.makespan_s)
        return report

    # Cluster-report accessors (valid after finalize) -------------------

    @property
    def arrivals(self) -> np.ndarray:
        """Per-request arrival times (streamed/routed traces only)."""
        if self._rows is None:
            raise RuntimeError("exact traces keep arrivals on the list")
        return self._rows.arrivals

    @property
    def deadlines(self) -> np.ndarray:
        """Per-request absolute deadlines (streamed/routed only)."""
        if self._rows is None:
            raise RuntimeError("exact traces keep deadlines on the list")
        return self._rows.deadlines

    @property
    def tenants(self) -> np.ndarray:
        """Per-request tenant ids, ``-1`` for none (streamed/routed)."""
        if self._rows is None:
            raise RuntimeError("exact traces carry no tenant column")
        return self._rows.tenants
