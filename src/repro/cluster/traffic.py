"""Multi-tenant traffic: MMPP superposition with diurnal rate curves.

A fleet does not serve one workload — it serves several tenants at
once, each with its own arrival statistics, payload distribution and
SLA.  This module generates that superposed trace **lazily and at
scale**: per-tenant arrival streams (Poisson or bursty MMPP, via the
existing :class:`~repro.serving.arrivals.ArrivalProcess`) are modulated
by a :class:`DiurnalCurve` through *thinning* — draw at the curve's
peak rate, keep each arrival with probability ``multiplier(t)/peak`` —
then merged in time order by a k-way heap.  Nothing is materialized:
a 10⁶-request trace streams through the router one
:class:`~repro.serving.arrivals.Request` at a time.

Every random stream is domain-separated through
:mod:`repro.cluster.seeding`, so tenant 2's trace is bit-identical
whether the cluster has three tenants or thirty, and adding a tenant
never perturbs another tenant's arrivals or payloads (the regression
test shows the naive ``seed + i`` layout failing exactly this).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.cluster.seeding import (
    DOMAIN_ARRIVALS,
    DOMAIN_PAYLOAD,
    DOMAIN_THINNING,
    child_rng,
    child_seed,
)
from repro.config import ServeConfig
from repro.data.streams import DriftingStream, StreamConfig
from repro.serving.arrivals import ArrivalProcess, Request

__all__ = ["DiurnalCurve", "MultiTenantTraffic", "TenantSpec",
           "TrafficChunk"]

# Arrival candidates drawn per thinning pass.  Fixed: the bursty MMPP
# state machine resets per chunk, so the chunk size is part of the
# determinism contract.
_CHUNK = 4096

# Payload samples drawn per block for a stationary tenant (a drifting
# tenant's block is its drift_every, so drift granularity is exact).
_PAYLOAD_BLOCK = 256


@dataclass(frozen=True)
class DiurnalCurve:
    """A deterministic rate multiplier over virtual time.

    The multiplier is ``1 + amplitude * sin(2π (t/period_s + phase))``,
    optionally scaled by ``spike_factor`` inside the spike window —
    the sinusoid models the diurnal swing of edge traffic, the spike
    models a flash crowd (the autoscaler benchmark's 10× step).

    Attributes:
        period_s: Sinusoid period (a scaled-down "day").
        amplitude: Sinusoid amplitude in ``[0, 1)``; ``0`` is flat.
        phase: Phase offset as a fraction of the period.
        spike_at_s: Spike start time (``None`` for no spike).
        spike_duration_s: Spike length in seconds.
        spike_factor: Rate multiplier inside the spike (``>= 1``).
    """

    period_s: float = 3600.0
    amplitude: float = 0.0
    phase: float = 0.0
    spike_at_s: float | None = None
    spike_duration_s: float = 0.0
    spike_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )
        if self.spike_factor < 1.0:
            raise ValueError(
                f"spike_factor must be >= 1, got {self.spike_factor}"
            )
        if self.spike_duration_s < 0:
            raise ValueError(
                f"spike_duration_s must be >= 0, "
                f"got {self.spike_duration_s}"
            )
        if self.spike_at_s is not None and self.spike_at_s < 0:
            raise ValueError(
                f"spike_at_s must be >= 0, got {self.spike_at_s}"
            )

    @property
    def peak(self) -> float:
        """The largest multiplier the curve can reach (the thinning
        envelope)."""
        peak = 1.0 + self.amplitude
        if self.spike_at_s is not None:
            peak *= self.spike_factor
        return peak

    def multipliers(self, times: np.ndarray) -> np.ndarray:
        """Vectorized multiplier at each time."""
        values = 1.0 + self.amplitude * np.sin(
            2.0 * math.pi * (times / self.period_s + self.phase)
        )
        if self.spike_at_s is not None and self.spike_duration_s > 0:
            inside = ((times >= self.spike_at_s)
                      & (times < self.spike_at_s + self.spike_duration_s))
            values = np.where(inside, values * self.spike_factor, values)
        return values


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload contract.

    Attributes:
        name: Tenant label (appears in the cluster report).
        rate_hz: Base arrival rate before the diurnal multiplier.
        deadline_s: Per-request SLA budget (deadline = arrival +
            budget); drives the tenant's SLA-attainment row.
        kind: Arrival statistics — ``"poisson"`` or ``"bursty"``
            (two-state MMPP), as :class:`ArrivalProcess` defines them.
        burst_factor: MMPP burst-state rate multiplier.
        num_features: Payload feature width.
        num_classes: Payload class count.
        drift_rate: Payload drift per step (``0`` is stationary).
        drift_every: Requests per drift step (``0`` freezes drift).
        curve: Diurnal/spike rate modulation.
        config: Optional per-tenant :class:`~repro.config.ServeConfig`.
            Under the ``tenant_affinity`` router policy the tenant's
            home replica is built with this config (its batching,
            admission and shedding knobs) instead of the cluster
            default; other policies ignore it (requests from many
            tenants share every replica).
    """

    name: str
    rate_hz: float
    deadline_s: float
    kind: str = "poisson"
    burst_factor: float = 8.0
    num_features: int = 16
    num_classes: int = 3
    drift_rate: float = 0.0
    drift_every: int = 0
    curve: DiurnalCurve = field(default_factory=DiurnalCurve)
    config: ServeConfig | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if self.rate_hz <= 0:
            raise ValueError(f"rate_hz must be > 0, got {self.rate_hz}")
        if self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if self.drift_every < 0:
            raise ValueError(
                f"drift_every must be >= 0, got {self.drift_every}"
            )
        if self.config is not None and not isinstance(self.config,
                                                      ServeConfig):
            raise TypeError(
                f"config must be a ServeConfig or None, "
                f"got {type(self.config).__name__}"
            )


class _TenantSource:
    """One tenant's infinite lazy event stream.

    Arrivals: candidate gaps are drawn in fixed chunks at the curve's
    peak rate, then thinned against the curve — the standard
    non-homogeneous-process construction, vectorized so per-request
    Python cost is O(1) amortized.  Payloads: drawn in blocks from the
    tenant's own :class:`DriftingStream` (block = ``drift_every`` when
    drifting, so drift advances exactly as
    :class:`~repro.serving.arrivals.RequestStream` would at the same
    granularity).
    """

    def __init__(self, spec: TenantSpec, index: int, seed: int | None):
        self.spec = spec
        self.index = index
        self.peak = spec.curve.peak
        self.arrivals = ArrivalProcess(
            spec.rate_hz * self.peak, spec.kind,
            seed=child_seed(seed, DOMAIN_ARRIVALS, index),
            burst_factor=spec.burst_factor,
        )
        self._thin = child_rng(seed, DOMAIN_THINNING, index)
        self.stream = DriftingStream(
            StreamConfig(num_features=spec.num_features,
                         num_classes=spec.num_classes,
                         drift_rate=spec.drift_rate),
            seed=child_seed(seed, DOMAIN_PAYLOAD, index),
        )
        self._clock = 0.0
        self._times: np.ndarray = np.empty(0)
        self._ti = 0
        self._px: np.ndarray = np.empty((0, spec.num_features))
        self._py: np.ndarray = np.empty(0, dtype=np.int64)
        self._pi = 0
        self._blocks = 0

    def _refill_times(self) -> None:
        while True:
            gaps = self.arrivals.inter_arrivals(_CHUNK)
            times = self._clock + np.cumsum(gaps)
            self._clock = float(times[-1])
            if self.peak > 1.0:
                keep = (self._thin.random(_CHUNK)
                        < self.spec.curve.multipliers(times) / self.peak)
                times = times[keep]
            if len(times):
                self._times = times
                self._ti = 0
                return

    def _refill_payload(self) -> None:
        spec = self.spec
        if self._blocks and spec.drift_every:
            self.stream.advance(1)
        self._blocks += 1
        block = spec.drift_every if spec.drift_every else _PAYLOAD_BLOCK
        self._px, self._py = self.stream.draw(block)
        self._pi = 0

    def next_event(self) -> tuple[float, np.ndarray, int]:
        """The tenant's next ``(arrival_s, features, label)``."""
        if self._ti == len(self._times):
            self._refill_times()
        if self._pi == len(self._px):
            self._refill_payload()
        arrival = float(self._times[self._ti])
        features = self._px[self._pi]
        label = int(self._py[self._pi])
        self._ti += 1
        self._pi += 1
        return arrival, features, label

    def times_block(self) -> np.ndarray:
        """Refill and return the next non-empty block of arrival times.

        The chunked merge consumes whole thinned blocks at a time; the
        draws (and therefore every downstream arrival) are identical to
        the ones :meth:`next_event` would have produced one by one.
        """
        self._refill_times()
        return self._times

    def payload_rows(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Consume the tenant's next ``count`` payload rows in order.

        Pulls through the same block refills (and drift advances at the
        same block boundaries) as :meth:`next_event`, so the sequence of
        ``(features, label)`` rows is bit-identical to ``count``
        consecutive streamed draws.
        """
        features = np.empty((count, self.spec.num_features),
                            dtype=np.float32)
        labels = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            if self._pi == len(self._px):
                self._refill_payload()
            take = min(count - filled, len(self._px) - self._pi)
            features[filled:filled + take] = \
                self._px[self._pi:self._pi + take]
            labels[filled:filled + take] = \
                self._py[self._pi:self._pi + take]
            self._pi += take
            filled += take
        return features, labels


@dataclass(frozen=True)
class TrafficChunk:
    """One merged, time-ordered block of the superposed trace.

    Emitted by :meth:`MultiTenantTraffic.chunks` — the columnar fast
    path of the generator.  Rows are globally ordered by ``(arrival,
    tenant index)``, exactly the streamed merge order, and
    ``base_id`` is the global request id of row 0 (ids are dense and
    sequential across chunks).

    Attributes:
        base_id: Global request id of the first row.
        times: ``(n,)`` arrival times, non-decreasing.
        tenants: ``(n,)`` int64 tenant indices.
        features: ``(n, num_features)`` float32 payload rows.
        labels: ``(n,)`` int64 ground-truth labels.
        deadlines: ``(n,)`` absolute deadlines
            (``times + tenant deadline budget``).
    """

    base_id: int
    times: np.ndarray
    tenants: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    deadlines: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


class MultiTenantTraffic:
    """The superposed, time-ordered request stream of every tenant.

    Args:
        tenants: The tenant specs; tenant index in this sequence is the
            :attr:`Request.tenant <repro.serving.arrivals.Request>` id.
        total_requests: Requests to emit across all tenants (per-tenant
            shares are emergent from the rates — exactly the first
            ``total_requests`` arrivals of the superposition).
        seed: Root seed; every per-tenant stream derives from it via
            :func:`repro.cluster.seeding.child_seed`.
    """

    def __init__(self, tenants, total_requests: int,
                 seed: int | None = 0):
        tenants = list(tenants)
        if not tenants:
            raise ValueError("at least one tenant is required")
        for spec in tenants:
            if not isinstance(spec, TenantSpec):
                raise TypeError(
                    f"tenants must be TenantSpec, "
                    f"got {type(spec).__name__}"
                )
        if len({spec.name for spec in tenants}) != len(tenants):
            raise ValueError("tenant names must be unique")
        if total_requests < 1:
            raise ValueError(
                f"total_requests must be >= 1, got {total_requests}"
            )
        self.tenants = tenants
        self.total_requests = total_requests
        self.seed = seed

    @property
    def _uniform_width(self) -> bool:
        return len({spec.num_features for spec in self.tenants}) == 1

    def chunks(self) -> Iterator[TrafficChunk]:
        """Yield the trace as merged columnar :class:`TrafficChunk`\\ s.

        The vectorized fast path of the generator: each tenant's
        arrival times are produced a thinned block at a time (the same
        blocks :meth:`requests_streamed` consumes one element at a
        time), and everything up to the *horizon* — the earliest
        last-buffered time across tenants, so no unbuffered arrival can
        precede it — is merged in one ``np.lexsort`` keyed by
        ``(time, tenant index)``, exactly the streamed heap's
        tie-break.  Payload rows are then gathered per tenant in stream
        order (block refills and drift boundaries unchanged), so the
        emitted ``(time, tenant, features, label)`` sequence is
        bit-identical to the streamed path (the hypothesis test in
        ``tests/cluster/test_traffic.py`` pins this).

        Requires a uniform per-tenant feature width (the chunk carries
        one 2-D feature matrix); mixed-width mixes must use
        :meth:`requests_streamed`.

        The one caveat is exact float ties *across* buffer boundaries:
        if a tenant's first unbuffered arrival equals the horizon
        bit-for-bit (probability zero for exponential draws), it lands
        in the next chunk even when the streamed tie-break would
        interleave it earlier.
        """
        if not self._uniform_width:
            raise ValueError(
                "chunks() requires a uniform tenant feature width; "
                "use requests_streamed() for mixed-width mixes"
            )
        tenants = self.tenants
        num_tenants = len(tenants)
        deadline_by = np.array([spec.deadline_s for spec in tenants])
        sources = [_TenantSource(spec, index, self.seed)
                   for index, spec in enumerate(tenants)]
        buffers = [source.times_block() for source in sources]
        offsets = [0] * num_tenants
        remaining = self.total_requests
        base_id = 0
        while remaining > 0:
            for index in range(num_tenants):
                if offsets[index] == len(buffers[index]):
                    buffers[index] = sources[index].times_block()
                    offsets[index] = 0
            horizon = min(buffer[-1] for buffer in buffers)
            part_times = []
            part_tenants = []
            for index in range(num_tenants):
                buffer = buffers[index]
                start = offsets[index]
                stop = int(np.searchsorted(buffer, horizon,
                                           side="right"))
                if stop > start:
                    part_times.append(buffer[start:stop])
                    part_tenants.append(
                        np.full(stop - start, index, dtype=np.int64)
                    )
                    offsets[index] = stop
            times = np.concatenate(part_times)
            tenant_ids = np.concatenate(part_tenants)
            order = np.lexsort((tenant_ids, times))
            times = times[order]
            tenant_ids = tenant_ids[order]
            if len(times) > remaining:
                times = times[:remaining]
                tenant_ids = tenant_ids[:remaining]
            counts = np.bincount(tenant_ids, minlength=num_tenants)
            features = np.empty(
                (len(times), tenants[0].num_features), dtype=np.float32
            )
            labels = np.empty(len(times), dtype=np.int64)
            for index in range(num_tenants):
                count = int(counts[index])
                if count == 0:
                    continue
                rows, row_labels = sources[index].payload_rows(count)
                positions = np.nonzero(tenant_ids == index)[0]
                features[positions] = rows
                labels[positions] = row_labels
            yield TrafficChunk(
                base_id=base_id,
                times=times,
                tenants=tenant_ids,
                features=features,
                labels=labels,
                deadlines=times + deadline_by[tenant_ids],
            )
            base_id += len(times)
            remaining -= len(times)

    def requests(self) -> Iterator[Request]:
        """Stream ``total_requests`` requests in arrival order.

        Deterministic per seed: the per-tenant draws, the thinning and
        the merge (ties broken by tenant index) are all fixed, so the
        trace is bit-identical across router policies and replica
        counts — routing consumes the trace, it never feeds back into
        generation.

        Uniform-width tenant mixes iterate the chunked fast path
        (:meth:`chunks`), which emits the same sequence without a
        Python-level heap round-trip per request; mixed-width mixes
        fall back to :meth:`requests_streamed`.
        """
        if not self._uniform_width:
            yield from self.requests_streamed()
            return
        request_id = 0
        for chunk in self.chunks():
            times = chunk.times.tolist()
            deadlines = chunk.deadlines.tolist()
            tenant_ids = chunk.tenants.tolist()
            labels = chunk.labels.tolist()
            features = chunk.features
            for row in range(len(times)):
                yield Request(
                    request_id=request_id,
                    arrival_s=times[row],
                    deadline_s=deadlines[row],
                    features=features[row],
                    label=labels[row],
                    tenant=tenant_ids[row],
                )
                request_id += 1

    def requests_streamed(self) -> Iterator[Request]:
        """The scalar reference generator: one k-way heap merge step
        per request.

        Kept verbatim as the equivalence oracle for :meth:`chunks` (and
        as the fallback for mixed feature widths): candidate events sit
        on a heap keyed by ``(arrival, tenant index)`` and every
        emission pulls exactly one replacement from the emitting
        tenant.
        """
        sources = [_TenantSource(spec, index, self.seed)
                   for index, spec in enumerate(self.tenants)]
        heap = []
        for index, source in enumerate(sources):
            arrival, features, label = source.next_event()
            heap.append((arrival, index, features, label))
        heapq.heapify(heap)
        for request_id in range(self.total_requests):
            arrival, index, features, label = heap[0]
            spec = self.tenants[index]
            yield Request(
                request_id=request_id,
                arrival_s=arrival,
                deadline_s=arrival + spec.deadline_s,
                features=features,
                label=label,
                tenant=index,
            )
            arrival, features, label = sources[index].next_event()
            heapq.heapreplace(heap, (arrival, index, features, label))
