"""Fleet-scale cluster serving: engine, router, tenants, autoscaler.

The cluster layer composes the single-server serving stack
(:mod:`repro.serving`) into a simulated fleet: a discrete-event
:class:`EventEngine` drives N :class:`Replica` servers behind a
sharding :class:`Router`, fed by a lazy multi-tenant traffic
superposition, with an optional :class:`Autoscaler` flexing device
capacity — all bit-deterministic per seed at 10⁶-request scale.

The short path is :func:`repro.api.serve_cluster`::

    report = repro.serve_cluster(trained, config=repro.ClusterConfig(
        tenants=(TenantSpec("app", rate_hz=500.0, deadline_s=0.05),),
        num_replicas=4, total_requests=1_000_000,
    ))
"""

from repro.cluster.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScalingEvent,
)
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.engine import Event, EventEngine
from repro.cluster.replica import Replica
from repro.cluster.report import ClusterReport, tenant_stats
from repro.cluster.router import POLICIES, Router
from repro.cluster.seeding import (
    DOMAIN_ARRIVALS,
    DOMAIN_FAILURES,
    DOMAIN_PAYLOAD,
    DOMAIN_THINNING,
    child_rng,
    child_seed,
)
from repro.cluster.traffic import (
    DiurnalCurve,
    MultiTenantTraffic,
    TenantSpec,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "Cluster",
    "ClusterConfig",
    "ClusterReport",
    "DiurnalCurve",
    "DOMAIN_ARRIVALS",
    "DOMAIN_FAILURES",
    "DOMAIN_PAYLOAD",
    "DOMAIN_THINNING",
    "Event",
    "EventEngine",
    "MultiTenantTraffic",
    "POLICIES",
    "Replica",
    "Router",
    "ScalingEvent",
    "TenantSpec",
    "child_rng",
    "child_seed",
    "tenant_stats",
]
