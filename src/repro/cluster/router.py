"""The cluster front-end: shard requests across replica servers.

A :class:`Router` is a pure routing policy — it answers "which replica
takes this request" and keeps per-replica routed counts.  The cluster
orchestrator owns the arrival events and calls :meth:`route` once per
request; the chosen :class:`~repro.cluster.replica.Replica` then admits
or drops it under its own server's admission control.

Policies:

- ``round_robin`` — cycle through replicas; the stateless baseline.
- ``least_queue`` — join the shortest admission queue (ties to the
  lowest index); the load-aware policy.
- ``tenant_affinity`` — tenant *t* always lands on replica
  ``t % N``; gives each tenant a home replica (and lets a tenant's own
  :attr:`~repro.cluster.traffic.TenantSpec.config` apply there).
- ``consistent_hash`` — SHA-256 ring with virtual nodes keyed by
  tenant; like affinity it pins a tenant to one replica, but the
  assignment is stable under replica-count changes (only ~1/N of
  tenants move when a replica joins), the property that matters for
  warm caches and resident model state.
- ``placed`` — an explicit tenant → replica map, the policy the
  :class:`~repro.runtime.placement.PlacementOptimizer` emits: each
  tenant lands on the replica whose backend/bucket the optimizer chose
  for it.

Hashing uses :mod:`hashlib`, not :func:`hash` — Python's string hash is
salted per process (``PYTHONHASHSEED``), which would silently break
bit-determinism across runs.
"""

from __future__ import annotations

import bisect
import hashlib

import numpy as np

from repro.serving.arrivals import Request

__all__ = ["POLICIES", "Router"]

POLICIES = ("round_robin", "least_queue", "tenant_affinity",
            "consistent_hash", "placed")

# Virtual nodes per replica on the consistent-hash ring: enough that
# tenant load spreads evenly for small replica counts.
_VNODES = 64


def _ring_point(label: str) -> int:
    """A stable 64-bit ring position for ``label``."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Router:
    """Shards a request stream across replicas under one policy.

    Args:
        replicas: The :class:`~repro.cluster.replica.Replica` actors
            (``least_queue`` reads their live queue depths).
        policy: One of :data:`POLICIES`.
        tenant_map: Explicit tenant-id → replica-index map; required by
            (and only meaningful for) the ``placed`` policy.

    Attributes:
        routed_counts: Requests routed to each replica so far.
    """

    def __init__(self, replicas, policy: str = "round_robin",
                 tenant_map: dict | None = None):
        replicas = list(replicas)
        if not replicas:
            raise ValueError("at least one replica is required")
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        if policy == "placed":
            if not tenant_map:
                raise ValueError(
                    "the placed policy needs a tenant_map "
                    "(tenant id -> replica index)"
                )
            for tenant, index in tenant_map.items():
                if not 0 <= index < len(replicas):
                    raise ValueError(
                        f"tenant {tenant} maps to replica {index}, out "
                        f"of range for {len(replicas)} replicas"
                    )
        self.replicas = replicas
        self.policy = policy
        self.tenant_map = dict(tenant_map) if tenant_map else {}
        self.routed_counts = [0] * len(replicas)
        self._next = 0
        self._ring: list[int] = []
        self._ring_replica: list[int] = []
        # tenant id -> ring-resolved replica index.  The keyspace is the
        # tenant mix (a handful of ids), so the cache is tiny and turns
        # repeat lookups — scalar or chunked — into one dict hit instead
        # of a sha256 + bisect.
        self._tenant_cache: dict[int, int] = {}
        if policy == "consistent_hash":
            points = []
            for index in range(len(replicas)):
                for vnode in range(_VNODES):
                    points.append(
                        (_ring_point(f"replica-{index}-vnode-{vnode}"),
                         index)
                    )
            points.sort()
            self._ring = [point for point, _ in points]
            self._ring_replica = [index for _, index in points]
            # Array mirrors for the vectorized chunk path.
            self._ring_arr = np.array(self._ring, dtype=np.uint64)
            self._ring_replica_arr = np.array(self._ring_replica,
                                              dtype=np.int64)

    def _ring_lookup(self, tenant: int) -> int:
        """Resolve (and cache) a tenant's home replica on the ring."""
        cached = self._tenant_cache.get(tenant)
        if cached is not None:
            return cached
        point = _ring_point(f"tenant-{tenant}")
        position = bisect.bisect_right(self._ring, point)
        if position == len(self._ring):
            position = 0
        index = self._ring_replica[position]
        self._tenant_cache[tenant] = index
        return index

    def route(self, request: Request) -> int:
        """Pick the replica index for one request (and count it)."""
        policy = self.policy
        if policy == "round_robin":
            index = self._next
            self._next = (index + 1) % len(self.replicas)
        elif policy == "least_queue":
            depths = [len(replica.queue) for replica in self.replicas]
            index = depths.index(min(depths))
        elif policy == "tenant_affinity":
            key = (request.tenant if request.tenant is not None
                   else request.request_id)
            index = key % len(self.replicas)
        elif policy == "placed":
            if request.tenant is None:
                raise ValueError(
                    "the placed policy requires tenant-tagged requests"
                )
            try:
                index = self.tenant_map[request.tenant]
            except KeyError:
                raise ValueError(
                    f"tenant {request.tenant} has no placement; "
                    f"placed tenants: {sorted(self.tenant_map)}"
                ) from None
        else:  # consistent_hash
            if request.tenant is not None:
                index = self._ring_lookup(request.tenant)
            else:
                point = _ring_point(f"request-{request.request_id}")
                position = bisect.bisect_right(self._ring, point)
                if position == len(self._ring):
                    position = 0
                index = self._ring_replica[position]
        self.routed_counts[index] += 1
        return index

    def route_chunk(self, tenants: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`route` over one arrival chunk.

        Returns the replica index per request, identical element-wise
        to calling :meth:`route` once per request in order (the scalar
        path stays as the equivalence oracle in
        ``tests/cluster/test_router.py``), and advances
        :attr:`routed_counts` and the round-robin cursor the same way.

        ``least_queue`` is inherently sequential — each pick depends on
        queue depths the previous pick changed — so it has no chunk
        form and raises.
        """
        policy = self.policy
        count = len(tenants)
        num_replicas = len(self.replicas)
        if policy == "round_robin":
            indices = (self._next + np.arange(count, dtype=np.int64)) \
                % num_replicas
            self._next = (self._next + count) % num_replicas
        elif policy == "tenant_affinity":
            indices = tenants % num_replicas
        elif policy == "placed":
            unique = np.unique(tenants)
            lookup = np.empty(int(unique[-1]) + 1 if count else 0,
                              dtype=np.int64)
            for tenant in unique.tolist():
                try:
                    lookup[tenant] = self.tenant_map[tenant]
                except KeyError:
                    raise ValueError(
                        f"tenant {tenant} has no placement; placed "
                        f"tenants: {sorted(self.tenant_map)}"
                    ) from None
            indices = lookup[tenants]
        elif policy == "consistent_hash":
            unique = np.unique(tenants)
            lookup = np.empty(int(unique[-1]) + 1 if count else 0,
                              dtype=np.int64)
            for tenant in unique.tolist():
                lookup[tenant] = self._ring_lookup(tenant)
            indices = lookup[tenants]
        else:
            raise ValueError(
                f"policy {policy!r} has no chunked form; route "
                "requests one at a time"
            )
        counts = np.bincount(indices, minlength=num_replicas)
        for index in range(num_replicas):
            self.routed_counts[index] += int(counts[index])
        return indices
