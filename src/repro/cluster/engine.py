"""Heap-scheduled discrete-event core on the virtual clock.

The serving loop used to materialize every arrival, sort them, and
scan — fine at 10³ requests, hopeless at 10⁶.  :class:`EventEngine`
replaces that structure with the classic discrete-event simulation
core: a binary heap of ``(time, seq, callback)`` events popped in time
order, with ties broken **deterministically by insertion sequence** —
two events at the same virtual instant always fire in the order they
were scheduled, so a simulation is bit-reproducible regardless of heap
internals.

Design points that keep a 10⁶-event run in bounded wall time and
memory:

- **Lazy generation composes naturally.**  An event callback may
  schedule further events (the next arrival, the batch dispatch, the
  autoscaler's next tick), so arrivals stream through the engine one
  at a time and a request trace never has to exist as a list.
- **O(log n) everything.**  ``at`` and ``run`` are plain ``heapq``
  push/pop; cancellation is lazy (the event is tombstoned and skipped
  when popped), so cancelling the pending batch dispatch after every
  arrival — the hot path of the serving loop — never rebuilds the
  heap.
- **The clock never goes backwards.**  Scheduling strictly in the past
  raises; scheduling *at* the current instant is allowed (the serving
  loop's "flush now" rule) and fires after the current callback
  returns.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable

__all__ = ["Event", "EventEngine"]


class Event:
    """One scheduled callback; returned by :meth:`EventEngine.at`.

    Events order by ``(time_s, seq)`` — virtual time first, insertion
    sequence as the deterministic tie-break.  Treat instances as opaque
    handles: the only supported operation is passing one to
    :meth:`EventEngine.cancel`.
    """

    __slots__ = ("time_s", "seq", "callback", "args", "cancelled")

    def __init__(self, time_s: float, seq: int,
                 callback: Callable, args: tuple):
        self.time_s = time_s
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time_s != other.time_s:
            return self.time_s < other.time_s
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time_s:.6f} seq={self.seq}{state}>"


class EventEngine:
    """A deterministic discrete-event scheduler on the virtual clock.

    Example::

        engine = EventEngine()
        engine.at(1.0, lambda: engine.at(2.0, done))
        engine.run()          # fires both; engine.now == 2.0

    Attributes:
        now: Current virtual time — the time of the event being (or
            last) processed.  Starts at 0.0.
        events_processed: Events fired so far (cancelled events are
            skipped, not counted).
    """

    def __init__(self):
        self.now = 0.0
        self.events_processed = 0
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time_s: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` at virtual time ``time_s``.

        ``time_s`` may equal :attr:`now` (the event fires after the
        current callback returns, in insertion order among its ties);
        a strictly-past time raises.
        """
        if math.isnan(time_s) or time_s < self.now:
            raise ValueError(
                f"cannot schedule at {time_s} (now is {self.now})"
            )
        if math.isinf(time_s):
            raise ValueError("cannot schedule at infinity")
        event = Event(float(time_s), self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_s: float, callback: Callable, *args) -> Event:
        """Schedule ``callback(*args)`` ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        return self.at(self.now + delay_s, callback, *args)

    def cancel(self, event: Event) -> None:
        """Tombstone a scheduled event (idempotent).

        The entry stays in the heap and is discarded when popped —
        O(1) now, amortized against the pop it would have cost anyway.
        """
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    @property
    def pending(self) -> int:
        """Live (non-cancelled, not-yet-fired) events."""
        return self._live

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the single earliest live event; ``False`` when empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._live -= 1
            self.now = event.time_s
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until_s: float | None = None,
            max_events: int | None = None) -> int:
        """Fire events in ``(time, seq)`` order; returns events fired.

        Args:
            until_s: Stop *before* any event strictly later than this
                time (the event stays scheduled and ``now`` does not
                pass ``until_s``).
            max_events: Safety bound on events fired by this call;
                raises :class:`RuntimeError` when exceeded (a runaway
                self-rescheduling loop, not a normal exit).
        """
        fired = 0
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                continue
            if until_s is not None and event.time_s > until_s:
                break
            if max_events is not None and fired >= max_events:
                raise RuntimeError(
                    f"event budget exhausted after {fired} events at "
                    f"t={self.now:.6f}"
                )
            heapq.heappop(heap)
            self._live -= 1
            self.now = event.time_s
            self.events_processed += 1
            event.callback(*event.args)
            fired += 1
        return fired
